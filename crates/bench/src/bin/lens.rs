//! Capacity lens: where did the knee come from, and what would move it?
//!
//! Usage: `lens [--medium ethernet|perfect|both] [--topology T]
//!              [--spec S] [--max-users U] [--chaos] [--confirm]
//!              [--json] [--smoke] [--verbose]`
//!
//! For each selected medium the lens runs the closed-loop capacity
//! search, then answers the two questions a knee table leaves open:
//!
//! 1. **Attribution** — the resource-utilization ledger of the first
//!    failing point past the knee, ranked, with the binding resource
//!    named (sink receive budget on the perfect bus, medium contention
//!    on the ethernet) and the queueing cross-validation shown.
//! 2. **Sensitivity** — the causal what-if matrix: wire ×2, sink
//!    receive ×0.5, protocol CPU ×0.5, each with a knee predicted from
//!    the ledger alone and (with `--confirm`) the exact re-searched
//!    knee beside it.
//!
//! - `--medium` — which media to profile (default `both`);
//! - `--topology` — `single` (default), `sharded`, or `quorum`;
//! - `--spec S` — workload literal (default: a loaded single-recorder
//!   point that knees inside `--max-users` on both media);
//! - `--max-users U` — search ceiling (default 256);
//! - `--chaos` — also validate each searched point under faults;
//! - `--confirm` — re-search the knee under every turned knob so each
//!   what-if row carries its exact prediction error;
//! - `--json` — one NDJSON row per medium (schema-v5 report embedded);
//! - `--smoke` — CI mode: tiny spec, `--confirm` implied, seconds not
//!   minutes. Output is deterministic: run it twice, diff it;
//! - `--verbose` — stream per-point knee-search verdicts (the SLO
//!   clause that rejected each probe) to stderr.

use publishing_chaos::{Medium, Topology};
use publishing_obs::slo::SloSpec;
use publishing_workload::capacity::topology_name;
use publishing_workload::{find_knee, run_whatif, SearchParams, WorkloadSpec};

fn usage() -> ! {
    eprintln!(
        "usage: lens [--medium ethernet|perfect|both] \
         [--topology single|sharded|quorum] [--spec S] [--max-users U] \
         [--chaos] [--confirm] [--json] [--smoke] [--verbose]"
    );
    std::process::exit(2);
}

fn medium_name(m: Medium) -> &'static str {
    match m {
        Medium::Perfect => "perfect",
        Medium::Ethernet => "ethernet",
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Profiles one medium: search, attribute, run the what-if matrix.
fn profile(
    medium: Medium,
    topology: Topology,
    spec: &WorkloadSpec,
    params: &SearchParams,
    confirm: bool,
    json: bool,
) {
    let params = SearchParams {
        medium,
        ..params.clone()
    };
    let slo = SloSpec::default();
    let knee = find_knee("lens", topology, spec, &slo, &params);
    let whatif = run_whatif("lens", topology, spec, &slo, &params, &knee, confirm);

    // The report shown is the first failing point past the knee — where
    // the saturation actually shows — falling back to the knee trial
    // when the search capped out while passing.
    let sat = knee.failing_trial().or_else(|| knee.knee_trial());
    let clauses = sat.map(|t| t.rejected_by().join("+")).unwrap_or_default();
    let mut report = match sat {
        Some(t) => t.report.clone(),
        None => {
            println!("[{}] no trials ran (max_users=0?)", medium_name(medium));
            return;
        }
    };
    report.whatif = Some(whatif);

    if json {
        println!(
            "{{\"medium\":{},\"topology\":{},\"knee\":{},\"binding\":{},\"clauses\":{},\"report\":{}}}",
            json_str(medium_name(medium)),
            json_str(topology_name(topology)),
            knee.knee_users,
            knee.binding
                .as_deref()
                .map(json_str)
                .unwrap_or_else(|| "null".into()),
            json_str(&clauses),
            report.render_json(),
        );
    } else {
        println!(
            "== lens: medium={} topology={} knee={} binding={}{}",
            medium_name(medium),
            topology_name(topology),
            knee.knee_users,
            knee.binding.as_deref().unwrap_or("none"),
            if clauses.is_empty() {
                String::new()
            } else {
                format!(" rejected_by={clauses}")
            }
        );
        if let Some(u) = &report.utilization {
            println!("\nresource utilization (first point past the knee):");
            println!("{}", u.render());
        }
        if let Some(w) = &report.whatif {
            println!("what-if profiler:");
            println!("{}", w.render());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut media = vec![Medium::Perfect, Medium::Ethernet];
    let mut topology = Topology::Single;
    let mut literal = None;
    let mut confirm = false;
    let mut json = false;
    let mut smoke = false;
    let mut params = SearchParams {
        chaos: false,
        ..SearchParams::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--medium" => match it.next().map(String::as_str) {
                Some("ethernet") => media = vec![Medium::Ethernet],
                Some("perfect") => media = vec![Medium::Perfect],
                Some("both") => {}
                _ => usage(),
            },
            "--topology" => match it.next().map(String::as_str) {
                Some("single") => topology = Topology::Single,
                Some("sharded") => topology = Topology::Sharded,
                Some("quorum") => topology = Topology::Quorum,
                _ => usage(),
            },
            "--spec" => match it.next() {
                Some(v) => literal = Some(v.clone()),
                None => usage(),
            },
            "--max-users" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => params.max_users = v,
                _ => usage(),
            },
            "--chaos" => params.chaos = true,
            "--confirm" => confirm = true,
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--verbose" => params.verbose = true,
            _ => usage(),
        }
    }

    let spec: WorkloadSpec = match literal {
        Some(lit) => match lit.parse() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("--spec: {e}");
                std::process::exit(2);
            }
        },
        // Heavy enough that the knee sits *inside* the smoke cap on
        // both media — a capped bracket is not a knee and would poison
        // the what-if predictions.
        None if smoke => WorkloadSpec {
            subjects: 2,
            rate_per_sec: 100,
            horizon_ms: 400,
            ..WorkloadSpec::default()
        },
        // The canonical operating point: the same default shape the
        // capacity sweep searches, so the lens profile explains the
        // knee table's numbers — the walkthrough in EXPERIMENTS.md
        // re-derives this run.
        None => WorkloadSpec::default(),
    };
    if smoke {
        params.max_users = params.max_users.min(12);
        confirm = true;
    }

    for m in media {
        profile(m, topology, &spec, &params, confirm, json);
    }
}
