//! Deterministic pseudo-random number generation and the distributions the
//! evaluation needs.
//!
//! Determinism is load-bearing here: the paper's central theorem (a
//! recovered process re-produces exactly its pre-crash behaviour) is
//! checked by re-running workloads, so every random draw must be a pure
//! function of the seed. We implement xoshiro256++ seeded through
//! SplitMix64 — small, fast, and entirely under our control, so no
//! dependency upgrade can ever change the streams our tests pin down.

/// A deterministic PRNG (xoshiro256++) with convenience samplers.
///
/// # Examples
///
/// ```
/// use publishing_sim::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each component
    /// its own stream so adding draws in one place never perturbs another.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Lemire's rejection method: unbiased and branch-light.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.unit_f64() < p
    }

    /// Samples an exponential with the given mean (used for Poisson message
    /// arrivals and failure inter-arrival times, per Young's model).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Samples a standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Samples a lognormal with the given parameters of the underlying
    /// normal (used for the Fig 5.3 process state-size distribution).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples an index from a discrete distribution given by weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut parent1 = DetRng::new(9);
        let mut parent2 = DetRng::new(9);
        let mut child1 = parent1.fork(1);
        let mut child2 = parent2.fork(1);
        // Extra draws on one parent must not perturb its already-forked child.
        let _ = parent1.next_u64();
        for _ in 0..100 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = DetRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let x = rng.below(8);
            assert!(x < 8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::new(5);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = DetRng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut rng = DetRng::new(10);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(12);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }
}
