//! The perf-observatory bench driver.
//!
//! Runs the canonical scenario matrix at fixed seeds (see
//! `publishing_bench::perf_matrix`) and writes one versioned
//! `BENCH_<n>.json` snapshot (schema: `publishing_perf::snapshot`). The
//! matrix covers the system's load-bearing paths:
//!
//! - `steady_state` — fault-free publish/deliver over the sharded tier;
//! - `crash_replay` — a node crash mid-run, recovered in parallel by
//!   the responsible shards;
//! - `rebalance` — a new shard admitted mid-run (log drain + cutover);
//! - `chaos_smoke` — one generated fault schedule replayed through the
//!   chaos driver (crashes plus loss/corruption/disk windows).
//!
//! Every scenario's virtual-time metrics (events per virtual second,
//! stage-latency percentiles, queue depths, bytes published) are
//! deterministic: two runs at the same seed produce byte-identical
//! virtual sections. Wall-clock time and allocation counts (from the
//! counting global allocator this binary installs) are recorded in the
//! separate `host` section that the CI comparator never gates on.
//!
//! Usage: `bench [--smoke] [--dir DIR]`
//!
//! - `--smoke` runs the smaller CI matrix (< 1 s);
//! - `--dir DIR` writes the snapshot into `DIR` (default: the current
//!   directory); the snapshot number is one past the highest existing
//!   `BENCH_<n>.json` there.

use publishing_bench::perf_matrix::run_matrix;
use publishing_perf::alloc::CountingAlloc;
use publishing_perf::snapshot::{next_snapshot_number, snapshot_filename};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut dir = std::path::PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--dir" => {
                i += 1;
                let Some(d) = args.get(i) else {
                    eprintln!("--dir needs a path; usage: bench [--smoke] [--dir DIR]");
                    std::process::exit(2);
                };
                dir = d.into();
            }
            bad => {
                eprintln!("unknown argument {bad:?}; usage: bench [--smoke] [--dir DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let snap = run_matrix(smoke);

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let path = dir.join(snapshot_filename(next_snapshot_number(&dir)));
    if let Err(e) = std::fs::write(&path, snap.to_json()) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }

    println!("wrote {}", path.display());
    for s in &snap.scenarios {
        println!(
            "  {:<14} {:>10.0} ev/vsec  p99(pub→dlv) {:>8.0}us  peak_q {:>3.0}  wall {:>7.1}ms",
            s.name,
            s.virt.get("events_per_virtual_sec").copied().unwrap_or(0.0),
            s.virt
                .get("publish_to_deliver_us_p99")
                .copied()
                .unwrap_or(0.0),
            s.virt.get("peak_queue_depth").copied().unwrap_or(0.0),
            s.host.get("wall_ms").copied().unwrap_or(0.0),
        );
    }

    // A bench run that did no work is a broken scenario, not a datum.
    for s in &snap.scenarios {
        let delivered = s.virt.get("events_delivered").copied().unwrap_or(0.0);
        if delivered == 0.0 {
            eprintln!("scenario {} delivered no events", s.name);
            std::process::exit(1);
        }
    }
}
