#!/usr/bin/env bash
# Full CI gate, identical to .github/workflows/ci.yml. Run before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
