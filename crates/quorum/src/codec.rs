//! Wire codec for recorder snapshot images shipped between quorum
//! replicas.
//!
//! A lagging follower that has fallen behind the leader's compacted
//! log floor is caught up with a full recorder-state image: the
//! per-process [`ProcessExport`] snapshots the sharded tier already
//! uses for handoff, batched and serialised here. The orphan rule
//! keeps these as free functions rather than `Encode`/`Decode` impls
//! (the export type lives in `publishing-core`, the traits in
//! `publishing-sim`).

use publishing_core::recorder::ProcessExport;
use publishing_demos::ids::{MessageId, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::message::Message;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use publishing_stable::store::{Checkpoint, RecordKey};

fn encode_export(e: &mut Encoder, x: &ProcessExport) {
    x.pid.encode(e);
    e.option(x.checkpoint.as_ref(), |e, cp| {
        e.u64(cp.pid).u64(cp.upto_seq).bytes(&cp.blob);
    });
    e.seq(&x.records, |e, (key, bytes)| {
        e.u64(key.pid).u64(key.seq).bytes(bytes);
    });
    e.seq(&x.pending, |e, m| m.encode(e));
    e.seq(&x.arrivals, |e, (seq, id)| {
        e.u64(*seq);
        id.encode(e);
    });
    e.seq(&x.pins, |e, (idx, id)| {
        e.u64(*idx);
        id.encode(e);
    });
    e.u64(x.read_floor).u64(x.next_arrival_seq);
    e.seq(&x.last_sent, |e, (pid, seq)| {
        pid.encode(e);
        e.u64(*seq);
    });
    e.bool(x.recoverable);
    e.str(&x.program_name);
    e.seq(&x.initial_links, |e, l| l.encode(e));
    e.option(x.checkpoint_image.as_ref(), |e, img| {
        e.bytes(img);
    });
}

fn decode_export(d: &mut Decoder<'_>) -> Result<ProcessExport, CodecError> {
    let pid = ProcessId::decode(d)?;
    let checkpoint = d.option(|d| {
        Ok(Checkpoint {
            pid: d.u64()?,
            upto_seq: d.u64()?,
            blob: d.bytes()?,
        })
    })?;
    let records = d.seq(|d| {
        let key = RecordKey {
            pid: d.u64()?,
            seq: d.u64()?,
        };
        Ok((key, d.bytes()?))
    })?;
    let pending = d.seq(Message::decode)?;
    let arrivals = d.seq(|d| Ok((d.u64()?, MessageId::decode(d)?)))?;
    let pins = d.seq(|d| Ok((d.u64()?, MessageId::decode(d)?)))?;
    let read_floor = d.u64()?;
    let next_arrival_seq = d.u64()?;
    let last_sent = d.seq(|d| Ok((ProcessId::decode(d)?, d.u64()?)))?;
    let recoverable = d.bool()?;
    let program_name = d.str()?;
    let initial_links = d.seq(Link::decode)?;
    let checkpoint_image = d.option(|d| d.bytes())?;
    Ok(ProcessExport {
        pid,
        checkpoint,
        records,
        pending,
        arrivals,
        pins,
        read_floor,
        next_arrival_seq,
        last_sent,
        recoverable,
        program_name,
        initial_links,
        checkpoint_image,
    })
}

/// Serialises a batch of process exports into one snapshot image.
pub fn encode_exports(exports: &[ProcessExport]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.seq(exports, encode_export);
    e.finish()
}

/// Parses a snapshot image produced by [`encode_exports`].
pub fn decode_exports(image: &[u8]) -> Result<Vec<ProcessExport>, CodecError> {
    let mut d = Decoder::new(image);
    let exports = d.seq(decode_export)?;
    d.finish()?;
    Ok(exports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::Channel;
    use publishing_demos::message::MessageHeader;

    fn pid(node: u32, local: u32) -> ProcessId {
        ProcessId::new(node, local)
    }

    fn msg(n: u64) -> Message {
        Message {
            header: MessageHeader {
                id: MessageId {
                    sender: pid(1, 1),
                    seq: n,
                },
                to: pid(2, 7),
                code: 0,
                channel: Channel(1),
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: vec![n as u8; 3],
        }
    }

    #[test]
    fn snapshot_image_roundtrip() {
        let export = ProcessExport {
            pid: pid(2, 7),
            checkpoint: Some(Checkpoint {
                pid: pid(2, 7).as_u64(),
                upto_seq: 4,
                blob: vec![9, 9, 9],
            }),
            records: vec![(
                RecordKey {
                    pid: pid(2, 7).as_u64(),
                    seq: 4,
                },
                vec![1, 2, 3],
            )],
            pending: vec![msg(5), msg(6)],
            arrivals: vec![(4, msg(4).header.id)],
            pins: vec![(2, msg(2).header.id)],
            read_floor: 4,
            next_arrival_seq: 5,
            last_sent: vec![(pid(1, 1), 6)],
            recoverable: true,
            program_name: "worker".into(),
            initial_links: Vec::new(),
            checkpoint_image: Some(vec![7, 7]),
        };
        let empty = ProcessExport {
            pid: pid(3, 1),
            checkpoint: None,
            records: Vec::new(),
            pending: Vec::new(),
            arrivals: Vec::new(),
            pins: Vec::new(),
            read_floor: 0,
            next_arrival_seq: 0,
            last_sent: Vec::new(),
            recoverable: false,
            program_name: String::new(),
            initial_links: Vec::new(),
            checkpoint_image: None,
        };
        let image = encode_exports(&[export, empty]);
        let back = decode_exports(&image).expect("roundtrip");
        assert_eq!(back.len(), 2);
        // `ProcessExport` doesn't implement `PartialEq`; a stable codec
        // makes re-encoding the identity instead.
        assert_eq!(encode_exports(&back), image);
        assert_eq!(back[0].pending.len(), 2);
        assert_eq!(back[0].next_arrival_seq, 5);
        assert_eq!(back[1].checkpoint_image, None);
    }

    #[test]
    fn truncated_image_rejected() {
        let image = encode_exports(&[ProcessExport {
            pid: pid(1, 1),
            checkpoint: None,
            records: Vec::new(),
            pending: Vec::new(),
            arrivals: Vec::new(),
            pins: Vec::new(),
            read_floor: 0,
            next_arrival_seq: 0,
            last_sent: Vec::new(),
            recoverable: true,
            program_name: "p".into(),
            initial_links: Vec::new(),
            checkpoint_image: None,
        }]);
        assert!(decode_exports(&image[..image.len() - 1]).is_err());
    }
}
