//! The Chapter 5 queuing model: Figures 5.1–5.5 and the 115-user
//! capacity claim.
//!
//! The model is the open network of Figure 5.1: processing nodes are
//! message sources emitting three classes (128-byte short messages,
//! 1024-byte long messages, 1024-byte checkpoint fragments); the
//! recording node's three serially reusable resources — network
//! interface, processor, disk system — are the stations whose
//! utilizations Figure 5.5 plots. Checkpoint traffic follows §5.1's
//! policy, "a process is checkpointed whenever its published message
//! storage exceeds its checkpoint size," which makes a process's
//! checkpoint byte rate equal its message byte rate.
//!
//! The UCB VAX measurements behind Figure 5.4 are not recoverable; the
//! operating-point values here are synthesized to the constraints the
//! thesis states (see DESIGN.md's substitution table), and the capacity
//! question is answered from the model exactly as §5.1 does.

use crate::solver::{OpenNetwork, Station};
use crate::workload::{ProcessTraffic, CHECKPOINT_BYTES, LONG_BYTES, SHORT_BYTES};

/// Hardware parameters — Figure 5.2, verbatim.
#[derive(Debug, Clone, Copy)]
pub struct HwParams {
    /// Ethernet interface interpacket delay, seconds (1.6 ms).
    pub interpacket: f64,
    /// Network bandwidth, bits per second (10 Mb/s).
    pub bandwidth_bps: f64,
    /// Disk latency, seconds (3 ms).
    pub disk_latency: f64,
    /// Disk transfer rate, bytes per second (2 MB/s).
    pub disk_rate: f64,
    /// Time to process a packet, seconds (0.8 ms).
    pub packet_cpu: f64,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            interpacket: 0.0016,
            bandwidth_bps: 10_000_000.0,
            disk_latency: 0.003,
            disk_rate: 2_000_000.0,
            packet_cpu: 0.0008,
        }
    }
}

/// One Figure 5.4 operating point.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Label.
    pub name: &'static str,
    /// Load average: processes per processing node.
    pub procs_per_node: f64,
    /// Mean changeable state size per process, bytes.
    pub state_bytes: f64,
    /// Per-process message traffic.
    pub traffic: ProcessTraffic,
}

impl OperatingPoint {
    /// Checkpoint fragments per second per process. Under the
    /// storage-balancing policy the checkpoint byte rate equals the
    /// message byte rate, fragmented into 1024-byte messages.
    pub fn checkpoint_msgs_per_proc(&self) -> f64 {
        self.traffic.bytes_per_sec() / CHECKPOINT_BYTES as f64
    }

    /// All published (data) messages per second per process.
    pub fn data_msgs_per_proc(&self) -> f64 {
        self.traffic.msgs_per_sec() + self.checkpoint_msgs_per_proc()
    }

    /// All published bytes per second per process (messages +
    /// checkpoints).
    pub fn data_bytes_per_proc(&self) -> f64 {
        2.0 * self.traffic.bytes_per_sec()
    }
}

/// The four operating points of Figure 5.4 (mean plus each parameter
/// maximized; message traffic peaks in two flavours, short-dominated
/// system calls and long-dominated disk transfers, both of which §5.1
/// discusses).
pub fn operating_points() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint {
            name: "mean",
            procs_per_node: 4.0,
            state_bytes: 16.0 * 1024.0,
            traffic: ProcessTraffic {
                short_per_sec: 4.2,
                long_per_sec: 0.35,
            },
        },
        OperatingPoint {
            name: "max-load-avg",
            procs_per_node: 12.0,
            state_bytes: 16.0 * 1024.0,
            traffic: ProcessTraffic {
                short_per_sec: 4.2,
                long_per_sec: 0.35,
            },
        },
        OperatingPoint {
            name: "max-state-size",
            procs_per_node: 4.0,
            state_bytes: 56.0 * 1024.0,
            traffic: ProcessTraffic {
                short_per_sec: 4.2,
                long_per_sec: 0.35,
            },
        },
        OperatingPoint {
            name: "max-syscall-rate",
            procs_per_node: 4.0,
            state_bytes: 16.0 * 1024.0,
            traffic: ProcessTraffic {
                short_per_sec: 40.0,
                long_per_sec: 0.5,
            },
        },
        OperatingPoint {
            name: "max-disk-rate",
            procs_per_node: 4.0,
            state_bytes: 16.0 * 1024.0,
            traffic: ProcessTraffic {
                short_per_sec: 5.0,
                long_per_sec: 8.0,
            },
        },
    ]
}

/// A model configuration: an operating point scaled to a system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Hardware constants.
    pub hw: HwParams,
    /// Processing nodes (Figure 5.5 sweeps 1–5).
    pub nodes: u32,
    /// Disks at the recorder (Figure 5.5 sweeps 1–3).
    pub disks: u32,
    /// 4 KB write buffering (§5.1's saturation fix) on or off.
    pub buffered: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            hw: HwParams::default(),
            nodes: 5,
            disks: 1,
            buffered: true,
        }
    }
}

/// Builds the Figure 5.1 network for an operating point and system size.
pub fn build_network(op: &OperatingPoint, cfg: &SystemConfig) -> OpenNetwork {
    let hw = &cfg.hw;
    let procs = op.procs_per_node * cfg.nodes as f64;
    let short_rate = op.traffic.short_per_sec * procs;
    let long_rate = op.traffic.long_per_sec * procs;
    let ckpt_rate = op.checkpoint_msgs_per_proc() * procs;
    let data_rate = short_rate + long_rate + ckpt_rate;

    // Shared medium: occupied for each data packet's bits plus a small
    // recorder acknowledgement per message.
    let wire = |bytes: f64| bytes * 8.0 / hw.bandwidth_bps;
    let network = Station::new("network")
        .flow("short", short_rate, wire(SHORT_BYTES as f64))
        .flow("long", long_rate, wire(LONG_BYTES as f64))
        .flow("checkpoint", ckpt_rate, wire(CHECKPOINT_BYTES as f64))
        .flow("recorder-acks", data_rate, wire(32.0));

    // Recorder network interface: the 1.6 ms interpacket delay per data
    // packet received.
    let nic = Station::new("recorder-nic").flow("data", data_rate, hw.interpacket);

    // Recorder processor: 0.8 ms per packet handled — each published
    // message is received and its acknowledgement sent.
    let cpu = Station::new("recorder-cpu").flow("data+ack", 2.0 * data_rate, hw.packet_cpu);

    // Disk system: striped across `disks`; either one write per message
    // (the original model that saturated) or 4 KB buffered pages.
    let byte_rate = op.data_bytes_per_proc() * procs;
    let disk = if cfg.buffered {
        let page_rate = byte_rate / 4096.0 / cfg.disks as f64;
        Station::new("disk").flow("pages", page_rate, hw.disk_latency + 4096.0 / hw.disk_rate)
    } else {
        let per_disk = 1.0 / cfg.disks as f64;
        Station::new("disk")
            .flow(
                "short",
                short_rate * per_disk,
                hw.disk_latency + SHORT_BYTES as f64 / hw.disk_rate,
            )
            .flow(
                "long",
                long_rate * per_disk,
                hw.disk_latency + LONG_BYTES as f64 / hw.disk_rate,
            )
            .flow(
                "checkpoint",
                ckpt_rate * per_disk,
                hw.disk_latency + CHECKPOINT_BYTES as f64 / hw.disk_rate,
            )
    };

    OpenNetwork::new()
        .station(network)
        .station(nic)
        .station(cpu)
        .station(disk)
}

/// One row of the Figure 5.5 data: utilizations for a configuration.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Operating point name.
    pub point: &'static str,
    /// Processing nodes.
    pub nodes: u32,
    /// Disks.
    pub disks: u32,
    /// Recorder CPU utilization (Fig 5.5b).
    pub cpu: f64,
    /// Disk utilization (Fig 5.5a).
    pub disk: f64,
    /// Recorder network-interface utilization (Fig 5.5c).
    pub nic: f64,
    /// Shared-medium utilization.
    pub network: f64,
}

/// Computes the full Figure 5.5 sweep: every operating point × 1–5 nodes
/// × 1–3 disks.
pub fn figure_5_5(buffered: bool) -> Vec<UtilizationRow> {
    let mut rows = Vec::new();
    for op in operating_points() {
        for nodes in 1..=5 {
            for disks in 1..=3 {
                let cfg = SystemConfig {
                    nodes,
                    disks,
                    buffered,
                    ..SystemConfig::default()
                };
                let net = build_network(&op, &cfg);
                let u = net.utilizations();
                rows.push(UtilizationRow {
                    point: op.name,
                    nodes,
                    disks,
                    cpu: u["recorder-cpu"],
                    disk: u["disk"],
                    nic: u["recorder-nic"],
                    network: u["network"],
                });
            }
        }
    }
    rows
}

/// The §5.1 capacity question: how many users (each one mean-operating-
/// point process) can one recorder support before any component
/// saturates? The abstract's answer: 115.
pub fn max_users(cfg: &SystemConfig) -> u32 {
    let mean = &operating_points()[0];
    let mut users = 0u32;
    loop {
        let candidate = users + 1;
        // `candidate` users spread over one logical source.
        let op = OperatingPoint {
            name: "capacity",
            procs_per_node: candidate as f64,
            state_bytes: mean.state_bytes,
            traffic: mean.traffic,
        };
        let probe = SystemConfig {
            nodes: 1,
            ..cfg.clone()
        };
        if build_network(&op, &probe).saturated() {
            return users;
        }
        users = candidate;
        if users > 100_000 {
            return users;
        }
    }
}

/// §6.6.1: capacity when a fraction of traffic belongs to processes that
/// opted out of recovery and is therefore not published. "If these
/// processes were not considered recoverable, the recorder would be able
/// to support one more VAX on the network."
pub fn max_users_with_unrecoverable(cfg: &SystemConfig, unrecoverable_fraction: f64) -> u32 {
    assert!((0.0..1.0).contains(&unrecoverable_fraction));
    let base = max_users(cfg) as f64;
    (base / (1.0 - unrecoverable_fraction)) as u32
}

/// Worst-case checkpoint plus message storage (§5.1 reports 2.76 MB):
/// under the storage-balancing policy each process holds at most its
/// state in checkpoint plus the same again in messages.
pub fn worst_case_storage_bytes(op: &OperatingPoint, nodes: u32) -> f64 {
    2.0 * op.state_bytes * op.procs_per_node * nodes as f64
}

/// Peak buffer requirement at the recorder (§5.1 reports at most 28 KB):
/// the open 4 KB page plus the M/M/1 mean queue of pages awaiting the
/// disk, at the worst buffered operating point.
pub fn buffer_requirement_bytes(cfg: &SystemConfig) -> f64 {
    let mut worst: f64 = 4096.0;
    for op in operating_points() {
        let net = build_network(&op, cfg);
        let disk = net
            .stations
            .iter()
            .find(|s| s.name == "disk")
            .expect("disk station");
        if let Some(jobs) = disk.mean_jobs() {
            worst = worst.max(4096.0 * (1.0 + jobs.ceil()));
        } else {
            // Saturated: bounded only by the run length; report the page
            // plus a large queue marker.
            worst = worst.max(4096.0 * 8.0);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_about_115_users() {
        let users = max_users(&SystemConfig::default());
        assert!(
            (110..=120).contains(&users),
            "recorder should support ≈115 users, got {users}"
        );
    }

    #[test]
    fn skipping_unrecoverable_processes_raises_capacity() {
        // §6.6.1's disk-to-tape example: 15% of messages unpublished.
        let base = max_users(&SystemConfig::default());
        let more = max_users_with_unrecoverable(&SystemConfig::default(), 0.15);
        assert!(more > base, "{more} vs {base}");
        assert!((130..=140).contains(&more), "{more}");
    }

    #[test]
    fn viable_for_five_nodes_at_mean_point() {
        // §5.1: "the simple system was viable for at least 5 nodes."
        let op = &operating_points()[0];
        let cfg = SystemConfig {
            nodes: 5,
            disks: 1,
            ..SystemConfig::default()
        };
        assert!(!build_network(op, &cfg).saturated());
    }

    #[test]
    fn unbuffered_disk_saturates_at_max_long_message_rate() {
        // §5.1's first problem: "saturation of the disk system used with
        // the maximum long message rate … removed by allowing messages to
        // be written out in 4k byte buffers."
        let op = operating_points()
            .into_iter()
            .find(|o| o.name == "max-disk-rate")
            .unwrap();
        let unbuffered = SystemConfig {
            nodes: 5,
            disks: 1,
            buffered: false,
            ..Default::default()
        };
        let buffered = SystemConfig {
            nodes: 5,
            disks: 1,
            buffered: true,
            ..Default::default()
        };
        let u_un = build_network(&op, &unbuffered).utilizations()["disk"];
        let u_buf = build_network(&op, &buffered).utilizations()["disk"];
        assert!(u_un >= 1.0, "unbuffered disk must saturate: {u_un}");
        assert!(u_buf < 1.0, "4 KB buffering must fix it: {u_buf}");
    }

    #[test]
    fn syscall_point_saturates_recorder_beyond_three_nodes() {
        // §5.1's second problem: the high system-call point saturates the
        // recorder when more than 3 nodes are attached.
        let op = operating_points()
            .into_iter()
            .find(|o| o.name == "max-syscall-rate")
            .unwrap();
        let three = SystemConfig {
            nodes: 3,
            disks: 1,
            ..SystemConfig::default()
        };
        let four = SystemConfig {
            nodes: 4,
            disks: 1,
            ..SystemConfig::default()
        };
        assert!(
            !build_network(&op, &three).saturated(),
            "3 nodes should just fit"
        );
        assert!(
            build_network(&op, &four).saturated(),
            "4 nodes must saturate"
        );
    }

    #[test]
    fn utilization_grows_monotonically_with_nodes() {
        let rows = figure_5_5(true);
        for point in ["mean", "max-load-avg"] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.point == point && r.disks == 1)
                .map(|r| r.cpu)
                .collect();
            assert_eq!(series.len(), 5);
            for w in series.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn more_disks_reduce_disk_utilization_only() {
        let rows = figure_5_5(true);
        let one = rows
            .iter()
            .find(|r| r.point == "max-disk-rate" && r.nodes == 5 && r.disks == 1);
        let three = rows
            .iter()
            .find(|r| r.point == "max-disk-rate" && r.nodes == 5 && r.disks == 3);
        let (one, three) = (one.unwrap(), three.unwrap());
        assert!(three.disk < one.disk);
        assert!((three.cpu - one.cpu).abs() < 1e-12);
        assert!((three.nic - one.nic).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_byte_rate_equals_message_byte_rate() {
        // The §5.1 policy's fixed point.
        let op = &operating_points()[0];
        let ckpt_bytes = op.checkpoint_msgs_per_proc() * CHECKPOINT_BYTES as f64;
        assert!((ckpt_bytes - op.traffic.bytes_per_sec()).abs() < 1e-9);
    }

    #[test]
    fn worst_case_storage_is_megabytes() {
        // §5.1 reports 2.76 MB worst case; ours lands in the same band.
        let op = operating_points()
            .into_iter()
            .find(|o| o.name == "max-state-size")
            .unwrap();
        let bytes = worst_case_storage_bytes(&op, 5);
        assert!(
            (1.5e6..4.0e6).contains(&bytes),
            "worst-case storage {bytes} should be a few megabytes"
        );
    }

    #[test]
    fn buffer_requirement_is_tens_of_kilobytes() {
        // §5.1: "at most 28k bytes."
        let cfg = SystemConfig {
            nodes: 5,
            disks: 1,
            ..SystemConfig::default()
        };
        let bytes = buffer_requirement_bytes(&cfg);
        assert!(
            (4096.0..65536.0).contains(&bytes),
            "buffer requirement {bytes} should be tens of KB"
        );
    }

    #[test]
    fn checkpoint_intervals_span_the_stated_range() {
        // §5.1: intervals "between 1 second for 4k byte processes during
        // high message rates and 2 minutes for 64k byte processes during
        // low message rates."
        let fast = OperatingPoint {
            name: "fast",
            procs_per_node: 1.0,
            state_bytes: 4096.0,
            traffic: ProcessTraffic {
                short_per_sec: 40.0,
                long_per_sec: 0.5,
            },
        };
        let slow = OperatingPoint {
            name: "slow",
            procs_per_node: 1.0,
            state_bytes: 65536.0,
            traffic: ProcessTraffic {
                short_per_sec: 4.2,
                long_per_sec: 0.0,
            },
        };
        let interval = |op: &OperatingPoint| op.state_bytes / op.traffic.bytes_per_sec();
        let f = interval(&fast);
        let s = interval(&slow);
        assert!(f < 2.0, "fast interval {f}s should be about a second");
        assert!(
            s > 60.0 && s < 240.0,
            "slow interval {s}s should be minutes"
        );
    }
}
