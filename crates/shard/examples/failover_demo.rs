//! Narrated walk through the sharded recorder tier: a ping workload
//! survives the responsible shard being killed mid-recovery, then a
//! fourth shard is added live and claims its slice of the pids.
//!
//! Run with `cargo run -p publishing-shard --example failover_demo`.

use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_shard::ShardedWorld;
use publishing_sim::time::SimTime;

fn main() {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("slowping", || {
        let mut p = PingClient::new(25);
        p.think_ns = 2_000_000;
        Box::new(p)
    });

    let mut w = ShardedWorld::new(2, 3, reg);
    println!("tier: 2 processing nodes, 3 recorder shards, R = 2 capture sets");

    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    let caps = w.router().with_map(|m| m.capture_set(server, 2));
    println!("server {server:?} captured by {caps:?}");

    w.run_until(SimTime::from_millis(40));
    println!("[40ms] crashing the server process");
    w.crash_process(server, "demo");

    let resp = w.router().with_map(|m| m.responsible(server)).unwrap();
    w.run_until(SimTime::from_millis(42));
    println!("[42ms] killing {resp} while it drives the replay");
    w.crash_shard(resp.0 as usize);
    println!(
        "       responsibility fell to {}",
        w.router().with_map(|m| m.responsible(server)).unwrap()
    );

    w.run_until(SimTime::from_millis(500));
    println!("[500ms] adding a fourth shard (live rebalance)");
    let sid = w.add_shard();
    println!(
        "       {sid} admitted; map epoch {}, {} cutovers published",
        w.router().with_map(|m| m.epoch()),
        w.cutovers_published()
    );

    w.run_until(SimTime::from_secs(30));
    let out = w.outputs_of(client);
    println!(
        "client produced {} outputs, last = {:?}",
        out.len(),
        out.last().unwrap()
    );
    for (i, s) in w.shards.iter().enumerate() {
        println!(
            "shard{i}: up={} recoveries completed={}",
            s.is_up(),
            s.manager().stats().completed.get()
        );
    }
    assert_eq!(out.len(), 26, "25 pongs + done");
    assert_eq!(out.last().unwrap(), "done");
    println!("workload intact across shard death and rebalance.");
}
