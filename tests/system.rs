//! Whole-system integration tests across all crates, driven through the
//! `publishing` facade.

use publishing::core::checkpoint::CheckpointPolicy;
use publishing::core::node::RecorderConfig;
use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, ProcessId};
use publishing::demos::link::Link;
use publishing::demos::programs::{self, Chatter, PingClient};
use publishing::demos::registry::ProgramRegistry;
use publishing::net::bus::PerfectBus;
use publishing::net::ethernet::Ethernet;
use publishing::net::lan::{Lan, LanConfig};
use publishing::sim::fault::FaultPlan;
use publishing::sim::time::{SimDuration, SimTime};

fn chatter_registry(seed: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("chat-a", move || Box::new(Chatter::new(seed, 2, true)));
    reg.register("chat-b", move || {
        Box::new(Chatter::new(seed ^ 0xAA, 2, true))
    });
    reg.register("chat-c", move || {
        Box::new(Chatter::new(seed ^ 0x55, 2, true))
    });
    reg
}

fn chatter_world(
    seed: u64,
    lan: Option<Box<dyn publishing::net::lan::Lan>>,
) -> publishing::core::world::World {
    let mut b = WorldBuilder::new(3).registry(chatter_registry(seed));
    if let Some(lan) = lan {
        b = b.medium(lan);
    }
    let mut w = b.build();
    let a = ProcessId::new(0, 1);
    let bb = ProcessId::new(1, 1);
    let c = ProcessId::new(2, 1);
    w.spawn(
        0,
        "chat-a",
        vec![
            Link::to(bb, Channel::DEFAULT, 0),
            Link::to(c, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        1,
        "chat-b",
        vec![
            Link::to(c, Channel::DEFAULT, 0),
            Link::to(a, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w.spawn(
        2,
        "chat-c",
        vec![
            Link::to(a, Channel::DEFAULT, 0),
            Link::to(bb, Channel::DEFAULT, 0),
        ],
    )
    .unwrap();
    w
}

#[test]
fn identical_seeds_produce_identical_worlds() {
    let run = |seed| {
        let mut w = chatter_world(seed, None);
        w.run_until(SimTime::from_secs(5));
        (
            w.output_fingerprint(),
            w.recorder.recorder().stats().published.get(),
            w.kernels[&0].stats().msgs_sent.get(),
        )
    };
    assert_eq!(run(7), run(7), "bit-identical replays");
    assert_ne!(run(7).0, run(8).0, "different seeds diverge");
}

#[test]
fn medium_choice_does_not_change_behaviour() {
    // The same workload over the perfect bus and over an Acknowledging
    // Ethernet: timings differ wildly, the deduplicated outputs must not.
    let mut bus_world = chatter_world(3, None);
    bus_world.run_until(SimTime::from_secs(10));
    let cfg = LanConfig {
        seed: 99,
        ..LanConfig::default()
    };
    let mut eth_world = chatter_world(3, Some(Box::new(Ethernet::acknowledging(cfg))));
    eth_world.run_until(SimTime::from_secs(60));
    assert_eq!(
        bus_world.output_fingerprint(),
        eth_world.output_fingerprint(),
        "the application cannot tell which LAN it ran over"
    );
}

#[test]
fn lossy_network_with_crash_still_equivalent() {
    // 8% frame loss plus a server crash. A single FIFO pair is immune to
    // loss-induced reordering, so the client's outputs must be exactly
    // the loss-free, crash-free sequence. (Multi-sender workloads may
    // legitimately interleave differently under loss — order at a
    // process is part of its input, not something recovery invents.)
    let run = |lossy: bool, crash: bool| {
        let mut reg = ProgramRegistry::new();
        programs::register_standard(&mut reg);
        reg.register("ping", || {
            let mut p = PingClient::new(25);
            p.think_ns = 1_000_000;
            Box::new(p)
        });
        let mut b = WorldBuilder::new(2).registry(reg);
        if lossy {
            let mut bus = PerfectBus::new(LanConfig {
                seed: 44,
                ..LanConfig::default()
            });
            bus.set_faults(FaultPlan::new().with_frame_loss(0.08));
            b = b.medium(Box::new(bus));
        }
        let mut w = b.build();
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        if crash {
            w.run_until(SimTime::from_millis(60));
            w.crash_process(server, "injected");
        }
        w.run_until(SimTime::from_secs(120));
        w.outputs_of(client)
    };
    let clean = run(false, false);
    let messy = run(true, true);
    assert_eq!(clean, messy);
    assert_eq!(clean.len(), 26);
}

#[test]
fn checkpointed_world_equivalent_to_uncheckpointed() {
    // Checkpoint policy is a performance knob, never a semantic one
    // (§3.3.1).
    let run = |policy: CheckpointPolicy| {
        let rc = RecorderConfig {
            policy,
            policy_tick: SimDuration::from_millis(20),
            ..RecorderConfig::default()
        };
        let mut w = WorldBuilder::new(3)
            .registry(chatter_registry(5))
            .recorder(rc)
            .build();
        let a = ProcessId::new(0, 1);
        let b = ProcessId::new(1, 1);
        let c = ProcessId::new(2, 1);
        w.spawn(
            0,
            "chat-a",
            vec![
                Link::to(b, Channel::DEFAULT, 0),
                Link::to(c, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        w.spawn(
            1,
            "chat-b",
            vec![
                Link::to(c, Channel::DEFAULT, 0),
                Link::to(a, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        w.spawn(
            2,
            "chat-c",
            vec![
                Link::to(a, Channel::DEFAULT, 0),
                Link::to(b, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        w.run_until(SimTime::from_millis(300));
        w.crash_process(b, "injected");
        w.run_until(SimTime::from_secs(15));
        w.output_fingerprint()
    };
    let never = run(CheckpointPolicy::Never);
    let eager = run(CheckpointPolicy::Periodic(SimDuration::from_millis(50)));
    let bounded = run(CheckpointPolicy::BoundedRecovery {
        target: SimDuration::from_millis(500),
        load: publishing::core::recovery_time::LoadParams::figure_3_1(),
    });
    assert_eq!(never, eager);
    assert_eq!(never, bounded);
}

#[test]
fn many_sequential_crashes_survive() {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping", || {
        let mut p = PingClient::new(60);
        p.think_ns = 1_000_000;
        Box::new(p)
    });
    let mut w = WorldBuilder::new(2).registry(reg).build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    // Kill the server five times at staggered points.
    for k in 1..=5u64 {
        w.run_until(SimTime::from_millis(40 * k));
        w.crash_process(server, "again");
        w.run_until(SimTime::from_millis(40 * k + 20));
    }
    w.run_until(SimTime::from_secs(60));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 61, "{}", out.len());
    assert_eq!(out.last().unwrap(), "done");
    // Each 40 ms crash lands while the previous recovery is still
    // replaying, so this exercises the §3.5 recursive-crash path over and
    // over; only the final recovery runs to completion.
    let mgr = w.recorder.manager().stats();
    assert!(
        mgr.recursive.get() >= 3,
        "recursive {}",
        mgr.recursive.get()
    );
    assert!(mgr.completed.get() >= 1);
}

#[test]
fn selective_receive_with_crash_replays_read_order() {
    // A channel reader takes urgent traffic out of order; after its crash
    // the replay must reproduce the same read order (§4.4.2 pins).
    use publishing::demos::program::{Ctx, Program, Received};
    use publishing::sim::codec::CodecError;

    struct TwoChannelFeeder;
    impl Program for TwoChannelFeeder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // links: 0 = reader ch0, 1 = reader ch5 (urgent).
            for i in 0..4u8 {
                let _ = ctx.send(publishing::demos::ids::LinkId(0), vec![i]);
            }
            let _ = ctx.send(publishing::demos::ids::LinkId(1), b"urgent".to_vec());
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
            Ok(())
        }
    }

    let run = |crash: bool| {
        let mut reg = ProgramRegistry::new();
        reg.register("feeder", || Box::new(TwoChannelFeeder));
        reg.register("reader", || {
            Box::new(programs::ChannelReader::new(Channel(5)))
        });
        let mut w = WorldBuilder::new(2).registry(reg).build();
        let reader = w.spawn(1, "reader", vec![]).unwrap();
        w.spawn(
            0,
            "feeder",
            vec![
                Link::to(reader, Channel(0), 0),
                Link::to(reader, Channel(5), 0),
            ],
        )
        .unwrap();
        if crash {
            w.run_until(SimTime::from_millis(100));
            w.crash_process(reader, "injected");
        }
        w.run_until(SimTime::from_secs(10));
        w.outputs_of(reader)
    };
    let clean = run(false);
    let crashed = run(true);
    assert_eq!(clean, crashed, "read order (with pins) survives recovery");
    // The urgent message was read first in both runs.
    assert!(clean[0].contains("ch5"), "{clean:?}");
}

#[test]
fn stable_store_survives_recorder_power_cycles() {
    // Three recorder crash/restart cycles interleaved with traffic.
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping", || {
        let mut p = PingClient::new(40);
        p.think_ns = 2_000_000;
        Box::new(p)
    });
    let mut w = WorldBuilder::new(2).registry(reg).build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    for k in 1..=3u64 {
        w.run_until(SimTime::from_millis(60 * k));
        w.crash_recorder();
        w.run_until(SimTime::from_millis(60 * k + 30));
        w.restart_recorder();
    }
    w.run_until(SimTime::from_secs(60));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 41, "{}", out.len());
    assert_eq!(w.recorder.recorder().restart_number(), 3);
}
