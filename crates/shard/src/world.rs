//! The sharded-tier driver: kernels + N recorder shards on one medium.
//!
//! `ShardedWorld` generalizes `publishing_core`'s single-recorder
//! `World` and replicated `MultiWorld`: the published log and checkpoint
//! store are *partitioned* across shards by the HRW [`ShardMap`], with
//! R-way replication inside each pid's capture set. The driver wires
//! the [`ShardRouter`] into the medium (per-frame ack ownership), into
//! each shard's recorder (ownership filter) and recovery manager
//! (responsibility filter), and implements the tier's orchestration:
//!
//! - **parallel recovery** — a crashed node's processes are recovered
//!   concurrently, each by the shard responsible for it, after the
//!   restart leader (the shard owning the node's kernel endpoint)
//!   announces the restart;
//! - **failover** — when a shard dies, its pids fall to their next-
//!   ranked live shard (which already holds their log, R ≥ 2), the
//!   capture sets are re-replicated to restore R copies, and the newly
//!   responsible shard issues targeted state queries so recoveries that
//!   died with the shard restart cleanly;
//! - **rebalancing** — a new shard drains the log segments of the pids
//!   it claims from their current holders, then the map epoch is bumped
//!   and a [`ShardCutover`] control message is published on the medium.

use crate::map::{ShardId, ShardMap};
use crate::router::ShardRouter;
use publishing_core::node::{RNAction, RecorderConfig, RecorderNode};
use publishing_demos::costs::CostModel;
use publishing_demos::harness::OutputLine;
use publishing_demos::ids::{Channel, MessageId, NodeId, ProcessId};
use publishing_demos::kernel::{encode_ctl, Kernel, KernelAction};
use publishing_demos::link::Link;
use publishing_demos::message::{Message, MessageHeader};
use publishing_demos::protocol::{codes, ShardCutover};
use publishing_demos::registry::{ProgramRegistry, UnknownProgram};
use publishing_demos::transport::{TransportConfig, Wire};
use publishing_net::bus::PerfectBus;
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_net::lan::{Lan, LanConfig};
use publishing_sim::codec::Encode;
use publishing_sim::event::Scheduler;
use publishing_sim::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug)]
enum SEv {
    LanTimer(u64),
    KernelTimer(u32, u64),
    ShardTimer(usize, u64),
    Deliver {
        to: u32,
        frame: Frame,
        recorder_ok: bool,
    },
}

/// A world whose recorder tier is sharded.
pub struct ShardedWorld {
    sched: Scheduler<SEv>,
    /// The shared medium.
    pub lan: Box<dyn Lan>,
    /// Processing-node kernels.
    pub kernels: BTreeMap<u32, Kernel>,
    /// The recorder shards; index i is [`ShardId`]`(i)`.
    pub shards: Vec<RecorderNode>,
    router: ShardRouter,
    /// Raw outputs.
    pub outputs: Vec<OutputLine>,
    node_incarnations: BTreeMap<u32, u32>,
    /// Every pid ever spawned (rebalance bookkeeping).
    processes: BTreeSet<ProcessId>,
    /// Restarted shards catching up before being readmitted: (idx, since).
    rejoining: Vec<(usize, SimTime)>,
    n_nodes: u32,
    cutovers_published: u64,
    /// Virtual instants of injected crashes, in injection order.
    crashes: Vec<SimTime>,
    /// Packed pid → virtual instant its recovery committed.
    recovered: BTreeMap<u64, SimTime>,
}

impl ShardedWorld {
    /// Builds a world with `nodes` processing nodes and `n_shards`
    /// recorder shards (on node ids `nodes..nodes+n_shards`), with
    /// capture sets of min(2, n_shards) shards.
    pub fn new(nodes: u32, n_shards: usize, registry: ProgramRegistry) -> Self {
        ShardedWorld::with_medium(
            nodes,
            n_shards,
            registry,
            Box::new(PerfectBus::new(LanConfig::default())),
        )
    }

    /// Builds a world like [`ShardedWorld::new`] but on a caller-supplied
    /// medium (ethernet, token ring, star...). The medium must be fresh:
    /// stations are attached here.
    pub fn with_medium(
        nodes: u32,
        n_shards: usize,
        registry: ProgramRegistry,
        lan: Box<dyn Lan>,
    ) -> Self {
        ShardedWorld::with_tuning(
            nodes,
            n_shards,
            registry,
            lan,
            CostModel::zero(),
            TransportConfig::default(),
        )
    }

    /// Builds a world like [`ShardedWorld::with_medium`] with explicit
    /// node CPU costs and transport parameters (the what-if profiler's
    /// tuning knobs).
    pub fn with_tuning(
        nodes: u32,
        n_shards: usize,
        registry: ProgramRegistry,
        mut lan: Box<dyn Lan>,
        costs: CostModel,
        transport: TransportConfig,
    ) -> Self {
        let replication = 2.min(n_shards.max(1));
        let router = ShardRouter::new(ShardMap::new(n_shards as u32), replication);
        lan.set_recorder_router(Some(router.recorder_router()));
        let shard_nodes: Vec<NodeId> = (0..n_shards as u32).map(|i| NodeId(nodes + i)).collect();
        let mut kernels = BTreeMap::new();
        for n in 0..nodes {
            let mut k = Kernel::new(
                NodeId(n),
                registry.clone(),
                costs.clone(),
                transport.clone(),
                true,
            );
            for r in &shard_nodes {
                k.add_recorder(*r);
            }
            lan.attach(k.station());
            kernels.insert(n, k);
        }
        let mut shards = Vec::new();
        for (i, r) in shard_nodes.iter().enumerate() {
            let sid = ShardId(i as u32);
            let mut rn = RecorderNode::new(*r, RecorderConfig::default());
            rn.set_shard_filters(
                Some(router.owner_filter(sid)),
                Some(router.responsible_filter(sid)),
            );
            router.register(sid, rn.station());
            lan.attach(rn.station());
            shards.push(rn);
        }
        let mut world = ShardedWorld {
            sched: Scheduler::new(),
            lan,
            kernels,
            shards,
            router,
            outputs: Vec::new(),
            node_incarnations: BTreeMap::new(),
            processes: BTreeSet::new(),
            rejoining: Vec::new(),
            n_nodes: nodes,
            cutovers_published: 0,
            crashes: Vec::new(),
            recovered: BTreeMap::new(),
        };
        world.refresh_required();
        let watch: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        for i in 0..world.shards.len() {
            let actions = world.shards[i].start(SimTime::ZERO, &watch);
            world.apply_shard(SimTime::ZERO, i, actions);
        }
        world
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Read access to the routing state.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards ever admitted (live or not).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cutover control messages published so far.
    pub fn cutovers_published(&self) -> u64 {
        self.cutovers_published
    }

    /// The global fallback required set: every live, admitted shard.
    /// Only undecodable frames ever consult it; everything else goes
    /// through the per-frame router.
    fn refresh_required(&mut self) {
        let live: Vec<StationId> = self
            .router
            .with_map(|m| m.live())
            .iter()
            .map(|s| self.shards[s.0 as usize].station())
            .collect();
        if live.is_empty() {
            let all: Vec<StationId> = self.shards.iter().map(|r| r.station()).collect();
            self.lan.set_required_recorders(all);
        } else {
            self.lan.set_required_recorders(live);
        }
    }

    /// Spawns a program on a node.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] for unregistered images.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        let now = self.now();
        let k = self.kernels.get_mut(&node).expect("node exists");
        let (pid, actions) = k.spawn(now, program, links)?;
        self.processes.insert(pid);
        self.apply_kernel(now, node, actions);
        Ok(pid)
    }

    fn apply_kernel(&mut self, now: SimTime, node: u32, actions: Vec<KernelAction>) {
        for a in actions {
            match a {
                KernelAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                KernelAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, SEv::KernelTimer(node, token));
                }
                KernelAction::Output { pid, seq, bytes } => {
                    self.outputs.push(OutputLine {
                        at: now,
                        pid,
                        seq,
                        bytes,
                    });
                }
            }
        }
    }

    fn apply_shard(&mut self, now: SimTime, idx: usize, actions: Vec<RNAction>) {
        for a in actions {
            match a {
                RNAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                RNAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, SEv::ShardTimer(idx, token));
                }
                RNAction::RestartNode { node, .. } => {
                    // Generalized §6.3 arbitration: the shard owning the
                    // node's kernel endpoint leads its restart.
                    if self.router.restart_leader(node) != Some(ShardId(idx as u32)) {
                        self.shards[idx].decline_node_restart(node);
                        continue;
                    }
                    let inc = self.node_incarnations.entry(node.0).or_insert(0);
                    *inc += 1;
                    let incarnation = *inc;
                    if let Some(k) = self.kernels.get_mut(&node.0) {
                        k.restart_node(now, incarnation);
                        self.lan.set_station_up(StationId(node.0), true);
                    }
                    // Fan the confirmation to every live shard: the
                    // leader announces NODE_RESTARTED; the rest quietly
                    // reset transport and recover the pids they are
                    // responsible for — the parallel-replay fan-out.
                    let live: Vec<usize> = (0..self.shards.len())
                        .filter(|&j| self.shards[j].is_up())
                        .collect();
                    for j in live {
                        let follow = self.shards[j].confirm_node_restarted_with(
                            now,
                            node,
                            incarnation,
                            j == idx,
                        );
                        self.apply_shard(now, j, follow);
                    }
                }
                RNAction::RecoveryDone { pid } => {
                    self.recovered.insert(pid.as_u64(), now);
                }
            }
        }
    }

    fn apply_lan(&mut self, actions: Vec<publishing_net::lan::LanAction>) {
        use publishing_net::lan::LanAction;
        for a in actions {
            match a {
                LanAction::Deliver {
                    at,
                    to,
                    frame,
                    recorder_ok,
                } => {
                    self.sched.schedule_at(
                        at,
                        SEv::Deliver {
                            to: to.0,
                            frame,
                            recorder_ok,
                        },
                    );
                }
                LanAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, SEv::LanTimer(token));
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    fn shard_index(&self, station: u32) -> Option<usize> {
        self.shards.iter().position(|r| r.node().0 == station)
    }

    /// Processes one event.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.pop() else {
            return false;
        };
        self.dispatch(now, ev);
        self.check_rejoining();
        true
    }

    fn dispatch(&mut self, now: SimTime, ev: SEv) {
        match ev {
            SEv::LanTimer(token) => {
                let actions = self.lan.timer(now, token);
                self.apply_lan(actions);
            }
            SEv::KernelTimer(node, token) => {
                if let Some(k) = self.kernels.get_mut(&node) {
                    let actions = k.on_timer(now, token);
                    self.apply_kernel(now, node, actions);
                }
            }
            SEv::ShardTimer(idx, token) => {
                let actions = self.shards[idx].on_timer(now, token);
                self.apply_shard(now, idx, actions);
            }
            SEv::Deliver {
                to,
                frame,
                recorder_ok,
            } => {
                if to < self.n_nodes {
                    if let Some(k) = self.kernels.get_mut(&to) {
                        let actions = k.on_frame(now, &frame, recorder_ok);
                        self.apply_kernel(now, to, actions);
                    }
                } else if let Some(idx) = self.shard_index(to) {
                    let actions = self.shards[idx].on_frame(now, &frame, recorder_ok);
                    self.apply_shard(now, idx, actions);
                }
            }
        }
    }

    /// Readmit rejoining shards once they have caught up (§6.3:
    /// natural checkpointing brings a returning recorder up to date).
    fn check_rejoining(&mut self) {
        if !self.rejoining.is_empty() {
            let done: Vec<(usize, SimTime)> = self
                .rejoining
                .iter()
                .copied()
                .filter(|(i, since)| self.shards[*i].recorder().caught_up(*since))
                .collect();
            if !done.is_empty() {
                self.rejoining
                    .retain(|(i, _)| !done.iter().any(|(j, _)| j == i));
                let now = self.now();
                for (i, _) in done {
                    self.readmit_shard(now, i);
                }
            }
        }
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Installs a fault clock: [`ShardedWorld::run_until_or_fault`]
    /// pauses at each of its instants so a chaos driver can inject
    /// faults.
    pub fn set_fault_clock(&mut self, clock: publishing_sim::event::FaultClock) {
        self.sched.set_fault_clock(clock);
    }

    /// Runs until `deadline` or the next fault-clock instant, whichever
    /// comes first. Returns `Some(t)` when paused at a fault instant,
    /// `None` once `deadline` is reached with no fault due before it.
    pub fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        use publishing_sim::event::Tick;
        loop {
            let fault_due = self.sched.next_fault().map(|f| f <= deadline);
            let event_due = self.sched.peek_time().map(|t| t <= deadline);
            if fault_due != Some(true) && event_due != Some(true) {
                return None;
            }
            match self.sched.pop_or_fault() {
                Some(Tick::Fault(t)) => return Some(t),
                Some(Tick::Event(now, ev)) => {
                    self.dispatch(now, ev);
                    self.check_rejoining();
                }
                None => return None,
            }
        }
    }

    /// Capture sets and responsibility before a membership change.
    #[allow(clippy::type_complexity)]
    fn snapshot_placement(
        &self,
    ) -> (
        BTreeMap<ProcessId, Vec<ShardId>>,
        BTreeMap<ProcessId, ShardId>,
    ) {
        self.router.with_map(|m| {
            let r = self.router.replication();
            let caps = self
                .processes
                .iter()
                .map(|&p| (p, m.capture_set(p, r)))
                .collect();
            let resp = self
                .processes
                .iter()
                .filter_map(|&p| m.responsible(p).map(|s| (p, s)))
                .collect();
            (caps, resp)
        })
    }

    /// After a map change: restore R-way replication by draining log
    /// segments into newly responsible capture-set members, release
    /// segments from members that dropped out, and have shards that
    /// inherited responsibility from a dead one query their new pids'
    /// states (a recovery that died with the old shard must restart).
    fn reconcile_placement(
        &mut self,
        now: SimTime,
        before_caps: &BTreeMap<ProcessId, Vec<ShardId>>,
        before_resp: &BTreeMap<ProcessId, ShardId>,
    ) {
        let r = self.router.replication();
        let mut queries: BTreeMap<usize, Vec<ProcessId>> = BTreeMap::new();
        for (&pid, old_set) in before_caps {
            let new_set = self.router.with_map(|m| m.capture_set(pid, r));
            for &s in new_set.iter().filter(|s| !old_set.contains(s)) {
                let tgt = s.0 as usize;
                if !self.shards[tgt].is_up() {
                    continue;
                }
                // A readmitted shard kept capturing its pids while it
                // was marked dead (its ownership filter counts itself),
                // so its segment is already complete — don't re-drain.
                if self.shards[tgt].recorder().entry(pid).is_some() {
                    continue;
                }
                let export = old_set.iter().find_map(|&o| {
                    let src = o.0 as usize;
                    if src != tgt && self.shards[src].is_up() {
                        self.shards[src].export_process(pid)
                    } else {
                        None
                    }
                });
                if let Some(export) = export {
                    let actions = self.shards[tgt].import_process(now, export);
                    self.apply_shard(now, tgt, actions);
                }
            }
            for &s in old_set.iter().filter(|s| !new_set.contains(s)) {
                let src = s.0 as usize;
                if self.shards[src].is_up() {
                    let actions = self.shards[src].release_process(now, pid);
                    self.apply_shard(now, src, actions);
                }
            }
            let new_resp = self.router.with_map(|m| m.responsible(pid));
            if let (Some(&old_r), Some(new_r)) = (before_resp.get(&pid), new_resp) {
                if old_r != new_r && !self.shards[old_r.0 as usize].is_up() {
                    queries.entry(new_r.0 as usize).or_default().push(pid);
                }
            }
        }
        for (idx, pids) in queries {
            let actions = self.shards[idx].query_process_states(now, &pids);
            self.apply_shard(now, idx, actions);
        }
    }

    /// Publishes the new map epoch as a control message on the medium —
    /// the §4 publishing principle applied to the tier's own
    /// reconfiguration: the cutover is part of the recorded broadcast
    /// history, not a side channel.
    fn publish_cutover(&mut self, now: SimTime) {
        let (epoch, live_shards) = self.router.with_map(|m| (m.epoch(), m.live().len() as u32));
        let Some(src_idx) = self.shards.iter().position(|s| s.is_up()) else {
            return;
        };
        let src_node = self.shards[src_idx].node();
        let body = encode_ctl(codes::SHARD_CUTOVER, &ShardCutover { epoch, live_shards });
        self.cutovers_published += 1;
        let seq = (epoch << 16) | self.cutovers_published;
        let nodes: Vec<u32> = self.kernels.keys().copied().collect();
        for n in nodes {
            let msg = Message {
                header: MessageHeader {
                    id: MessageId {
                        sender: ProcessId::kernel_of(src_node),
                        seq,
                    },
                    to: ProcessId::kernel_of(NodeId(n)),
                    code: 0,
                    channel: Channel::DEFAULT,
                    deliver_to_kernel: false,
                },
                passed_link: None,
                body: body.clone(),
            };
            let wire = Wire::Datagram { src_node, msg };
            let frame = Frame::new(
                StationId(src_node.0),
                Destination::Station(StationId(n)),
                wire.encode_to_vec(),
            );
            let actions = self.lan.submit(now, frame);
            self.apply_lan(actions);
        }
    }

    /// Crashes a shard. Its pids fail over to their next-ranked live
    /// shard (which, with R ≥ 2, already holds their full log); capture
    /// sets are re-replicated and inherited recoveries re-queried.
    pub fn crash_shard(&mut self, idx: usize) {
        let now = self.now();
        self.crashes.push(now);
        let (caps, resp) = self.snapshot_placement();
        self.shards[idx].crash();
        let st = self.shards[idx].station();
        self.lan.set_station_up(st, false);
        self.rejoining.retain(|(i, _)| *i != idx);
        self.router
            .with_map_mut(|m| m.set_live(ShardId(idx as u32), false));
        self.refresh_required();
        self.reconcile_placement(now, &caps, &resp);
        self.publish_cutover(now);
    }

    /// Restarts a crashed shard. It rebuilds from its store, keeps
    /// recording its pids immediately (its ownership filter counts it
    /// even while not readmitted), and is marked live again — regaining
    /// responsibility — only once every process it knows has
    /// checkpointed since the restart.
    pub fn restart_shard(&mut self, idx: usize) {
        let now = self.now();
        let st = self.shards[idx].station();
        self.lan.set_station_up(st, true);
        let actions = self.shards[idx].restart(now);
        self.apply_shard(now, idx, actions);
        self.rejoining.push((idx, now));
    }

    fn readmit_shard(&mut self, now: SimTime, idx: usize) {
        let (caps, resp) = self.snapshot_placement();
        self.router
            .with_map_mut(|m| m.set_live(ShardId(idx as u32), true));
        self.refresh_required();
        self.reconcile_placement(now, &caps, &resp);
        self.publish_cutover(now);
    }

    /// Admits a brand-new shard: drains the log segments of every pid
    /// the new shard claims from their current holders, bumps the map
    /// epoch, publishes the cutover, and releases the drained segments
    /// from the members they moved off of.
    pub fn add_shard(&mut self) -> ShardId {
        let now = self.now();
        let idx = self.shards.len();
        let sid = ShardId(idx as u32);
        let node = NodeId(self.n_nodes + idx as u32);
        let (caps, resp) = self.snapshot_placement();
        let mut rn = RecorderNode::new(node, RecorderConfig::default());
        rn.set_shard_filters(
            Some(self.router.owner_filter(sid)),
            Some(self.router.responsible_filter(sid)),
        );
        self.router.register(sid, rn.station());
        self.lan.attach(rn.station());
        self.shards.push(rn);
        for k in self.kernels.values_mut() {
            k.add_recorder(node);
        }
        let watch: Vec<NodeId> = (0..self.n_nodes).map(NodeId).collect();
        let actions = self.shards[idx].start(now, &watch);
        self.apply_shard(now, idx, actions);
        // Cutover: membership change first (one atomic epoch bump every
        // closure sees), then drain/release against the old placement.
        self.router.with_map_mut(|m| m.add_shard(sid));
        self.refresh_required();
        self.reconcile_placement(now, &caps, &resp);
        self.publish_cutover(now);
        sid
    }

    /// Crashes a process (detected fault).
    pub fn crash_process(&mut self, pid: ProcessId, reason: &str) {
        let now = self.now();
        if let Some(k) = self.kernels.get_mut(&pid.node.0) {
            self.crashes.push(now);
            let actions = k.crash_process(now, pid.local, reason);
            self.apply_kernel(now, pid.node.0, actions);
        }
    }

    /// Crashes a node; the restart leader's watchdog will notice and
    /// every responsible shard recovers its slice of the node's
    /// processes in parallel.
    pub fn crash_node(&mut self, node: u32) {
        if let Some(k) = self.kernels.get_mut(&node) {
            self.crashes.push(self.sched.now());
            k.crash_node();
            self.lan.set_station_up(StationId(node), false);
        }
    }

    /// Deduplicated outputs of one process.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        let mut by_seq: BTreeMap<u64, &OutputLine> = BTreeMap::new();
        for o in self.outputs.iter().filter(|o| o.pid == pid) {
            by_seq.entry(o.seq).or_insert(o);
        }
        by_seq
            .values()
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// A fingerprint of every process's deduplicated output, for
    /// crash-free vs crashed-and-recovered equivalence checks.
    pub fn output_fingerprint(&self) -> u64 {
        let mut per_pid: BTreeMap<ProcessId, BTreeMap<u64, &[u8]>> = BTreeMap::new();
        for o in &self.outputs {
            per_pid
                .entry(o.pid)
                .or_default()
                .entry(o.seq)
                .or_insert(&o.bytes);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (pid, lines) in per_pid {
            for (seq, bytes) in lines {
                for b in pid
                    .as_u64()
                    .to_le_bytes()
                    .iter()
                    .chain(seq.to_le_bytes().iter())
                    .chain(bytes.iter())
                {
                    h ^= *b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }

    /// Total completed recoveries across the tier.
    pub fn recoveries_completed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.manager().stats().completed.get())
            .sum()
    }

    /// The shards (by index) that completed at least one recovery.
    pub fn recovering_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].manager().stats().completed.get() > 0)
            .collect()
    }

    /// Every span log in the tier, in deterministic order: kernels by
    /// node id, then shards by index.
    pub fn span_logs(&self) -> Vec<&publishing_obs::span::SpanLog> {
        let mut logs: Vec<_> = self.kernels.values().map(|k| k.spans()).collect();
        logs.extend(self.shards.iter().map(|s| s.recorder().spans()));
        logs
    }

    /// Order-sensitive fingerprint over every span log — the run-level
    /// determinism oracle for the lifecycle trace.
    pub fn obs_fingerprint(&self) -> u64 {
        publishing_obs::span::combined_fingerprint(self.span_logs())
    }

    /// Caps every component span log (kernels and shard recorders) at
    /// `capacity` retained events. `0` keeps fingerprints and totals
    /// but retains nothing — the spans-disabled configuration of the
    /// overhead benchmark.
    pub fn set_span_capacity(&mut self, capacity: usize) {
        for k in self.kernels.values_mut() {
            k.set_span_capacity(capacity);
        }
        for s in &mut self.shards {
            s.set_span_capacity(capacity);
        }
    }

    /// The happens-before DAG over every component's span log.
    pub fn causal_graph(&self) -> publishing_obs::causal::CausalGraph {
        publishing_obs::causal::CausalGraph::build(self.span_logs())
    }

    /// Virtual instants of every injected crash, in injection order.
    pub fn crash_times(&self) -> &[SimTime] {
        &self.crashes
    }

    /// Completed recoveries: packed pid → instant the manager committed.
    pub fn recoveries_done(&self) -> &BTreeMap<u64, SimTime> {
        &self.recovered
    }

    /// The measured crash→convergence window: first injected crash to
    /// the last committed recovery. `None` until a recovery completes.
    pub fn recovery_window(&self) -> Option<(SimTime, SimTime)> {
        let crash = *self.crashes.first()?;
        let converged = *self.recovered.values().max()?;
        (converged >= crash).then_some((crash, converged))
    }

    /// Assembles per-message lifecycle spans from every component's log.
    pub fn spans(
        &self,
    ) -> BTreeMap<publishing_obs::span::MsgKey, publishing_obs::span::MessageSpan> {
        publishing_obs::span::assemble(self.span_logs())
    }

    /// Point-in-time health of every shard in the tier.
    pub fn shard_health(&self) -> Vec<publishing_obs::probe::ShardHealth> {
        (0..self.shards.len())
            .map(|i| {
                let rn = &self.shards[i];
                let rec = rn.recorder();
                publishing_obs::probe::ShardHealth {
                    shard: i as u32,
                    live: rn.is_up(),
                    catching_up: self.rejoining.iter().any(|(j, _)| *j == i),
                    queue_depth: rec.pending_depth() as u64,
                    known_processes: rec.known_pids().count() as u64,
                    recoveries_in_flight: rn.manager().job_pids().len() as u64,
                    replay_lag: publishing_core::obs::replay_lag(rec, rn.manager()),
                    gating_stalls: self.lan.stats().blocked_at(rn.station()),
                    published: rec.stats().published.get(),
                }
            })
            .collect()
    }

    /// Recovery-lag probes, one per process, read from the shard
    /// currently responsible for it (capture-set replicas would repeat
    /// the same entry).
    pub fn recovery_lags(&self) -> Vec<publishing_obs::probe::RecoveryLag> {
        let now = self.now();
        let suppressed =
            publishing_core::obs::suppressed_by_sender(self.kernels.values().map(|k| k.spans()));
        let mut out = Vec::new();
        for &pid in &self.processes {
            let Some(sid) = self.router.with_map(|m| m.responsible(pid)) else {
                continue;
            };
            let rec = self.shards[sid.0 as usize].recorder();
            let mut lags = publishing_core::obs::recovery_lags(rec, now, &suppressed);
            lags.retain(|l| l.subject == pid.as_u64());
            out.extend(lags);
        }
        out
    }

    /// Snapshots every component's instruments into one registry.
    pub fn collect_metrics(&self) -> publishing_obs::registry::MetricsRegistry {
        let now = self.now();
        let mut reg = publishing_obs::registry::MetricsRegistry::new();
        for k in self.kernels.values() {
            publishing_core::obs::kernel_metrics(&mut reg, k);
        }
        for (i, rn) in self.shards.iter().enumerate() {
            publishing_core::obs::recorder_node_metrics(&mut reg, &format!("shard/{i}"), rn, now);
        }
        for h in self.shard_health() {
            h.into_registry(&mut reg);
        }
        publishing_obs::probe::MediumHealth::from_lan(self.lan.stats(), now)
            .into_registry(&mut reg);
        reg
    }

    /// Builds the full observability report for the run so far.
    pub fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let now = self.now();
        let horizon = now.saturating_since(SimTime::ZERO);
        let mut profile = publishing_obs::profile::TimeProfile::new();
        let mut kernel_cpu = publishing_sim::time::SimDuration::ZERO;
        for k in self.kernels.values() {
            kernel_cpu += k.stats().cpu_used;
        }
        profile.charge("kernel_cpu", kernel_cpu);
        let mut publish_cpu = publishing_sim::time::SimDuration::ZERO;
        let mut disk_busy = publishing_sim::time::SimDuration::ZERO;
        for rn in &self.shards {
            publish_cpu += rn.recorder().stats().cpu_used;
            let store = rn.recorder().store();
            for i in 0..store.n_disks() {
                disk_busy += store.disk_stats(i).busy.busy_time(now);
            }
        }
        profile.charge("publish_cpu", publish_cpu);
        profile.charge("stable_store_io", disk_busy);
        profile.charge("medium_busy", self.lan.stats().busy.busy_time(now));

        let mut metrics = self.collect_metrics();
        let mut recovery = self.recovery_lags();
        let graph = (!self.recovered.is_empty()).then(|| self.causal_graph());
        if let Some(g) = &graph {
            for lag in &mut recovery {
                let Some(&done) = self.recovered.get(&lag.subject) else {
                    continue;
                };
                let Some(&crash) = self.crashes.iter().filter(|&&c| c <= done).max() else {
                    continue;
                };
                lag.recovery_ms = done.saturating_since(crash).as_millis_f64();
                lag.critical_path_ms = g
                    .critical_path(crash, done, Some(lag.subject))
                    .map(|p| p.total().as_millis_f64())
                    .unwrap_or(lag.recovery_ms);
            }
        }
        let critical_path = self
            .recovery_window()
            .and_then(|(crash, converged)| graph.as_ref()?.critical_path(crash, converged, None));
        if let Some(cp) = &critical_path {
            cp.into_registry(&mut metrics);
        }

        let spans = self.spans();
        let logs = self.span_logs();
        publishing_obs::report::ObsReport {
            schema: publishing_obs::report::REPORT_SCHEMA_VERSION,
            at_ms: now.as_millis_f64(),
            metrics,
            recovery,
            shards: self.shard_health(),
            medium: Some(publishing_obs::probe::MediumHealth::from_lan(
                self.lan.stats(),
                now,
            )),
            profile,
            horizon,
            latencies: publishing_obs::profile::stage_latencies(&spans),
            sched: self.scheduler_probe(),
            queue_depths: self.queue_depths(),
            spans_total: logs.iter().map(|l| l.total()).sum(),
            span_fingerprint: self.obs_fingerprint(),
            critical_path,
            quorum: Vec::new(),
            consensus: None,
            watchdog: None,
            workload: None,
            utilization: Some(publishing_core::obs::utilization_report(
                self.kernels.values(),
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(i, rn)| (i as u32, rn.recorder())),
                self.lan.as_ref(),
                now,
            )),
            whatif: None,
            forensics: None,
        }
    }

    /// Event-queue statistics of the world's scheduler.
    pub fn scheduler_probe(&self) -> publishing_obs::probe::SchedulerProbe {
        publishing_obs::probe::SchedulerProbe {
            delivered: self.sched.delivered(),
            scheduled: self.sched.scheduled(),
            pending: self.sched.pending() as u64,
            peak_pending: self.sched.peak_pending() as u64,
        }
    }

    /// Pending-buffer depth distribution merged across every shard's
    /// recorder (all shards share the same binning).
    pub fn queue_depths(&self) -> Option<publishing_sim::stats::LinearHistogram> {
        let mut merged: Option<publishing_sim::stats::LinearHistogram> = None;
        for rn in &self.shards {
            let h = &rn.recorder().stats().depth_hist;
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
        merged
    }
}

impl core::fmt::Debug for ShardedWorld {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("nodes", &self.n_nodes)
            .field("shards", &self.shards.len())
            .field("router", &self.router)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::programs::{self, PingClient};

    fn registry() -> ProgramRegistry {
        let mut reg = ProgramRegistry::new();
        programs::register_standard(&mut reg);
        reg.register("ping10", || Box::new(PingClient::new(10)));
        reg
    }

    #[test]
    fn ping_completes_under_sharding() {
        let mut w = ShardedWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_secs(5));
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
        assert_eq!(out.last().unwrap(), "done");
    }

    #[test]
    fn each_pid_is_recorded_by_its_capture_set() {
        let mut w = ShardedWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_secs(5));
        for pid in [server, client] {
            let caps = w.router().with_map(|m| m.capture_set(pid, 2));
            for i in 0..w.shard_count() {
                let has = w.shards[i].recorder().entry(pid).is_some();
                let should = caps.contains(&ShardId(i as u32));
                assert_eq!(has, should, "shard {i} vs capture set {caps:?} for {pid:?}");
            }
        }
    }

    #[test]
    fn process_crash_recovered_by_responsible_shard_only() {
        let mut w = ShardedWorld::new(2, 3, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(40));
        w.crash_process(server, "injected");
        w.run_until(SimTime::from_secs(10));
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
        let responsible = w.router().with_map(|m| m.responsible(server)).unwrap();
        for i in 0..w.shard_count() {
            let completed = w.shards[i].manager().stats().completed.get();
            if i == responsible.0 as usize {
                assert_eq!(completed, 1, "responsible shard recovers");
            } else {
                assert_eq!(completed, 0, "shard {i} must defer");
            }
        }
    }

    #[test]
    fn add_shard_publishes_cutover_and_keeps_working() {
        let mut w = ShardedWorld::new(2, 2, registry());
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(30));
        let epoch_before = w.router().with_map(|m| m.epoch());
        let sid = w.add_shard();
        assert_eq!(sid, ShardId(2));
        assert!(w.router().with_map(|m| m.epoch()) > epoch_before);
        assert_eq!(w.cutovers_published(), 1);
        w.run_until(SimTime::from_secs(5));
        let out = w.outputs_of(client);
        assert_eq!(out.len(), 11, "{out:?}");
    }
}
