//! Failing-schedule shrinking: deterministic delta debugging.
//!
//! Given a schedule that fails the oracle and a predicate that re-runs
//! a candidate (true = still fails), shrinking proceeds in two phases:
//!
//! 1. **drop faults** — greedily remove one fault at a time, restarting
//!    the sweep after every successful removal, to a fixpoint (the
//!    classic ddmin tail: every remaining fault is necessary);
//! 2. **bisect timings** — for each surviving fault, binary-search its
//!    injection time down toward zero and its burst duration down
//!    toward one millisecond, keeping only changes that still fail.
//!
//! Every step is deterministic: candidates are derived purely from the
//! schedule, and the predicate replays them in the deterministic
//! simulator, so the minimal reproducer's literal replays the failure
//! exactly.

use crate::schedule::FaultSchedule;

/// Shrinks `schedule` to a locally minimal failing schedule.
///
/// `fails` must return `true` for `schedule` itself; if it does not,
/// the schedule is returned unchanged (nothing to shrink).
pub fn shrink<F>(schedule: &FaultSchedule, fails: &mut F) -> FaultSchedule
where
    F: FnMut(&FaultSchedule) -> bool,
{
    if !fails(schedule) {
        return schedule.clone();
    }
    let mut cur = schedule.clone();

    // Phase 1: drop faults to a fixpoint.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.faults.len() {
            let mut cand = cur.clone();
            cand.faults.remove(i);
            if fails(&cand) {
                cur = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }

    // Phase 2: bisect each fault's time toward 0 (ms granularity).
    for i in 0..cur.faults.len() {
        let mut lo = 0; // earliest time not yet known to pass
        loop {
            let t = cur.faults[i].at_ms();
            if t <= lo {
                break;
            }
            let mid = lo + (t - lo) / 2;
            let mut cand = cur.clone();
            cand.faults[i].set_at_ms(mid);
            if fails(&cand) {
                cur = cand;
            } else if mid + 1 >= t {
                break;
            } else {
                lo = mid + 1;
            }
        }
        // And each burst's duration toward 1 ms.
        if cur.faults[i].dur_ms().is_some() {
            let mut lo = 1;
            loop {
                let d = cur.faults[i].dur_ms().expect("windowed");
                if d <= lo {
                    break;
                }
                let mid = lo + (d - lo) / 2;
                let mut cand = cur.clone();
                cand.faults[i].set_dur_ms(mid);
                if fails(&cand) {
                    cur = cand;
                } else if mid + 1 >= d {
                    break;
                } else {
                    lo = mid + 1;
                }
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Fault;

    fn sched(faults: Vec<Fault>) -> FaultSchedule {
        FaultSchedule {
            workload_seed: 1,
            horizon_ms: 1000,
            faults,
        }
    }

    #[test]
    fn drops_irrelevant_faults_and_bisects_time() {
        // "Fails" iff some crash_node is present at t >= 100.
        let mut fails = |s: &FaultSchedule| {
            s.faults
                .iter()
                .any(|f| matches!(f, Fault::CrashNode { at_ms, .. } if *at_ms >= 100))
        };
        let full = sched(vec![
            Fault::Loss {
                at_ms: 50,
                dur_ms: 100,
                p_pct: 10,
            },
            Fault::CrashNode {
                at_ms: 700,
                node: 1,
            },
            Fault::CrashProcess {
                at_ms: 720,
                victim: 0,
            },
            Fault::TornWrites { at_ms: 800 },
        ]);
        let min = shrink(&full, &mut fails);
        assert_eq!(
            min.faults,
            vec![Fault::CrashNode {
                at_ms: 100,
                node: 1
            }],
            "minimal: {min}"
        );
    }

    #[test]
    fn passing_schedule_is_returned_unchanged() {
        let s = sched(vec![Fault::TornWrites { at_ms: 10 }]);
        let min = shrink(&s, &mut |_| false);
        assert_eq!(min, s);
    }

    #[test]
    fn shrinks_burst_durations() {
        // "Fails" iff a loss burst covers t=400.
        let mut fails = |s: &FaultSchedule| {
            s.faults.iter().any(
                |f| matches!(f, Fault::Loss { at_ms, dur_ms, .. } if *at_ms <= 400 && 400 < at_ms + dur_ms),
            )
        };
        let full = sched(vec![Fault::Loss {
            at_ms: 100,
            dur_ms: 600,
            p_pct: 30,
        }]);
        let min = shrink(&full, &mut fails);
        // Time bisects first (any start <= 400 still covers t=400 with
        // the original duration), then the duration tightens to the
        // smallest window still covering t=400.
        assert_eq!(
            min.faults,
            vec![Fault::Loss {
                at_ms: 0,
                dur_ms: 401,
                p_pct: 30
            }],
            "minimal: {min}"
        );
    }
}
