//! Causal explorer over the published log: happens-before chains,
//! recovery critical path, and replay-divergence diffing.
//!
//! Drives the same deterministic crash/recovery scenario as
//! `obs_report` — echo servers on one node, ping clients elsewhere, the
//! server node crashed mid-run and recovered in parallel by the
//! responsible shards — builds the happens-before DAG from every
//! component's span log, and answers three questions:
//!
//! 1. **explain** — for a message key, the full causal chain from its
//!    publish back through program order, capture, sequencing, and
//!    delivery, with the virtual-time slack spent on every hop;
//! 2. **critical path** — the longest weighted chain from the crash to
//!    convergence, each segment attributed to a recovery stage
//!    (checkpoint load, replay, suppression, re-sequencing, delivery);
//! 3. **divergence diff** — align this run's span stream against the
//!    fault-free baseline of the same workload and pinpoint the first
//!    event where they part ways, with its causal ancestors.
//!
//! Usage: `explain [--smoke] [--key NODE.LOCAL#SEQ] [--dot PATH]
//! [--flow PATH] [--diff] [--quorum]`
//!
//! - `--key K` explains message `K` (default: the latest suppressed or
//!   delivered message of the run);
//! - `--dot PATH` writes the DAG as Graphviz DOT;
//! - `--flow PATH` writes the Chrome-trace timeline with flow arrows
//!   (send→deliver, replay→suppress) for Perfetto;
//! - `--diff` prints the first causal divergence against the fault-free
//!   baseline (expected: the crash's first replay);
//! - `--smoke` runs the CI gate: the critical path must be non-empty
//!   and its attribution must sum to the measured recovery lag, the
//!   explain chain must be non-empty, and the DOT and flow exports must
//!   be byte-identical across two runs;
//! - `--quorum` switches to the replicated-recorder world and the
//!   committed leader-crash schedule (leader replica dies at 250ms, the
//!   server node at 400ms): the crash→convergence critical path must
//!   then cross an election-gate edge, attributing part of the recovery
//!   window to the leader failover itself.

use publishing_demos::ids::Channel;
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_obs::causal::{CausalGraph, EdgeKind};
use publishing_obs::span::{MsgKey, Stage};
use publishing_perf::trace;
use publishing_quorum::QuorumWorld;
use publishing_shard::ShardedWorld;
use publishing_sim::time::SimTime;

fn registry(pings: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("pinger", move || {
        let mut p = PingClient::new(pings);
        p.think_ns = 2_000_000;
        Box::new(p)
    });
    reg
}

/// Runs the canonical crash/recovery scenario (crash omitted for the
/// fault-free baseline used by `--diff`).
fn run_scenario(pings: u64, pairs: u32, horizon: SimTime, crash: bool) -> ShardedWorld {
    let mut w = ShardedWorld::new(3, 4, registry(pings));
    for i in 0..pairs {
        let server = w.spawn(2, "echo", vec![]).expect("echo registered");
        w.spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
            .expect("pinger registered");
    }
    if crash {
        w.run_until(SimTime::from_millis(50));
        w.crash_node(2);
    }
    w.run_until(horizon);
    w
}

/// The Chrome-trace export of a world's span logs, in the same
/// component order as `ShardedWorld::span_logs()`.
fn flow_trace(w: &ShardedWorld) -> trace::ChromeTrace {
    let mut components = Vec::new();
    for (n, k) in &w.kernels {
        components.push((format!("node {n} kernel"), k.spans()));
    }
    for (i, rn) in w.shards.iter().enumerate() {
        components.push((format!("shard {i} recorder"), rn.recorder().spans()));
    }
    trace::from_spans(&components)
}

/// Picks the most interesting default key: the latest suppressed
/// message if the run recovered anything, else the latest delivery.
fn default_key(g: &CausalGraph) -> Option<MsgKey> {
    for want in [Stage::Suppress, Stage::Deliver, Stage::Publish] {
        if let Some(e) = g.events().iter().rev().find(|e| e.stage == want) {
            return Some(e.key);
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("explain: {msg}");
    std::process::exit(1);
}

/// The committed leader-crash schedule of the `quorum` gate: traffic
/// starts, the leader replica dies at 250ms (forcing an election), the
/// server node dies at 400ms (forcing a replay under the new leader).
fn run_quorum_scenario(horizon: SimTime) -> QuorumWorld {
    let mut w = QuorumWorld::new(2, 3, registry(10));
    let server = w.spawn(1, "echo", vec![]).expect("echo registered");
    w.spawn(0, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
        .expect("pinger registered");
    w.run_until(SimTime::from_millis(250));
    if let Some(leader) = w.leader() {
        w.crash_replica(leader);
    }
    w.run_until(SimTime::from_millis(400));
    w.crash_node(1);
    w.run_until(horizon);
    w
}

/// Explains the leader-failover recovery of the quorum world: builds
/// the happens-before DAG (including election-gate edges), attributes
/// the crash→convergence critical path, and — under `--smoke` — gates
/// on the election hop actually appearing in the attribution.
fn run_quorum_mode(smoke: bool, dot_path: Option<&str>) {
    let horizon = SimTime::from_secs(12);
    let w = run_quorum_scenario(horizon);
    let g = w.causal_graph();
    if let Err(e) = g.validate() {
        fail(&format!("quorum causal graph failed validation: {e}"));
    }
    let elect_gates = g
        .edges()
        .iter()
        .filter(|e| e.kind == EdgeKind::ElectGate)
        .count();
    println!(
        "causal graph: {} events, {} edges ({} election gates) over {} logs",
        g.len(),
        g.edges().len(),
        elect_gates,
        w.span_logs().len()
    );
    if smoke && elect_gates == 0 {
        fail("failover run built no election-gate edges");
    }

    let Some((crash, conv)) = w.recovery_window() else {
        fail("quorum run produced no recovery window");
    };
    let Some(cp) = g.critical_path(crash, conv, None) else {
        fail("quorum run produced no critical path");
    };
    println!("\n{}", cp.render());
    let measured = conv.saturating_since(crash);
    if cp.total() != measured {
        fail(&format!(
            "critical-path attribution {:.3}ms does not sum to measured recovery lag {:.3}ms",
            cp.total().as_millis_f64(),
            measured.as_millis_f64()
        ));
    }
    let election = cp
        .by_stage()
        .into_iter()
        .find(|e| e.0 == "election")
        .map(|e| e.1);
    match election {
        Some(d) => println!(
            "election hop: {:.3}ms of the {:.3}ms crash→convergence window went to leader failover",
            d.as_millis_f64(),
            measured.as_millis_f64()
        ),
        None if smoke => fail("critical path did not attribute an election hop"),
        None => println!("no election hop on the critical path"),
    }

    if let Some(path) = dot_path {
        if let Err(e) = std::fs::write(path, g.to_dot()) {
            fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("dot: {} nodes -> {path}", g.len());
    }

    if smoke {
        let again = run_quorum_scenario(horizon);
        if g.to_dot() != again.causal_graph().to_dot() {
            fail("quorum DOT export is not byte-stable across two runs");
        }
        if w.recoveries_done().is_empty() {
            fail("quorum smoke run completed no recoveries");
        }
        eprintln!(
            "explain quorum smoke: all gates green ({} recoveries, election hop attributed)",
            w.recoveries_done().len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: explain [--smoke] [--key NODE.LOCAL#SEQ] [--dot PATH] [--flow PATH] \
                 [--diff] [--quorum]";
    let mut smoke = false;
    let mut diff = false;
    let mut quorum = false;
    let mut key: Option<MsgKey> = None;
    let mut dot_path: Option<String> = None;
    let mut flow_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--diff" => diff = true,
            "--quorum" => quorum = true,
            "--key" | "--dot" | "--flow" => {
                let flag = args[i].clone();
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("{flag} needs a value; {usage}");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--key" => match v.parse::<MsgKey>() {
                        Ok(k) => key = Some(k),
                        Err(e) => {
                            eprintln!("bad --key {v:?}: {e}");
                            std::process::exit(2);
                        }
                    },
                    "--dot" => dot_path = Some(v.clone()),
                    _ => flow_path = Some(v.clone()),
                }
            }
            bad => {
                eprintln!("unknown argument {bad:?}; {usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if quorum {
        run_quorum_mode(smoke, dot_path.as_deref());
        return;
    }

    let (pings, pairs, horizon) = if smoke {
        (10u64, 2u32, SimTime::from_secs(20))
    } else {
        (25u64, 4u32, SimTime::from_secs(40))
    };

    let w = run_scenario(pings, pairs, horizon, true);
    let g = w.causal_graph();
    if let Err(e) = g.validate() {
        fail(&format!("causal graph failed validation: {e}"));
    }
    println!(
        "causal graph: {} events, {} edges over {} logs",
        g.len(),
        g.edges().len(),
        w.span_logs().len()
    );

    // 1. Explain: the requested (or most interesting) message's chain.
    let key = key.or_else(|| default_key(&g));
    let explanation = key.and_then(|k| g.explain(k));
    match (&key, &explanation) {
        (Some(k), Some(ex)) => {
            println!("\n{}", ex.render());
            if smoke && ex.chain.is_empty() {
                fail(&format!("explain {k} produced an empty causal chain"));
            }
        }
        (Some(k), None) => {
            if smoke {
                fail(&format!("no events recorded for key {k}"));
            }
            println!("\nno events recorded for key {k}");
        }
        (None, _) => fail("run recorded no span events at all"),
    }

    // 2. Critical path: crash → convergence, attributed per stage.
    let window = w.recovery_window();
    let cp = window.and_then(|(crash, conv)| g.critical_path(crash, conv, None));
    match (&window, &cp) {
        (Some((crash, conv)), Some(cp)) => {
            println!("\n{}", cp.render());
            let measured = conv.saturating_since(*crash);
            if cp.total() != measured {
                fail(&format!(
                    "critical-path attribution {:.3}ms does not sum to measured recovery lag {:.3}ms",
                    cp.total().as_millis_f64(),
                    measured.as_millis_f64()
                ));
            }
            println!(
                "attribution check: {} segments sum to {:.3}ms == measured crash→convergence window",
                cp.segments.len(),
                measured.as_millis_f64()
            );
        }
        _ if smoke => fail("smoke run produced no recovery window / critical path"),
        _ => println!("\nno completed recovery; no critical path to attribute"),
    }

    // 3. Divergence diff against the fault-free baseline.
    if diff || smoke {
        let baseline = run_scenario(pings, pairs, horizon, false);
        let bg = baseline.causal_graph();
        match publishing_obs::divergence_diff(&bg, &g) {
            Some(d) => {
                println!("\nfirst divergence vs fault-free baseline:\n{}", d.render());
            }
            None => {
                // A crashed run must diverge from its fault-free twin.
                if smoke {
                    fail("crashed run's span stream is identical to the fault-free baseline");
                }
                println!("\nno divergence vs fault-free baseline");
            }
        }
    }

    if let Some(path) = &dot_path {
        if let Err(e) = std::fs::write(path, g.to_dot()) {
            fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("dot: {} nodes -> {path}", g.len());
    }
    if let Some(path) = &flow_path {
        let t = flow_trace(&w);
        if let Err(e) = std::fs::write(path, t.to_json()) {
            fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!(
            "flow trace: {} events ({} flow endpoints) -> {path}",
            t.events.len(),
            t.count_phase('s') + t.count_phase('f')
        );
    }

    // Smoke gate: DOT and Chrome-trace flow exports must be
    // byte-identical across two fresh runs of the same seed.
    if smoke {
        let again = run_scenario(pings, pairs, horizon, true);
        let g2 = again.causal_graph();
        if g.to_dot() != g2.to_dot() {
            fail("DOT export is not byte-stable across two runs");
        }
        if flow_trace(&w).to_json() != flow_trace(&again).to_json() {
            fail("Chrome-trace flow export is not byte-stable across two runs");
        }
        // Per-process attribution must telescope too.
        for lag in w.recovery_lags() {
            if lag.recovery_ms > 0.0 && (lag.critical_path_ms - lag.recovery_ms).abs() > 1e-6 {
                fail(&format!(
                    "pid {}: critical_path_ms {} != recovery_ms {}",
                    lag.subject, lag.critical_path_ms, lag.recovery_ms
                ));
            }
        }
        let recovered = w.recoveries_done().len();
        if recovered == 0 {
            fail("smoke run completed no recoveries");
        }
        eprintln!("explain smoke: all gates green ({recovered} recoveries attributed)");
    }
}
