//! The complete published-communications world: processing nodes, a
//! recording node, and a broadcast medium, driven by one deterministic
//! event loop — Figure 3.2 in executable form.

use crate::node::{RNAction, RecorderConfig, RecorderNode};
use publishing_demos::costs::CostModel;
use publishing_demos::harness::OutputLine;
use publishing_demos::ids::{NodeId, ProcessId};
use publishing_demos::kernel::{Kernel, KernelAction};
use publishing_demos::link::Link;
use publishing_demos::registry::{ProgramRegistry, UnknownProgram};
use publishing_demos::transport::TransportConfig;
use publishing_net::bus::PerfectBus;
use publishing_net::frame::{Frame, StationId};
use publishing_net::lan::{Lan, LanAction, LanConfig};
use publishing_sim::event::Scheduler;
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// World events.
#[derive(Debug)]
enum WEv {
    LanTimer(u64),
    KernelTimer(u32, u64),
    RecorderTimer(u64),
    Deliver {
        to: u32,
        frame: Frame,
        recorder_ok: bool,
    },
}

/// Builds a [`World`].
pub struct WorldBuilder {
    nodes: u32,
    lan: Option<Box<dyn Lan>>,
    lan_cfg: LanConfig,
    costs: CostModel,
    transport: TransportConfig,
    registry: ProgramRegistry,
    recorder_cfg: RecorderConfig,
    publishing: bool,
}

impl WorldBuilder {
    /// Starts a builder for `nodes` processing nodes (node ids 0..n-1;
    /// the recorder gets node id n).
    pub fn new(nodes: u32) -> Self {
        WorldBuilder {
            nodes,
            lan: None,
            lan_cfg: LanConfig::default(),
            costs: CostModel::zero(),
            transport: TransportConfig::default(),
            registry: ProgramRegistry::new(),
            recorder_cfg: RecorderConfig::default(),
            publishing: true,
        }
    }

    /// Uses a specific medium instead of the default [`PerfectBus`].
    /// Stations 0..=n (nodes + recorder) must not yet be attached.
    pub fn medium(mut self, lan: Box<dyn Lan>) -> Self {
        self.lan = Some(lan);
        self
    }

    /// Sets the LAN configuration for the default medium.
    pub fn lan_config(mut self, cfg: LanConfig) -> Self {
        self.lan_cfg = cfg;
        self
    }

    /// Sets the node CPU cost model (defaults to zero for protocol tests).
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets transport parameters for all nodes.
    pub fn transport(mut self, t: TransportConfig) -> Self {
        self.transport = t;
        self
    }

    /// Sets the program registry shared by all nodes.
    pub fn registry(mut self, r: ProgramRegistry) -> Self {
        self.registry = r;
        self
    }

    /// Sets the recorder configuration.
    pub fn recorder(mut self, cfg: RecorderConfig) -> Self {
        self.recorder_cfg = cfg;
        self
    }

    /// Disables publishing (baseline mode: no recorder gating, intranode
    /// messages stay local, no notices).
    pub fn without_publishing(mut self) -> Self {
        self.publishing = false;
        self
    }

    /// Builds the world and starts the recorder's watchdogs.
    pub fn build(self) -> World {
        let recorder_node = NodeId(self.nodes);
        let mut lan = self
            .lan
            .unwrap_or_else(|| Box::new(PerfectBus::new(self.lan_cfg.clone())));
        let mut kernels = BTreeMap::new();
        for n in 0..self.nodes {
            let mut k = Kernel::new(
                NodeId(n),
                self.registry.clone(),
                self.costs.clone(),
                self.transport.clone(),
                self.publishing,
            );
            k.set_recorder(recorder_node);
            lan.attach(k.station());
            kernels.insert(n, k);
        }
        let recorder = RecorderNode::new(recorder_node, self.recorder_cfg);
        lan.attach(recorder.station());
        if self.publishing {
            lan.set_required_recorders(vec![recorder.station()]);
        }
        let mut world = World {
            sched: Scheduler::new(),
            lan,
            kernels,
            recorder,
            outputs: Vec::new(),
            publishing: self.publishing,
            crashes: Vec::new(),
            recovered: BTreeMap::new(),
        };
        let nodes: Vec<NodeId> = (0..self.nodes).map(NodeId).collect();
        let actions = world.recorder.start(SimTime::ZERO, &nodes);
        world.apply_recorder(SimTime::ZERO, actions);
        world
    }
}

/// The running world.
pub struct World {
    sched: Scheduler<WEv>,
    /// The shared medium.
    pub lan: Box<dyn Lan>,
    /// Processing-node kernels by node id.
    pub kernels: BTreeMap<u32, Kernel>,
    /// The recording node.
    pub recorder: RecorderNode,
    /// All process outputs, in emission order (including replayed
    /// duplicates; use [`World::outputs_of`] for the deduplicated view).
    pub outputs: Vec<OutputLine>,
    publishing: bool,
    /// Virtual instants of injected crashes, in injection order.
    crashes: Vec<SimTime>,
    /// Packed pid → virtual instant its recovery committed.
    recovered: BTreeMap<u64, SimTime>,
}

impl World {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Spawns a program on a node with initial links.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] if the image is not registered.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        let now = self.now();
        let k = self.kernels.get_mut(&node).expect("node exists");
        let (pid, actions) = k.spawn(now, program, links)?;
        self.apply_kernel(now, node, actions);
        Ok(pid)
    }

    /// Spawns a program marked unrecoverable (§6.6.1): the recorder
    /// publishes nothing for it and a crash is final.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] if the image is not registered.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn_unrecoverable(
        &mut self,
        node: u32,
        program: &str,
        links: Vec<Link>,
    ) -> Result<ProcessId, UnknownProgram> {
        let now = self.now();
        let k = self.kernels.get_mut(&node).expect("node exists");
        let (pid, actions) = k.spawn_unrecoverable(now, program, links)?;
        self.apply_kernel(now, node, actions);
        Ok(pid)
    }

    fn apply_kernel(&mut self, now: SimTime, node: u32, actions: Vec<KernelAction>) {
        for a in actions {
            match a {
                KernelAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                KernelAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, WEv::KernelTimer(node, token));
                }
                KernelAction::Output { pid, seq, bytes } => {
                    self.outputs.push(OutputLine {
                        at: now,
                        pid,
                        seq,
                        bytes,
                    });
                }
            }
        }
    }

    fn apply_recorder(&mut self, now: SimTime, actions: Vec<RNAction>) {
        for a in actions {
            match a {
                RNAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                RNAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, WEv::RecorderTimer(token));
                }
                RNAction::RestartNode { node, incarnation } => {
                    // The §4.6 operator action: reboot the processor (or a
                    // spare assuming its identity), then let the manager
                    // proceed.
                    if let Some(k) = self.kernels.get_mut(&node.0) {
                        k.restart_node(now, incarnation);
                        self.lan.set_station_up(StationId(node.0), true);
                    }
                    let follow = self.recorder.confirm_node_restarted(now, node, incarnation);
                    self.apply_recorder(now, follow);
                }
                RNAction::RecoveryDone { pid } => {
                    self.recovered.insert(pid.as_u64(), now);
                }
            }
        }
    }

    fn apply_lan(&mut self, actions: Vec<LanAction>) {
        for a in actions {
            match a {
                LanAction::Deliver {
                    at,
                    to,
                    frame,
                    recorder_ok,
                } => {
                    self.sched.schedule_at(
                        at,
                        WEv::Deliver {
                            to: to.0,
                            frame,
                            recorder_ok,
                        },
                    );
                }
                LanAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, WEv::LanTimer(token));
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.pop() else {
            return false;
        };
        self.dispatch(now, ev);
        true
    }

    fn dispatch(&mut self, now: SimTime, ev: WEv) {
        match ev {
            WEv::LanTimer(token) => {
                let actions = self.lan.timer(now, token);
                self.apply_lan(actions);
            }
            WEv::KernelTimer(node, token) => {
                if let Some(k) = self.kernels.get_mut(&node) {
                    let actions = k.on_timer(now, token);
                    self.apply_kernel(now, node, actions);
                }
            }
            WEv::RecorderTimer(token) => {
                let actions = self.recorder.on_timer(now, token);
                self.apply_recorder(now, actions);
            }
            WEv::Deliver {
                to,
                frame,
                recorder_ok,
            } => {
                if to == self.recorder.node().0 {
                    let actions = self.recorder.on_frame(now, &frame, recorder_ok);
                    self.apply_recorder(now, actions);
                } else if let Some(k) = self.kernels.get_mut(&to) {
                    let actions = k.on_frame(now, &frame, recorder_ok);
                    self.apply_kernel(now, to, actions);
                }
            }
        }
    }

    /// Installs a fault clock: [`World::run_until_or_fault`] will pause
    /// at each of its instants so a chaos driver can inject faults.
    pub fn set_fault_clock(&mut self, clock: publishing_sim::event::FaultClock) {
        self.sched.set_fault_clock(clock);
    }

    /// Runs until `deadline` or the next fault-clock instant, whichever
    /// comes first. Returns `Some(t)` when paused at a fault instant
    /// (the world's clock is at `t`; inject, then call again), `None`
    /// once `deadline` is reached with no fault due before it.
    pub fn run_until_or_fault(&mut self, deadline: SimTime) -> Option<SimTime> {
        use publishing_sim::event::Tick;
        loop {
            let fault_due = self.sched.next_fault().map(|f| f <= deadline);
            let event_due = self.sched.peek_time().map(|t| t <= deadline);
            if fault_due != Some(true) && event_due != Some(true) {
                if self.sched.now() < deadline {
                    self.sched.advance_to(deadline);
                }
                return None;
            }
            match self.sched.pop_or_fault() {
                Some(Tick::Fault(t)) => return Some(t),
                Some(Tick::Event(now, ev)) => self.dispatch(now, ev),
                None => return None,
            }
        }
    }

    /// Runs until `deadline` (watchdogs tick forever, so there is no
    /// quiescence in a published world).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.sched.now() < deadline
            && self
                .sched
                .peek_time()
                .map(|t| t >= deadline)
                .unwrap_or(true)
        {
            self.sched.advance_to(deadline);
        }
    }

    /// Crashes one process now (a detected fault, §3.3.2). The kernel
    /// notifies the recovery manager, which recovers it transparently.
    pub fn crash_process(&mut self, pid: ProcessId, reason: &str) {
        let now = self.now();
        if let Some(k) = self.kernels.get_mut(&pid.node.0) {
            self.crashes.push(now);
            let actions = k.crash_process(now, pid.local, reason);
            self.apply_kernel(now, pid.node.0, actions);
        }
    }

    /// Crashes a whole node now; the watchdog will notice and the manager
    /// will restart and re-populate it.
    pub fn crash_node(&mut self, node: u32) {
        if let Some(k) = self.kernels.get_mut(&node) {
            self.crashes.push(self.sched.now());
            k.crash_node();
            self.lan.set_station_up(StationId(node), false);
        }
    }

    /// Crashes the recorder now. All publishable traffic suspends
    /// (§3.3.4) until [`World::restart_recorder`].
    pub fn crash_recorder(&mut self) {
        self.crashes.push(self.now());
        self.recorder.crash();
        self.lan.set_station_up(self.recorder.station(), false);
        // The station stays in the required set: traffic is suspended,
        // not silently unpublished.
    }

    /// Restarts the recorder: database rebuild plus the §3.3.4 state
    /// queries.
    pub fn restart_recorder(&mut self) {
        let now = self.now();
        self.lan.set_station_up(self.recorder.station(), true);
        let actions = self.recorder.restart(now);
        self.apply_recorder(now, actions);
    }

    /// Whether publishing is enabled.
    pub fn publishing(&self) -> bool {
        self.publishing
    }

    /// The deduplicated output lines of one process: exactly-once by
    /// output sequence number, in sequence order — what a §6.4-style
    /// idempotent console would print.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        let mut by_seq: BTreeMap<u64, &OutputLine> = BTreeMap::new();
        for o in self.outputs.iter().filter(|o| o.pid == pid) {
            by_seq.entry(o.seq).or_insert(o);
        }
        by_seq
            .values()
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// The raw (possibly duplicated) output lines of one process.
    pub fn raw_outputs_of(&self, pid: ProcessId) -> Vec<String> {
        self.outputs
            .iter()
            .filter(|o| o.pid == pid)
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// A fingerprint of every process's deduplicated output, for
    /// equivalence oracles.
    pub fn output_fingerprint(&self) -> u64 {
        let mut per_pid: BTreeMap<ProcessId, BTreeMap<u64, &[u8]>> = BTreeMap::new();
        for o in &self.outputs {
            per_pid
                .entry(o.pid)
                .or_default()
                .entry(o.seq)
                .or_insert(&o.bytes);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (pid, lines) in per_pid {
            for (seq, bytes) in lines {
                for b in pid
                    .as_u64()
                    .to_le_bytes()
                    .iter()
                    .chain(seq.to_le_bytes().iter())
                    .chain(bytes.iter())
                {
                    h ^= *b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }

    /// Every span log in the world, in deterministic order: kernels by
    /// node id, then the recorder.
    pub fn span_logs(&self) -> Vec<&publishing_obs::span::SpanLog> {
        let mut logs: Vec<_> = self.kernels.values().map(|k| k.spans()).collect();
        logs.push(self.recorder.recorder().spans());
        logs
    }

    /// The happens-before DAG over every component's span log.
    pub fn causal_graph(&self) -> publishing_obs::causal::CausalGraph {
        publishing_obs::causal::CausalGraph::build(self.span_logs())
    }

    /// Virtual instants of every injected crash, in injection order.
    pub fn crash_times(&self) -> &[SimTime] {
        &self.crashes
    }

    /// Completed recoveries: packed pid → instant the manager committed.
    pub fn recoveries_done(&self) -> &BTreeMap<u64, SimTime> {
        &self.recovered
    }

    /// The measured crash→convergence window: first injected crash to
    /// the last committed recovery. `None` until a recovery completes.
    pub fn recovery_window(&self) -> Option<(SimTime, SimTime)> {
        let crash = *self.crashes.first()?;
        let converged = *self.recovered.values().max()?;
        (converged >= crash).then_some((crash, converged))
    }

    /// Order-sensitive fingerprint over every span log — the run-level
    /// determinism oracle for the lifecycle trace.
    pub fn obs_fingerprint(&self) -> u64 {
        publishing_obs::span::combined_fingerprint(self.span_logs())
    }

    /// Assembles per-message lifecycle spans from every component's log.
    pub fn spans(
        &self,
    ) -> BTreeMap<publishing_obs::span::MsgKey, publishing_obs::span::MessageSpan> {
        publishing_obs::span::assemble(self.span_logs())
    }

    /// Snapshots every component's instruments into one registry.
    pub fn collect_metrics(&self) -> publishing_obs::registry::MetricsRegistry {
        let now = self.now();
        let mut reg = publishing_obs::registry::MetricsRegistry::new();
        for k in self.kernels.values() {
            crate::obs::kernel_metrics(&mut reg, k);
        }
        crate::obs::recorder_node_metrics(&mut reg, "recorder", &self.recorder, now);
        publishing_obs::probe::MediumHealth::from_lan(self.lan.stats(), now)
            .into_registry(&mut reg);
        reg
    }

    /// Recovery-lag probes for every process the recorder knows about.
    pub fn recovery_lags(&self) -> Vec<publishing_obs::probe::RecoveryLag> {
        let suppressed = crate::obs::suppressed_by_sender(self.kernels.values().map(|k| k.spans()));
        crate::obs::recovery_lags(self.recorder.recorder(), self.now(), &suppressed)
    }

    /// Builds the full observability report for the run so far.
    pub fn obs_report(&self) -> publishing_obs::report::ObsReport {
        let now = self.now();
        let horizon = now.saturating_since(SimTime::ZERO);
        let mut profile = publishing_obs::profile::TimeProfile::new();
        let mut kernel_cpu = publishing_sim::time::SimDuration::ZERO;
        for k in self.kernels.values() {
            kernel_cpu += k.stats().cpu_used;
        }
        profile.charge("kernel_cpu", kernel_cpu);
        profile.charge("publish_cpu", self.recorder.recorder().stats().cpu_used);
        let store = self.recorder.recorder().store();
        let mut disk_busy = publishing_sim::time::SimDuration::ZERO;
        for i in 0..store.n_disks() {
            disk_busy += store.disk_stats(i).busy.busy_time(now);
        }
        profile.charge("stable_store_io", disk_busy);
        profile.charge("medium_busy", self.lan.stats().busy.busy_time(now));

        let mut metrics = self.collect_metrics();
        let mut recovery = self.recovery_lags();
        let graph = (!self.recovered.is_empty()).then(|| self.causal_graph());
        if let Some(g) = &graph {
            for lag in &mut recovery {
                let Some(&done) = self.recovered.get(&lag.subject) else {
                    continue;
                };
                let Some(&crash) = self.crashes.iter().filter(|&&c| c <= done).max() else {
                    continue;
                };
                lag.recovery_ms = done.saturating_since(crash).as_millis_f64();
                lag.critical_path_ms = g
                    .critical_path(crash, done, Some(lag.subject))
                    .map(|p| p.total().as_millis_f64())
                    .unwrap_or(lag.recovery_ms);
            }
        }
        let critical_path = self
            .recovery_window()
            .and_then(|(crash, converged)| graph.as_ref()?.critical_path(crash, converged, None));
        if let Some(cp) = &critical_path {
            cp.into_registry(&mut metrics);
        }

        let spans = self.spans();
        let logs = self.span_logs();
        publishing_obs::report::ObsReport {
            schema: publishing_obs::report::REPORT_SCHEMA_VERSION,
            at_ms: now.as_millis_f64(),
            metrics,
            recovery,
            shards: Vec::new(),
            medium: Some(publishing_obs::probe::MediumHealth::from_lan(
                self.lan.stats(),
                now,
            )),
            profile,
            horizon,
            latencies: publishing_obs::profile::stage_latencies(&spans),
            sched: self.scheduler_probe(),
            queue_depths: Some(self.recorder.recorder().stats().depth_hist.clone()),
            spans_total: logs.iter().map(|l| l.total()).sum(),
            span_fingerprint: self.obs_fingerprint(),
            critical_path,
            quorum: Vec::new(),
            consensus: None,
            watchdog: None,
            workload: None,
            utilization: Some(crate::obs::utilization_report(
                self.kernels.values(),
                [(0, self.recorder.recorder())],
                self.lan.as_ref(),
                now,
            )),
            whatif: None,
            forensics: None,
        }
    }

    /// Event-queue statistics of the world's scheduler.
    pub fn scheduler_probe(&self) -> publishing_obs::probe::SchedulerProbe {
        publishing_obs::probe::SchedulerProbe {
            delivered: self.sched.delivered(),
            scheduled: self.sched.scheduled(),
            pending: self.sched.pending() as u64,
            peak_pending: self.sched.peak_pending() as u64,
        }
    }
}
