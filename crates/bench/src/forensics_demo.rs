//! The seeded A/B pair behind the `forensics` binary and the
//! regression-forensics acceptance test.
//!
//! One side of the pair is two deterministic runs at a fixed seed: a
//! fault-free workload trial (latencies, profile, ledger) and a
//! crash→recovery run (critical path), both projected into one
//! [`Snapshot`]. The baseline side runs on the paper's nonzero VAX cost
//! model — `Tuning::default()` uses `CostModel::zero()`, and doubling
//! zero is a no-op, so the demo pins [`CostModel::default`] explicitly.
//! The injected side applies a what-if knob with an overridden
//! multiplier (e.g. `proto_cpu` ×2.0 = "someone doubled protocol CPU"),
//! so the forensics engine can be exercised against a regression whose
//! true cause is known.
//!
//! [`annotate_remediation`] closes the loop: every ranked suspect that
//! maps onto a what-if knob gets that knob's name in its detail, so a
//! diagnosis reads "protocol CPU grew — the `proto_cpu` knob turns it".

use publishing_chaos::driver::run_schedule;
use publishing_chaos::{Fault, FaultSchedule, Medium, Scenario, Topology, Tuning};
use publishing_demos::CostModel;
use publishing_obs::forensics::{ForensicsReport, SuspectKind};
use publishing_obs::report::ObsReport;
use publishing_obs::slo::SloSpec;
use publishing_perf::snapshot::{scenario_from_report, Snapshot};
use publishing_sim::ledger::ResourceKind;
use publishing_workload::{knob_for_kind, run_trial_tuned, standard_knobs, WorkloadSpec};

/// Seed for both runs of a side.
pub const AB_SEED: u64 = 42;

/// The baseline physics: the paper's VAX cost model (nonzero, so cost
/// knobs have something to scale), default medium and transport.
pub fn baseline_tuning() -> Tuning {
    Tuning {
        costs: CostModel::default(),
        ..Tuning::default()
    }
}

/// The baseline with one what-if knob applied at an overridden
/// multiplier (`proto_cpu:2.0` doubles protocol CPU instead of the
/// matrix's default halving).
///
/// # Panics
///
/// Panics when `knob` is not one of [`standard_knobs`].
pub fn injected_tuning(knob: &str, multiplier: f64) -> Tuning {
    let mut k = standard_knobs()
        .into_iter()
        .find(|k| k.name == knob)
        .unwrap_or_else(|| panic!("unknown what-if knob \"{knob}\""));
    k.multiplier = multiplier;
    k.apply(&baseline_tuning())
}

/// One side of the A/B pair: the projected snapshot plus the two raw
/// reports the report-level differ consumes.
pub struct AbRun {
    /// Both runs projected as `ab_trial` / `ab_crash` scenarios.
    pub snapshot: Snapshot,
    /// The fault-free workload trial's report (latencies, ledger).
    pub trial_report: ObsReport,
    /// The crash→recovery run's report (critical path).
    pub crash_report: ObsReport,
}

/// The workload operating point both sides run.
pub fn ab_spec() -> WorkloadSpec {
    WorkloadSpec {
        users: 4,
        subjects: 2,
        rate_per_sec: 40,
        horizon_ms: 400,
        ..WorkloadSpec::default()
    }
}

/// Runs one side of the pair under `tuning`. Deterministic: the same
/// tuning yields a byte-identical `snapshot.virtual_json()`.
pub fn run_side(tuning: &Tuning) -> AbRun {
    let trial = run_trial_tuned(
        Topology::Single,
        &ab_spec(),
        &SloSpec::default(),
        Medium::Perfect,
        None,
        tuning,
    );
    let trial_report = *trial.report;

    let mut world = Scenario::new(Topology::Single, AB_SEED)
        .tuned(tuning.clone())
        .build();
    let schedule = FaultSchedule {
        workload_seed: AB_SEED,
        horizon_ms: 1500,
        faults: vec![Fault::CrashNode {
            at_ms: 200,
            node: 2,
        }],
    };
    run_schedule(world.as_mut(), &schedule);
    let crash_report = world.obs_report();

    let mut snapshot = Snapshot::new("smoke");
    snapshot
        .scenarios
        .push(scenario_from_report("ab_trial", &trial_report));
    let mut crash = scenario_from_report("ab_crash", &crash_report);
    crash.fingerprint("output", world.output_fingerprint());
    snapshot.scenarios.push(crash);
    AbRun {
        snapshot,
        trial_report,
        crash_report,
    }
}

/// The resource kind behind a forensics suspect name, when the name is
/// one of the snapshot attribution families (`util_<kind>_busy_ms` for
/// ledger rows, `profile_<category>_ms` for cost-model CPU categories).
fn kind_for_suspect(name: &str) -> Option<ResourceKind> {
    if let Some(label) = name
        .strip_prefix("util_")
        .and_then(|rest| rest.strip_suffix("_busy_ms"))
    {
        return [
            ResourceKind::Medium,
            ResourceKind::Disk,
            ResourceKind::RecorderCpu,
            ResourceKind::NodeCpuProto,
            ResourceKind::NodeCpuProg,
            ResourceKind::Transport,
            ResourceKind::Consensus,
        ]
        .into_iter()
        .find(|k| k.label() == label);
    }
    // Profile categories charged straight from the cost model map onto
    // the same physics the ledger meters.
    match name {
        "profile_kernel_cpu_ms" => Some(ResourceKind::NodeCpuProto),
        "profile_publish_cpu_ms" => Some(ResourceKind::NodeCpuProg),
        "profile_stable_store_io_ms" => Some(ResourceKind::Disk),
        "profile_medium_busy_ms" => Some(ResourceKind::Medium),
        _ => None,
    }
}

/// Stamps every stage/resource suspect that maps onto a standard
/// what-if knob with `what-if knob: <name>` — the remediation hint that
/// connects a diagnosis back to a turnable physical constant.
pub fn annotate_remediation(report: &mut ForensicsReport) {
    for finding in &mut report.findings {
        for suspect in &mut finding.suspects {
            if !matches!(suspect.kind, SuspectKind::Stage | SuspectKind::Resource) {
                continue;
            }
            let Some(knob) = kind_for_suspect(&suspect.name).and_then(knob_for_kind) else {
                continue;
            };
            if suspect.detail.is_empty() {
                suspect.detail = format!("what-if knob: {knob}");
            } else {
                suspect.detail.push_str(&format!(" — what-if knob: {knob}"));
            }
        }
    }
}
