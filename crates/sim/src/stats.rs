//! Measurement instruments for the evaluation: counters, histograms, and
//! the time-weighted utilization integrator behind Figure 5.5.

use crate::ledger::Timeline;
use crate::time::{SimDuration, SimTime};

/// A monotone event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one. Saturates at `u64::MAX` instead of wrapping, so a pegged
    /// counter reads as "full", never as a small number again.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An online summary of a stream of samples: count, mean, min, max, and
/// variance via Welford's algorithm.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. The count saturates at `u64::MAX`.
    pub fn record(&mut self, x: f64) {
        self.n = self.n.saturating_add(1);
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a [`SimDuration`] sample in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Returns the sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the population variance, or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Returns the population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Returns the smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Returns the largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Returns the sum of all samples.
    pub fn total(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Folds another summary into this one (Chan et al.'s parallel
    /// Welford combination), so per-shard summaries aggregate into a
    /// tier-wide one without re-streaming the samples.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        // Compute in f64 so pegged counts cannot overflow the sum.
        let n = self.n as f64 + other.n as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.n = self.n.saturating_add(other.n);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A base-2 logarithmic histogram for latency-like quantities.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 also catches 0).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    summary: Summary,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            summary: Summary::new(),
        }
    }

    /// Records one non-negative integer sample. Bucket counts saturate
    /// at `u64::MAX` instead of wrapping, matching [`Counter`].
    pub fn record(&mut self, x: u64) {
        let idx = if x == 0 {
            0
        } else {
            63 - x.leading_zeros() as usize
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.summary.record(x as f64);
    }

    /// Returns the count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Returns the overall summary statistics.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Folds another histogram into this one bucket-by-bucket (the
    /// summaries combine via [`Summary::merge`]), so per-replica
    /// latency histograms aggregate into a group-wide one. Bucket
    /// counts saturate at `u64::MAX` instead of wrapping, so merging
    /// pegged histograms reads as "full" rather than a small number.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.summary.merge(&other.summary);
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) from bucket boundaries.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// quantile — coarse but monotone, enough for reporting tail shapes.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.summary.count();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// An equal-width histogram over a fixed range `[lo, hi)`.
///
/// Samples below `lo` land in the first bucket and samples at or above
/// `hi` land in the last, so the bucket counts always sum to the sample
/// count. This is the shared instrument behind distribution tables that
/// previously hand-rolled their own binning (e.g. the checkpoint
/// state-size distribution in the queueing crate).
#[derive(Debug, Clone)]
pub struct LinearHistogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    summary: Summary,
}

impl LinearHistogram {
    /// Creates an empty histogram with `buckets` equal-width bins covering
    /// `[lo, hi)`. Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "LinearHistogram needs at least one bucket");
        assert!(hi > lo, "LinearHistogram range must be non-empty");
        LinearHistogram {
            lo,
            width: (hi - lo) / buckets as f64,
            counts: vec![0; buckets],
            summary: Summary::new(),
        }
    }

    /// Records one sample, clamping out-of-range values into the end bins.
    /// Bucket counts saturate at `u64::MAX` instead of wrapping.
    pub fn record(&mut self, x: f64) {
        let idx = ((x - self.lo) / self.width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.summary.record(x);
    }

    /// Returns the per-bucket counts, lowest bin first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Returns each bucket's share of the total sample count (all zeros if
    /// the histogram is empty).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.summary.count();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Returns the overall summary statistics.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Returns the inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) from the bucket boundaries.
    ///
    /// The estimate is the upper edge of the bucket containing the
    /// quantile, clamped to the largest observed sample so a spike in the
    /// clamped top bin cannot report beyond the data. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.summary.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let edge = self.bucket_lo(i) + self.width;
                return edge.min(self.summary.max().unwrap_or(edge));
            }
        }
        self.summary.max().unwrap_or(0.0)
    }

    /// Returns `true` if `other` was built with the same range and
    /// bucket count, i.e. the two histograms can be merged exactly.
    pub fn same_binning(&self, other: &LinearHistogram) -> bool {
        self.lo == other.lo && self.width == other.width && self.counts.len() == other.counts.len()
    }

    /// Folds another histogram with identical binning into this one.
    /// Bucket counts saturate at `u64::MAX` instead of wrapping.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different ranges or
    /// bucket counts — merging incompatible bins would silently corrupt
    /// the distribution. Use [`LinearHistogram::try_merge`] when the
    /// layouts may differ.
    pub fn merge(&mut self, other: &LinearHistogram) {
        assert!(
            self.try_merge(other),
            "cannot merge LinearHistograms with different binning"
        );
    }

    /// Folds another histogram into this one if — and only if — the two
    /// share a bucket layout. Returns `false` (leaving `self`
    /// untouched) on mismatched layouts, so aggregation loops over
    /// heterogeneous sources can skip incompatible inputs instead of
    /// panicking.
    #[must_use]
    pub fn try_merge(&mut self, other: &LinearHistogram) -> bool {
        if !self.same_binning(other) {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.summary.merge(&other.summary);
        true
    }
}

/// Integrates the busy time of a serially reusable resource (CPU, disk,
/// network interface) so its utilization over a window can be reported —
/// the quantity plotted in Figure 5.5.
#[derive(Debug, Clone)]
pub struct Utilization {
    busy_since: Option<SimTime>,
    busy_total: SimDuration,
    window_start: SimTime,
    busy_periods: u64,
    timeline: Timeline,
}

impl Default for Utilization {
    fn default() -> Self {
        Self::new()
    }
}

impl Utilization {
    /// Creates an idle tracker with the window starting at t = 0.
    pub fn new() -> Self {
        Utilization {
            busy_since: None,
            busy_total: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            busy_periods: 0,
            timeline: Timeline::new(),
        }
    }

    /// Marks the resource busy starting at `now`. Idempotent while busy.
    pub fn set_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
            self.busy_periods += 1;
        }
    }

    /// Marks the resource idle at `now`, accumulating the elapsed busy span
    /// into both the scalar total and the binned [`Timeline`].
    pub fn set_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_total += now.saturating_since(since);
            self.timeline.add_busy(since, now);
        }
    }

    /// Credits a busy span whose duration is known at submission time
    /// (a frame's serialization on an uncontended wire, a disk write of
    /// known length) without driving the busy/idle state machine —
    /// usable by resources that never observe an idle edge. Overlap
    /// with the live busy state is the caller's problem; chain spans
    /// with a free-at cursor when serial accounting is wanted.
    pub fn add_span(&mut self, from: SimTime, to: SimTime) {
        let d = to.saturating_since(from);
        if d == SimDuration::ZERO {
            return;
        }
        self.busy_total += d;
        self.busy_periods += 1;
        self.timeline.add_busy(from, to);
    }

    /// Returns `true` while the resource is marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Returns the total accumulated busy time as of `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.busy_total + now.saturating_since(since),
            None => self.busy_total,
        }
    }

    /// Returns the number of distinct busy periods so far.
    pub fn busy_periods(&self) -> u64 {
        self.busy_periods
    }

    /// Returns busy time divided by elapsed window time, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start);
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time(now) / window
    }

    /// Returns the busy timeline as of the last `set_idle` call (an open
    /// busy interval is not yet binned; see
    /// [`Utilization::timeline_as_of`]).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Returns the busy timeline including any still-open busy interval
    /// up to `now` — the form to use when assembling an end-of-run
    /// report while the resource may be mid-span.
    pub fn timeline_as_of(&self, now: SimTime) -> Timeline {
        let mut t = self.timeline.clone();
        if let Some(since) = self.busy_since {
            t.add_busy(since, now);
        }
        t
    }

    /// Resets the measurement window to start at `now` (busy state is
    /// preserved; accumulated busy time and the timeline are cleared).
    pub fn reset_window(&mut self, now: SimTime) {
        self.busy_total = SimDuration::ZERO;
        self.window_start = now;
        self.timeline = Timeline::new();
        if self.busy_since.is_some() {
            self.busy_since = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.total() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 2); // 2 and 3
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.summary().count(), 5);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = LogHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(1.0));
    }

    #[test]
    fn utilization_half_busy() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::from_millis(0));
        u.set_idle(SimTime::from_millis(5));
        assert!((u.utilization(SimTime::from_millis(10)) - 0.5).abs() < 1e-12);
        assert_eq!(u.busy_periods(), 1);
    }

    #[test]
    fn utilization_counts_open_busy_interval() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::from_millis(2));
        // Still busy at t = 4: busy time is 2 of 4 ms.
        assert!((u.utilization(SimTime::from_millis(4)) - 0.5).abs() < 1e-12);
        assert!(u.is_busy());
    }

    #[test]
    fn utilization_busy_idempotent() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::from_millis(0));
        u.set_busy(SimTime::from_millis(3));
        u.set_idle(SimTime::from_millis(4));
        assert_eq!(
            u.busy_time(SimTime::from_millis(4)),
            SimDuration::from_millis(4)
        );
        assert_eq!(u.busy_periods(), 1);
    }

    #[test]
    fn window_reset_clears_history() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::ZERO);
        u.set_idle(SimTime::from_millis(10));
        u.reset_window(SimTime::from_millis(10));
        assert_eq!(u.utilization(SimTime::from_millis(20)), 0.0);
    }

    #[test]
    fn zero_window_reports_zero() {
        let u = Utilization::new();
        assert_eq!(u.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.add(12345);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.summary().count(), 0);
        assert_eq!(h.summary().mean(), 0.0);
    }

    #[test]
    fn zero_duration_window_after_reset_reports_zero() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::ZERO);
        u.set_idle(SimTime::from_millis(7));
        u.reset_window(SimTime::from_millis(7));
        // The window has zero width: utilization must be 0, not NaN or inf.
        let util = u.utilization(SimTime::from_millis(7));
        assert_eq!(util, 0.0);
        assert!(util.is_finite());
    }

    #[test]
    fn zero_duration_window_while_busy_reports_zero() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::ZERO);
        assert_eq!(u.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn linear_histogram_bins_and_clamps() {
        let mut h = LinearHistogram::new(0.0, 10.0, 5);
        h.record(-3.0); // clamps into bucket 0
        h.record(1.0); // bucket 0
        h.record(5.0); // bucket 2
        h.record(9.99); // bucket 4
        h.record(42.0); // clamps into bucket 4
        assert_eq!(h.counts(), &[2, 0, 1, 0, 2]);
        assert_eq!(h.summary().count(), 5);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.bucket_lo(2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_linear_histogram_fractions_are_zero() {
        let h = LinearHistogram::new(0.0, 1.0, 3);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn summary_merge_matches_single_stream() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut whole = Summary::new();
        for x in samples {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for x in &samples[..3] {
            left.record(*x);
        }
        for x in &samples[3..] {
            right.record(*x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_merge_with_empty_sides() {
        let mut s = Summary::new();
        s.record(3.0);
        let empty = Summary::new();
        s.merge(&empty);
        assert_eq!(s.count(), 1);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 1);
        assert_eq!(e.max(), Some(3.0));
    }

    #[test]
    fn linear_histogram_quantiles_monotone_and_clamped() {
        let mut h = LinearHistogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((40.0..=60.0).contains(&p50), "{p50}");
        // Clamped to the observed max, not the bin's upper edge.
        assert!(p99 <= 99.0, "{p99}");
        assert_eq!(LinearHistogram::new(0.0, 1.0, 2).quantile(0.5), 0.0);
    }

    #[test]
    fn linear_histogram_merge_matches_single_stream() {
        let mut whole = LinearHistogram::new(0.0, 10.0, 5);
        let mut a = LinearHistogram::new(0.0, 10.0, 5);
        let mut b = LinearHistogram::new(0.0, 10.0, 5);
        for i in 0..20 {
            let x = (i * 7 % 13) as f64;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.counts(), whole.counts());
        assert_eq!(a.summary().count(), whole.summary().count());
        assert!((a.quantile(0.95) - whole.quantile(0.95)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn linear_histogram_merge_rejects_different_bins() {
        let mut a = LinearHistogram::new(0.0, 10.0, 5);
        let b = LinearHistogram::new(0.0, 20.0, 5);
        a.merge(&b);
    }

    #[test]
    fn linear_histogram_try_merge_skips_mismatched_layouts() {
        let mut a = LinearHistogram::new(0.0, 10.0, 5);
        a.record(1.0);
        let mut wrong_range = LinearHistogram::new(0.0, 20.0, 5);
        wrong_range.record(15.0);
        let mut wrong_buckets = LinearHistogram::new(0.0, 10.0, 4);
        wrong_buckets.record(3.0);
        assert!(!a.try_merge(&wrong_range));
        assert!(!a.try_merge(&wrong_buckets));
        // Self untouched by rejected merges.
        assert_eq!(a.summary().count(), 1);
        assert_eq!(a.counts(), &[1, 0, 0, 0, 0]);
        let mut same = LinearHistogram::new(0.0, 10.0, 5);
        same.record(9.0);
        assert!(a.try_merge(&same));
        assert_eq!(a.summary().count(), 2);
    }

    #[test]
    fn empty_histogram_merges_into_empty() {
        let mut log = LogHistogram::new();
        log.merge(&LogHistogram::new());
        assert_eq!(log.summary().count(), 0);
        assert_eq!(log.quantile(0.99), 0);
        let mut lin = LinearHistogram::new(0.0, 1.0, 2);
        assert!(lin.try_merge(&LinearHistogram::new(0.0, 1.0, 2)));
        assert_eq!(lin.summary().count(), 0);
        assert_eq!(lin.quantile(0.5), 0.0);
    }

    #[test]
    fn log_histogram_buckets_saturate() {
        let mut a = LogHistogram::new();
        for _ in 0..3 {
            a.record(1024);
        }
        let mut pegged = LogHistogram::new();
        pegged.record(1024);
        // Simulate a pegged bucket by merging a histogram into itself
        // many times is impractical; instead saturate via merge of two
        // near-full histograms built by direct recording.
        for _ in 0..3 {
            pegged.merge(&a);
        }
        assert_eq!(pegged.bucket(10), 10);
        // Merging must never wrap even at extreme counts.
        let mut x = LogHistogram::new();
        x.record(u64::MAX);
        let mut y = x.clone();
        for _ in 0..70 {
            let snapshot = y.clone();
            y.merge(&snapshot);
        }
        assert!(y.bucket(63) >= x.bucket(63));
    }

    #[test]
    fn utilization_builds_timeline_on_idle() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::from_millis(0));
        u.set_idle(SimTime::from_millis(5));
        assert_eq!(u.timeline().busy_total(), SimDuration::from_millis(5));
        // An open interval is visible via timeline_as_of only.
        u.set_busy(SimTime::from_millis(10));
        assert_eq!(u.timeline().busy_total(), SimDuration::from_millis(5));
        let t = u.timeline_as_of(SimTime::from_millis(12));
        assert_eq!(t.busy_total(), SimDuration::from_millis(7));
    }

    #[test]
    fn utilization_reset_clears_timeline() {
        let mut u = Utilization::new();
        u.set_busy(SimTime::ZERO);
        u.set_idle(SimTime::from_millis(3));
        u.reset_window(SimTime::from_millis(3));
        assert!(u.timeline().is_empty());
    }
}
