//! The Chapter 1 motivating workload: a distributed exhaustive key
//! search ("Diffie and Hellman have shown how to break the NBS/DES …
//! using a network of one million computers. A controlling computer
//! partitions the search space…").
//!
//! A controller farms chunks of a key space out to workers on several
//! nodes. With a mean time between failure of minutes, the day-long
//! search would never finish (§1's reliability motivation) — here a
//! worker's node crashes mid-search and publishing recovers it; the key
//! is still found exactly once and no chunk is searched twice from the
//! controller's point of view.
//!
//! Run with: `cargo run --example keysearch`

use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, LinkId};
use publishing::demos::link::Link;
use publishing::demos::program::{Ctx, Program, Received};
use publishing::demos::registry::ProgramRegistry;
use publishing::sim::codec::{CodecError, Decoder, Encoder};
use publishing::sim::time::{SimDuration, SimTime};

/// The "cipher": a toy keyed permutation. The search looks for the key
/// that maps to the known target.
fn crypt(key: u64) -> u64 {
    key.wrapping_mul(6364136223846793005).rotate_left(17) ^ 0xDEAD_BEEF_CAFE_F00D
}

const SECRET_KEY: u64 = 48_611;
const CHUNK: u64 = 1_000;
const SPACE: u64 = 64_000;

/// The controller: assigns chunks to workers, collects reports, announces
/// the key.
struct Controller {
    workers: u32,
    next_chunk: u64,
    found: Option<u64>,
    reports: u64,
    announced_done: bool,
}

impl Controller {
    fn assign(&mut self, ctx: &mut Ctx<'_>, worker: LinkId) {
        if self.found.is_some() || self.next_chunk * CHUNK >= SPACE {
            return;
        }
        let lo = self.next_chunk * CHUNK;
        self.next_chunk += 1;
        let mut e = Encoder::new();
        e.u64(lo).u64(lo + CHUNK);
        let reply = ctx.create_link(Channel::DEFAULT, 0);
        let _ = ctx.send_passing(worker, e.finish(), reply);
    }
}

impl Program for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Initial links 0..workers-1 are the workers: two chunks each to
        // keep the pipeline full.
        for w in 0..self.workers {
            self.assign(ctx, LinkId(w));
            self.assign(ctx, LinkId(w));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        // Worker report: lo, found flag, key.
        let mut d = Decoder::new(&msg.body);
        let (Ok(lo), Ok(found), Ok(key)) = (d.u64(), d.bool(), d.u64()) else {
            return;
        };
        self.reports += 1;
        if found && self.found.is_none() {
            self.found = Some(key);
            ctx.output(format!("FOUND key {key} in chunk starting {lo}").into_bytes());
        }
        if self.found.is_none() {
            if let Some(worker) = msg.link {
                self.assign(ctx, worker);
            }
        }
        if !self.announced_done && (self.reports * CHUNK >= SPACE || self.found.is_some()) {
            self.announced_done = true;
            ctx.output(format!("search over after {} reports", self.reports).into_bytes());
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.workers).u64(self.next_chunk).u64(self.reports);
        e.option(self.found.as_ref(), |e, k| {
            e.u64(*k);
        });
        e.bool(self.announced_done);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.workers = d.u32()?;
        self.next_chunk = d.u64()?;
        self.reports = d.u64()?;
        self.found = d.option(|d| d.u64())?;
        self.announced_done = d.bool()?;
        d.finish()
    }
}

/// A worker: exhaustively searches assigned chunks.
#[derive(Default)]
struct Worker {
    searched: u64,
    /// A link back to the controller for re-assignments; workers pass
    /// their own identity back with each report.
    controller_code: u32,
}

impl Program for Worker {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let mut d = Decoder::new(&msg.body);
        let (Ok(lo), Ok(hi)) = (d.u64(), d.u64()) else {
            return;
        };
        let target = crypt(SECRET_KEY);
        let mut found = false;
        let mut key = 0u64;
        for k in lo..hi {
            if crypt(k) == target {
                found = true;
                key = k;
                break;
            }
        }
        self.searched += hi - lo;
        // Searching a chunk costs real CPU time.
        ctx.compute(SimDuration::from_millis(2));
        let Some(reply) = msg.link else { return };
        // Report and pass a fresh link to ourselves for the next chunk.
        let me = ctx.create_link(Channel::DEFAULT, self.controller_code);
        let mut e = Encoder::new();
        e.u64(lo).bool(found).u64(key);
        let _ = ctx.send_passing(reply, e.finish(), me);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.searched).u32(self.controller_code);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.searched = d.u64()?;
        self.controller_code = d.u32()?;
        d.finish()
    }
}

fn main() {
    const WORKERS: u32 = 3;
    let mut registry = ProgramRegistry::new();
    registry.register("controller", || {
        Box::new(Controller {
            workers: WORKERS,
            next_chunk: 0,
            found: None,
            reports: 0,
            announced_done: false,
        })
    });
    registry.register("worker", || Box::<Worker>::default());

    // Workers on nodes 1..=3, controller on node 0, recorder on node 4.
    let mut world = WorldBuilder::new(WORKERS + 1).registry(registry).build();
    let mut worker_links = Vec::new();
    for w in 0..WORKERS {
        let pid = world.spawn(w + 1, "worker", vec![]).unwrap();
        worker_links.push(Link::to(pid, Channel::DEFAULT, 0));
        println!("worker {} on node {}", pid, w + 1);
    }
    let controller = world.spawn(0, "controller", worker_links).unwrap();
    println!("controller {controller} searching {SPACE} keys in {CHUNK}-key chunks\n");

    // Crash worker node 2 mid-search.
    world.run_until(SimTime::from_millis(60));
    println!(
        "t={}  node 2 crashes (its worker is mid-chunk)…",
        world.now()
    );
    world.crash_node(2);

    world.run_until(SimTime::from_secs(60));
    println!("\ncontroller outputs:");
    let out = world.outputs_of(controller);
    for line in &out {
        println!("  {line}");
    }
    let found: Vec<_> = out.iter().filter(|l| l.starts_with("FOUND")).collect();
    assert_eq!(found.len(), 1, "the key is announced exactly once");
    assert!(found[0].contains(&SECRET_KEY.to_string()));
    println!(
        "\nnode crash detected by watchdog, worker recovered, key found exactly once ({} node \
         restarts)",
        world.recorder.manager().stats().node_crashes.get()
    );
}
