//! A torn-write-safe durable cell for small critical state.
//!
//! Consensus metadata — a replica's current term and vote — must survive
//! crashes *atomically*: a half-written term record that decodes as
//! garbage (or worse, as a stale value presented as fresh) can make a
//! replica vote twice in one term and elect two leaders. The classic
//! defence is a two-slot ping-pong cell: writes alternate between two
//! fixed locations, each record carries a monotonically increasing
//! generation and a checksum, and a reader takes the *valid* record with
//! the highest generation. A crash can tear at most the slot being
//! written; the other slot still holds the previous generation intact,
//! so the cell never goes backwards past one write and never returns
//! garbage.
//!
//! The cell models battery-backed NVRAM with write-through semantics
//! (the same durability class as the recorder's capture buffer): a write
//! is durable when [`DurableCell::write`] returns, except that a host
//! crash *during* the most recent write may leave that slot torn — the
//! [`DurableCell::crash_tear`] hook, driven by the chaos engine's
//! torn-write regime, truncates it to a prefix exactly like
//! [`crate::disk::Disk::crash_tear_inflight`] does for disk pages.

/// Two-slot atomic cell for a small durable value.
#[derive(Debug, Clone, Default)]
pub struct DurableCell {
    slots: [Vec<u8>; 2],
    /// Generation of the last accepted write.
    generation: u64,
    /// Slot index of the most recent write — the only slot a crash can
    /// tear.
    last_written: Option<usize>,
    /// Writes torn by a crash (observability).
    torn: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_record(generation: u64, value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(20 + value.len());
    rec.extend_from_slice(&generation.to_le_bytes());
    rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
    rec.extend_from_slice(value);
    let sum = fnv1a(&rec);
    rec.extend_from_slice(&sum.to_le_bytes());
    rec
}

fn decode_record(rec: &[u8]) -> Option<(u64, Vec<u8>)> {
    if rec.len() < 20 {
        return None;
    }
    let (body, sum_bytes) = rec.split_at(rec.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != sum {
        return None;
    }
    let generation = u64::from_le_bytes(body[..8].try_into().ok()?);
    let len = u32::from_le_bytes(body[8..12].try_into().ok()?) as usize;
    if body.len() != 12 + len {
        return None;
    }
    Some((generation, body[12..].to_vec()))
}

impl DurableCell {
    /// Creates an empty cell (reads as `None` until the first write).
    pub fn new() -> Self {
        DurableCell::default()
    }

    /// Durably replaces the cell's value. Alternates slots so the
    /// previous generation survives a crash mid-write.
    pub fn write(&mut self, value: &[u8]) {
        self.generation += 1;
        // Write over the slot NOT holding the current best record.
        let target = match self.best_slot() {
            Some(i) => 1 - i,
            None => 0,
        };
        self.slots[target] = encode_record(self.generation, value);
        self.last_written = Some(target);
    }

    /// Reads the current value: the valid record with the highest
    /// generation, or `None` for a never-written (or doubly-torn) cell.
    pub fn read(&self) -> Option<Vec<u8>> {
        self.best_slot()
            .and_then(|i| decode_record(&self.slots[i]))
            .map(|(_, v)| v)
    }

    /// Generation of the record [`DurableCell::read`] would return
    /// (0 = empty).
    pub fn read_generation(&self) -> u64 {
        self.best_slot()
            .and_then(|i| decode_record(&self.slots[i]))
            .map(|(g, _)| g)
            .unwrap_or(0)
    }

    /// Writes torn by crashes so far.
    pub fn torn_count(&self) -> u64 {
        self.torn
    }

    fn best_slot(&self) -> Option<usize> {
        let g0 = decode_record(&self.slots[0]).map(|(g, _)| g);
        let g1 = decode_record(&self.slots[1]).map(|(g, _)| g);
        match (g0, g1) {
            (None, None) => None,
            (Some(_), None) => Some(0),
            (None, Some(_)) => Some(1),
            (Some(a), Some(b)) => Some(if a >= b { 0 } else { 1 }),
        }
    }

    /// Crash hook: tears the most recent write to a prefix (power loss
    /// mid-transfer), exactly once per write. The prior generation in the
    /// other slot is untouched, so a subsequent [`DurableCell::read`]
    /// falls back to it instead of failing or returning garbage.
    pub fn crash_tear(&mut self) {
        if let Some(i) = self.last_written.take() {
            let slot = &mut self.slots[i];
            if !slot.is_empty() {
                slot.truncate(slot.len() / 2);
                self.torn += 1;
            }
        }
    }

    /// Marks the in-flight write settled (e.g. the host survived long
    /// enough for the NVRAM controller to complete it); a later crash no
    /// longer tears it.
    pub fn settle(&mut self) {
        self.last_written = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_reads_none() {
        let c = DurableCell::new();
        assert_eq!(c.read(), None);
        assert_eq!(c.read_generation(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut c = DurableCell::new();
        c.write(b"term=3 vote=1");
        assert_eq!(c.read().as_deref(), Some(&b"term=3 vote=1"[..]));
        assert_eq!(c.read_generation(), 1);
        c.write(b"term=4 vote=none");
        assert_eq!(c.read().as_deref(), Some(&b"term=4 vote=none"[..]));
        assert_eq!(c.read_generation(), 2);
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let mut c = DurableCell::new();
        c.write(b"old value");
        c.write(b"new value");
        c.crash_tear();
        assert_eq!(c.read().as_deref(), Some(&b"old value"[..]));
        assert_eq!(c.torn_count(), 1);
        // The cell keeps alternating correctly after the tear.
        c.write(b"after crash");
        assert_eq!(c.read().as_deref(), Some(&b"after crash"[..]));
    }

    #[test]
    fn torn_first_write_reads_none() {
        let mut c = DurableCell::new();
        c.write(b"only");
        c.crash_tear();
        assert_eq!(c.read(), None, "no previous generation to fall back to");
    }

    #[test]
    fn settled_write_survives_a_crash() {
        let mut c = DurableCell::new();
        c.write(b"v1");
        c.write(b"v2");
        c.settle();
        c.crash_tear();
        assert_eq!(c.read().as_deref(), Some(&b"v2"[..]));
        assert_eq!(c.torn_count(), 0);
    }

    #[test]
    fn tear_is_consumed_by_one_crash() {
        let mut c = DurableCell::new();
        c.write(b"a");
        c.write(b"b");
        c.crash_tear();
        c.crash_tear(); // second crash with no new write: no further damage
        assert_eq!(c.read().as_deref(), Some(&b"a"[..]));
        assert_eq!(c.torn_count(), 1);
    }

    #[test]
    fn generations_never_go_backwards_more_than_one_write() {
        let mut c = DurableCell::new();
        for i in 0..20u64 {
            c.write(format!("value {i}").as_bytes());
            if i % 3 == 0 {
                c.crash_tear();
                // After a tear we see i-1's value (or none at i=0).
                let got = c.read();
                if i == 0 {
                    assert_eq!(got, None);
                } else {
                    assert_eq!(got.as_deref(), Some(format!("value {}", i - 1).as_bytes()));
                }
            } else {
                assert_eq!(c.read().as_deref(), Some(format!("value {i}").as_bytes()));
            }
        }
    }
}
