//! The regression-forensics driver: differential run attribution over a
//! seeded A/B pair.
//!
//! Usage: `forensics [--smoke | --inject KNOB:MULT] [--json | --ndjson]`
//!
//! - `--smoke` (the CI gate): runs the baseline side once and diffs it
//!   against *itself* at both granularities — snapshot-level
//!   (comparator + attribution) and report-level (histogram bins,
//!   ledger, critical-path alignment). The self-diff invariant demands
//!   an empty diagnosis; exit `0` iff both levels are empty. The output
//!   is deterministic, so CI runs the gate twice and diffs stdout.
//! - `--inject KNOB:MULT` (default `proto_cpu:2.0`): runs the baseline
//!   and a side with the named what-if knob applied at the given
//!   multiplier, then prints the comparator verdict and the full
//!   two-level diagnosis, suspects annotated with their remediation
//!   knobs. Exits with the comparator's code, so a doubled protocol
//!   CPU fails exactly like the CI bench gate would.
//! - `--json` / `--ndjson` switch the diagnosis to machine-readable
//!   output (one document / one finding per line).
//!
//! The injected side's crash report gets the report-level diagnosis
//! attached ([`publishing_obs::report::ObsReport::forensics`]),
//! exercising the optional
//! `forensics` section of report schema v6.

use publishing_bench::forensics_demo::{
    annotate_remediation, baseline_tuning, injected_tuning, run_side,
};
use publishing_obs::forensics::ForensicsReport;
use publishing_perf::alloc::CountingAlloc;
use publishing_perf::forensics::{diff_reports, diff_snapshots, ForensicsOptions};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

enum Output {
    Text,
    Json,
    Ndjson,
}

fn emit(report: &ForensicsReport, out: &Output) {
    match out {
        Output::Text => print!("{}", report.render()),
        Output::Json => println!("{}", report.to_json()),
        Output::Ndjson => print!("{}", report.to_ndjson()),
    }
}

fn usage() -> ! {
    eprintln!("usage: forensics [--smoke | --inject KNOB:MULT] [--json | --ndjson]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut inject = ("proto_cpu".to_string(), 2.0f64);
    let mut out = Output::Text;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--inject" => {
                i += 1;
                let Some(spec) = args.get(i) else { usage() };
                let Some((knob, mult)) = spec.split_once(':') else {
                    usage()
                };
                let Ok(mult) = mult.parse::<f64>() else {
                    usage()
                };
                inject = (knob.to_string(), mult);
            }
            "--json" => out = Output::Json,
            "--ndjson" => out = Output::Ndjson,
            _ => usage(),
        }
        i += 1;
    }

    let opts = ForensicsOptions::default();
    if smoke {
        // Self-diff gate: one run, diffed against itself at both
        // levels. Any finding is a broken invariant, not a datum.
        let side = run_side(&baseline_tuning());
        let (c, snap_diag) = diff_snapshots("self", &side.snapshot, &side.snapshot, &opts);
        let trial_diag = diff_reports("self", &side.trial_report, &side.trial_report, &opts);
        let crash_diag = diff_reports("self", &side.crash_report, &side.crash_report, &opts);
        println!("forensics --smoke: self-diff across both granularities");
        println!("comparator exit code: {}", c.exit_code());
        emit(&snap_diag, &out);
        emit(&trial_diag, &out);
        emit(&crash_diag, &out);
        let clean = c.exit_code() == 0
            && snap_diag.is_empty()
            && trial_diag.is_empty()
            && crash_diag.is_empty();
        println!("self-diff {}", if clean { "clean" } else { "VIOLATED" });
        std::process::exit(i32::from(!clean));
    }

    let (knob, mult) = &inject;
    let baseline = run_side(&baseline_tuning());
    let injected = run_side(&injected_tuning(knob, *mult));

    let (c, mut snap_diag) =
        diff_snapshots("baseline", &baseline.snapshot, &injected.snapshot, &opts);
    annotate_remediation(&mut snap_diag);
    let mut trial_diag = diff_reports(
        "baseline/trial",
        &baseline.trial_report,
        &injected.trial_report,
        &opts,
    );
    annotate_remediation(&mut trial_diag);
    let mut crash_diag = diff_reports(
        "baseline/crash",
        &baseline.crash_report,
        &injected.crash_report,
        &opts,
    );
    annotate_remediation(&mut crash_diag);

    if matches!(out, Output::Text) {
        println!("injected: {knob} x{mult}");
        print!("{}", c.render());
    }
    emit(&snap_diag, &out);
    emit(&trial_diag, &out);
    emit(&crash_diag, &out);

    // Attach the report-level diagnosis to the injected crash report and
    // render it: the schema-v6 `forensics` section in the run artifact.
    let mut annotated = injected.crash_report;
    annotated.forensics = Some(crash_diag);
    if matches!(out, Output::Text) {
        let rendered = annotated.render_text();
        if let Some(idx) = rendered.find("\nforensics:") {
            print!("{}", &rendered[idx..]);
        }
    }

    std::process::exit(c.exit_code());
}
