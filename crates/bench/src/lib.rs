//! The benchmark harness: runnable reproductions of every table and
//! figure in the paper's evaluation (Chapter 5 measurements, Chapter 6
//! media experiments, and the Chapter 2 baselines).
//!
//! Run `cargo run -p publishing-bench --bin paper_tables` to print every
//! figure; the Criterion benches in `benches/` time the same scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forensics_demo;
pub mod perf_matrix;
pub mod scenarios;

pub use scenarios::*;
