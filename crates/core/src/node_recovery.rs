//! Recovering nodes rather than processes (§6.6.2).
//!
//! "The greatest steady state cost incurred by publishing messages is the
//! routing of intranode messages onto the network." If a site is willing
//! to recover a whole node as a unit, intranode messages need not be
//! published at all — provided the node behaves deterministically upon
//! its *extranode* inputs. The section's recipe, reproduced here as a
//! self-contained model:
//!
//! - a deterministic round-robin scheduler: "the scheduler always runs
//!   the first process in the queue … until it has executed a
//!   predetermined number of instructions or until it attempts to read a
//!   message and none exist";
//! - instruction counting: every extranode message is reported to the
//!   recorder with "how many instructions have been executed prior to
//!   receipt of the message", and on replay "the recovering node will not
//!   use the message until that time."
//!
//! The model runs a node of small deterministic processes exchanging
//! intranode messages freely; only the extranode injection log (the
//! published part) is needed to reproduce the node bit-exactly.

use publishing_sim::rng::DetRng;
use std::collections::VecDeque;

/// An extranode message with its §6.6.2 synchronization tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtEvent {
    /// The node's instruction count when the message was (to be) used.
    pub at_instruction: u64,
    /// Destination process index.
    pub dst: usize,
    /// Payload.
    pub value: u64,
}

/// One process on the node: a deterministic state machine that, on each
/// message, folds it into its state and possibly emits intranode messages
/// (derived purely from its state).
#[derive(Debug, Clone, PartialEq, Eq)]
struct UnitProc {
    state: u64,
    inbox: VecDeque<u64>,
}

impl UnitProc {
    fn new(seed: u64) -> Self {
        UnitProc {
            state: seed.wrapping_mul(2).wrapping_add(1),
            inbox: VecDeque::new(),
        }
    }

    /// Consumes one message; returns intranode sends (dst offset, value)
    /// and an optional externally visible output.
    fn consume(&mut self, msg: u64, n_procs: usize) -> (Vec<(usize, u64)>, Option<u64>) {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(msg)
            .rotate_left(9);
        let mut sends = Vec::new();
        // 0, 1 or 2 intranode sends, chosen deterministically. The
        // branching factor is kept subcritical (mean 0.75) so chatter
        // excursions always die out — a critical process (mean 1.0) can
        // wander for millions of steps on unlucky seeds.
        let n = match (self.state >> 13) % 4 {
            0 | 1 => 0,
            2 => 1,
            _ => 2,
        };
        for i in 0..n {
            let dst = ((self.state >> (17 + i)) as usize) % n_procs;
            sends.push((dst, self.state ^ i));
        }
        let output = if self.state.is_multiple_of(5) {
            Some(self.state)
        } else {
            None
        };
        (sends, output)
    }
}

/// A node run as a single recoverable unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeUnit {
    procs: Vec<UnitProc>,
    /// Round-robin run queue (process indices with non-empty inboxes).
    run_queue: VecDeque<usize>,
    queued: Vec<bool>,
    /// Instructions (activations) executed so far — the §6.6.2 counter.
    pub instructions: u64,
    /// Externally visible outputs, in emission order.
    pub outputs: Vec<(u64, usize, u64)>,
    /// Intranode messages exchanged (the traffic §6.6.2 avoids
    /// publishing).
    pub intranode_messages: u64,
}

impl NodeUnit {
    /// Creates a node of `n` processes seeded deterministically.
    pub fn new(n: usize, seed: u64) -> Self {
        NodeUnit {
            procs: (0..n)
                .map(|i| UnitProc::new(seed.wrapping_add(i as u64 * 1297)))
                .collect(),
            run_queue: VecDeque::new(),
            queued: vec![false; n],
            instructions: 0,
            outputs: Vec::new(),
            intranode_messages: 0,
        }
    }

    fn wake(&mut self, p: usize) {
        if !self.queued[p] && !self.procs[p].inbox.is_empty() {
            self.queued[p] = true;
            // "Processes waiting for messages are put back at the head of
            // the queue whenever a message becomes available."
            self.run_queue.push_front(p);
        }
    }

    /// Executes one scheduler quantum (one activation). Returns `false`
    /// if every process is blocked on an empty inbox.
    pub fn step(&mut self) -> bool {
        let Some(p) = self.run_queue.pop_front() else {
            return false;
        };
        self.queued[p] = false;
        let Some(msg) = self.procs[p].inbox.pop_front() else {
            return true;
        };
        let n = self.procs.len();
        let (sends, output) = self.procs[p].consume(msg, n);
        self.instructions += 1;
        if let Some(v) = output {
            self.outputs.push((self.instructions, p, v));
        }
        for (dst, value) in sends {
            self.intranode_messages += 1;
            self.procs[dst].inbox.push_back(value);
            self.wake(dst);
        }
        // Round robin: if it still has work it goes to the back.
        if !self.procs[p].inbox.is_empty() && !self.queued[p] {
            self.queued[p] = true;
            self.run_queue.push_back(p);
        }
        true
    }

    /// Injects an extranode message *now*, returning the synchronization
    /// record to publish.
    pub fn inject(&mut self, dst: usize, value: u64) -> ExtEvent {
        self.procs[dst].inbox.push_back(value);
        self.wake(dst);
        ExtEvent {
            at_instruction: self.instructions,
            dst,
            value,
        }
    }

    /// Runs until all inboxes drain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    /// A digest of the node's complete state (for equivalence checks).
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for p in &self.procs {
            fold(p.state);
            for &m in &p.inbox {
                fold(m);
            }
        }
        fold(self.instructions);
        h
    }

    /// Recovers a node from scratch by replaying only the published
    /// extranode log: each event is injected exactly when the instruction
    /// counter reaches its recorded value (§6.6.2's synchronization).
    ///
    /// # Panics
    ///
    /// Panics if the log is not ordered by instruction count (a corrupted
    /// log).
    pub fn replay(n: usize, seed: u64, log: &[ExtEvent]) -> NodeUnit {
        assert!(
            log.windows(2)
                .all(|w| w[0].at_instruction <= w[1].at_instruction),
            "extranode log out of order"
        );
        let mut node = NodeUnit::new(n, seed);
        for ev in log {
            // "The recovering node will not use the message until that
            // time"; if the node idles early, the message simply arrives
            // into an idle node — the same state it was injected into.
            while node.instructions < ev.at_instruction {
                if !node.step() {
                    break;
                }
            }
            node.inject(ev.dst, ev.value);
        }
        node.run_to_idle();
        node
    }
}

/// Generates a random extranode workload against a live node and returns
/// `(final node, published log)`.
pub fn run_workload(
    n: usize,
    seed: u64,
    events: usize,
    rng: &mut DetRng,
) -> (NodeUnit, Vec<ExtEvent>) {
    let mut node = NodeUnit::new(n, seed);
    let mut log = Vec::new();
    for _ in 0..events {
        // Interleave: run a random number of quanta, then inject.
        let quanta = rng.below(6);
        for _ in 0..quanta {
            if !node.step() {
                break;
            }
        }
        let dst = rng.index(n);
        let value = rng.next_u64();
        log.push(node.inject(dst, value));
    }
    node.run_to_idle();
    (node, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_from_extranode_log_reproduces_node_exactly() {
        let mut rng = DetRng::new(42);
        let (live, log) = run_workload(4, 7, 100, &mut rng);
        let recovered = NodeUnit::replay(4, 7, &log);
        assert_eq!(recovered.state_digest(), live.state_digest());
        assert_eq!(recovered.outputs, live.outputs);
        assert_eq!(recovered.instructions, live.instructions);
    }

    #[test]
    fn published_traffic_is_a_fraction_of_total() {
        // The §6.6.2 payoff: only extranode messages are published.
        let mut rng = DetRng::new(1);
        let (live, log) = run_workload(6, 3, 200, &mut rng);
        let published = log.len() as u64;
        let total = published + live.intranode_messages;
        assert!(
            live.intranode_messages > published,
            "workload should be intranode-dominated: {} intranode vs {} extranode",
            live.intranode_messages,
            published
        );
        assert!(total > 0);
    }

    #[test]
    fn wrong_injection_time_diverges() {
        // Moving one extranode message by a single instruction changes the
        // interleaving — demonstrating why the instruction-count sync is
        // necessary, not pedantry.
        let mut rng = DetRng::new(9);
        let (live, log) = run_workload(4, 11, 80, &mut rng);
        // Some single-event one-instruction skew must change the outcome.
        let mut any_divergence = false;
        for i in 0..log.len() {
            let mut skewed = log.clone();
            skewed[i].at_instruction += 1;
            let ordered = skewed
                .windows(2)
                .all(|w| w[0].at_instruction <= w[1].at_instruction);
            if !ordered {
                continue;
            }
            let recovered = NodeUnit::replay(4, 11, &skewed);
            if recovered.state_digest() != live.state_digest() {
                any_divergence = true;
                break;
            }
        }
        assert!(
            any_divergence,
            "a one-instruction skew must be observable somewhere"
        );
    }

    #[test]
    fn scheduler_is_deterministic() {
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            let (node, _) = run_workload(5, 2, 150, &mut rng);
            (node.state_digest(), node.outputs)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }

    #[test]
    fn empty_log_replays_to_fresh_node() {
        let node = NodeUnit::replay(3, 1, &[]);
        assert_eq!(node.instructions, 0);
        assert!(node.outputs.is_empty());
        assert_eq!(node.state_digest(), NodeUnit::new(3, 1).state_digest());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn disordered_log_rejected() {
        let log = [
            ExtEvent {
                at_instruction: 5,
                dst: 0,
                value: 1,
            },
            ExtEvent {
                at_instruction: 2,
                dst: 0,
                value: 2,
            },
        ];
        NodeUnit::replay(2, 1, &log);
    }
}
