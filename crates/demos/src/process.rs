//! Kernel-resident process state (§4.4.3) and checkpoint encoding.
//!
//! A process's complete state is its program's writable memory (captured
//! by [`Program::snapshot`]), its sequencing information, and the
//! kernel-managed tables: the link table, receive mask, message counters,
//! and per-sender duplicate-suppression watermarks. The unread message
//! queue is deliberately *not* checkpointed — those messages are published
//! and will be replayed ("all messages … not read by the process before
//! the checkpoint was taken", §3.1).

use crate::ids::{ChannelSet, MessageId, ProcessId};
use crate::link::LinkTable;
use crate::message::Message;
use crate::program::Program;
use crate::queue::MessageQueue;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use publishing_sim::time::SimDuration;
use std::collections::{BTreeMap, BTreeSet};

/// A process's run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Has a deliverable message and is queued for (or on) the CPU.
    Ready,
    /// Waiting for a message matching its receive mask.
    Waiting,
    /// Halted on fault detection (§1.1.2); discards arriving messages.
    Crashed,
    /// Being rebuilt by a recovery process (§3.3.3).
    Recovering,
}

/// Transient bookkeeping while a process is in [`RunState::Recovering`].
#[derive(Debug, Default)]
pub struct RecoveryBook {
    /// Ids replayed so far (dedup against the finish-side buffer).
    pub replayed: BTreeSet<MessageId>,
    /// `true` once the recovery process asked the kernel to stop
    /// discarding live traffic and hold it aside instead.
    pub holding: bool,
    /// Live messages held during the finish window.
    pub side_buffer: Vec<Message>,
    /// Per-destination suppression watermarks from the recorder: a
    /// regenerated message to `dst` with `seq <=` the watermark was
    /// already delivered before the crash and must not be retransmitted.
    pub suppress: BTreeMap<ProcessId, u64>,
}

/// The checkpointable portion of a process's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessImage {
    /// Registry name of the program (the "binary image" of §3.3.1).
    pub program_name: String,
    /// The program's snapshot bytes.
    pub program_state: Vec<u8>,
    /// Kernel-resident link table.
    pub links: LinkTable,
    /// Receive mask in force.
    pub recv_mask_bits: u64,
    /// Last message sequence number used by this process.
    pub sent_seq: u64,
    /// Messages read so far — the recorder's replay floor.
    pub read_count: u64,
    /// Per-sender highest message seq accepted (duplicate suppression).
    pub seen: BTreeMap<ProcessId, u64>,
    /// Output lines emitted so far (consoles deduplicate replayed output
    /// by this sequence).
    pub outputs_emitted: u64,
    /// CPU consumed since the last checkpoint (feeds the §3.2.3 t_compute
    /// term of the recovery-time bound).
    pub cpu_since_checkpoint_ns: u64,
}

impl Encode for ProcessImage {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.program_name);
        e.bytes(&self.program_state);
        self.links.encode(e);
        e.u64(self.recv_mask_bits)
            .u64(self.sent_seq)
            .u64(self.read_count);
        e.u64(self.seen.len() as u64);
        for (pid, seq) in &self.seen {
            pid.encode(e);
            e.u64(*seq);
        }
        e.u64(self.outputs_emitted);
        e.u64(self.cpu_since_checkpoint_ns);
    }
}

impl Decode for ProcessImage {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let program_name = d.str()?;
        let program_state = d.bytes()?;
        let links = LinkTable::decode(d)?;
        let recv_mask_bits = d.u64()?;
        let sent_seq = d.u64()?;
        let read_count = d.u64()?;
        let n = d.u64()?;
        let mut seen = BTreeMap::new();
        for _ in 0..n {
            let pid = ProcessId::decode(d)?;
            let seq = d.u64()?;
            seen.insert(pid, seq);
        }
        let outputs_emitted = d.u64()?;
        let cpu_since_checkpoint_ns = d.u64()?;
        Ok(ProcessImage {
            program_name,
            program_state,
            links,
            recv_mask_bits,
            sent_seq,
            read_count,
            seen,
            outputs_emitted,
            cpu_since_checkpoint_ns,
        })
    }
}

/// A live process: program plus kernel-resident state.
pub struct Process {
    /// Network-wide id.
    pub pid: ProcessId,
    /// Registry name used to (re)instantiate the program.
    pub program_name: String,
    /// The running program.
    pub program: Box<dyn Program>,
    /// Kernel-resident link table.
    pub links: LinkTable,
    /// Unread messages.
    pub queue: MessageQueue,
    /// Channels the next receive accepts.
    pub recv_mask: ChannelSet,
    /// Run state.
    pub run: RunState,
    /// Last message sequence number used.
    pub sent_seq: u64,
    /// Messages read so far.
    pub read_count: u64,
    /// Per-sender accepted-seq watermarks.
    pub seen: BTreeMap<ProcessId, u64>,
    /// Output lines emitted so far.
    pub outputs_emitted: u64,
    /// Recovery bookkeeping while [`RunState::Recovering`].
    pub recovery: Option<RecoveryBook>,
    /// CPU consumed since the last checkpoint.
    pub cpu_since_checkpoint: SimDuration,
    /// Whether `on_start` has been run.
    pub started: bool,
}

impl Process {
    /// Creates a fresh process around `program`.
    pub fn new(pid: ProcessId, program_name: impl Into<String>, program: Box<dyn Program>) -> Self {
        Process {
            pid,
            program_name: program_name.into(),
            program,
            links: LinkTable::new(),
            queue: MessageQueue::new(),
            recv_mask: ChannelSet::ALL,
            run: RunState::Waiting,
            sent_seq: 0,
            read_count: 0,
            seen: BTreeMap::new(),
            outputs_emitted: 0,
            recovery: None,
            cpu_since_checkpoint: SimDuration::ZERO,
            started: false,
        }
    }

    /// Captures the checkpointable image of this process.
    pub fn image(&self) -> ProcessImage {
        ProcessImage {
            program_name: self.program_name.clone(),
            program_state: self.program.snapshot(),
            links: self.links.clone(),
            recv_mask_bits: self.recv_mask.bits(),
            sent_seq: self.sent_seq,
            read_count: self.read_count,
            seen: self.seen.clone(),
            outputs_emitted: self.outputs_emitted,
            cpu_since_checkpoint_ns: self.cpu_since_checkpoint.as_nanos(),
        }
    }

    /// Rebuilds kernel state and program state from an image. The caller
    /// provides a freshly instantiated program of the right type.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the program state fails to decode.
    pub fn restore_from(
        pid: ProcessId,
        image: &ProcessImage,
        mut program: Box<dyn Program>,
    ) -> Result<Self, CodecError> {
        program.restore(&image.program_state)?;
        Ok(Process {
            pid,
            program_name: image.program_name.clone(),
            program,
            links: image.links.clone(),
            queue: MessageQueue::new(),
            recv_mask: ChannelSet::from_bits(image.recv_mask_bits),
            run: RunState::Recovering,
            sent_seq: image.sent_seq,
            read_count: image.read_count,
            seen: image.seen.clone(),
            outputs_emitted: image.outputs_emitted,
            recovery: Some(RecoveryBook::default()),
            cpu_since_checkpoint: SimDuration::ZERO,
            started: true,
        })
    }

    /// Allocates the next message sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.sent_seq += 1;
        self.sent_seq
    }

    /// Returns `true` if `id` duplicates an already-*read* message from
    /// its sender, or one currently waiting in the queue. Per-pair FIFO
    /// makes the watermark half of the test sound; the queue scan covers
    /// arrived-but-unread copies. The watermark advances at read time —
    /// not arrival — so that a checkpoint's watermark never covers the
    /// arrived-but-unread messages recovery must replay.
    pub fn is_duplicate(&self, id: MessageId) -> bool {
        if self
            .seen
            .get(&id.sender)
            .map(|&w| id.seq <= w)
            .unwrap_or(false)
        {
            return true;
        }
        self.queue.iter().any(|m| m.header.id == id)
    }

    /// Records the read of `id`, advancing its sender's watermark.
    pub fn note_read(&mut self, id: MessageId) {
        let w = self.seen.entry(id.sender).or_insert(0);
        *w = (*w).max(id.seq);
    }
}

impl core::fmt::Debug for Process {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("program", &self.program_name)
            .field("run", &self.run)
            .field("sent_seq", &self.sent_seq)
            .field("read_count", &self.read_count)
            .field("queued", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Channel;
    use crate::link::Link;
    use crate::program::{Ctx, Received};

    /// A trivial counter program used across the kernel tests.
    struct CounterProg {
        count: u64,
    }

    impl Program for CounterProg {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Received) {
            self.count += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_le_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| CodecError::UnexpectedEnd {
                needed: 8,
                remaining: bytes.len(),
            })?;
            self.count = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn proc() -> Process {
        Process::new(
            ProcessId::new(1, 3),
            "counter",
            Box::new(CounterProg { count: 5 }),
        )
    }

    #[test]
    fn image_roundtrip_via_codec() {
        let mut p = proc();
        p.sent_seq = 11;
        p.read_count = 4;
        p.seen.insert(ProcessId::new(2, 1), 9);
        p.links
            .insert(Link::to(ProcessId::new(2, 1), Channel(1), 7));
        let img = p.image();
        let buf = img.encode_to_vec();
        assert_eq!(ProcessImage::decode_all(&buf).unwrap(), img);
    }

    #[test]
    fn restore_rebuilds_equivalent_process() {
        let mut p = proc();
        p.sent_seq = 3;
        p.read_count = 2;
        let img = p.image();
        let restored =
            Process::restore_from(p.pid, &img, Box::new(CounterProg { count: 0 })).unwrap();
        assert_eq!(restored.sent_seq, 3);
        assert_eq!(restored.read_count, 2);
        assert_eq!(restored.run, RunState::Recovering);
        assert_eq!(restored.program.snapshot(), p.program.snapshot());
        assert!(restored.started);
    }

    #[test]
    fn seq_allocation_is_monotone() {
        let mut p = proc();
        assert_eq!(p.next_seq(), 1);
        assert_eq!(p.next_seq(), 2);
        assert_eq!(p.sent_seq, 2);
    }

    #[test]
    fn duplicate_detection_by_watermark() {
        let mut p = proc();
        let sender = ProcessId::new(2, 2);
        let m1 = MessageId { sender, seq: 1 };
        let m2 = MessageId { sender, seq: 2 };
        assert!(!p.is_duplicate(m1));
        p.note_read(m2);
        assert!(p.is_duplicate(m1));
        assert!(p.is_duplicate(m2));
        assert!(!p.is_duplicate(MessageId { sender, seq: 3 }));
    }

    #[test]
    fn corrupted_image_restore_fails() {
        let p = proc();
        let mut img = p.image();
        img.program_state = vec![1, 2, 3]; // wrong length for CounterProg
        let err = Process::restore_from(p.pid, &img, Box::new(CounterProg { count: 0 }));
        assert!(err.is_err());
    }
}
