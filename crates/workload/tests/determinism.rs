//! Fixed-seed determinism for the closed-loop capacity search: two
//! searches of the same (shape, topology, seed) must walk the same
//! user sequence to the same knee with the same per-point verdicts.
//! A nondeterministic knee would make the `bench_compare` capacity
//! gate flaky, so determinism is itself the tested invariant.

use publishing_chaos::{Medium, Topology};
use publishing_obs::slo::SloSpec;
use publishing_workload::{canonical_shapes, find_knee, Knee, SearchParams};

fn skeleton(k: &Knee) -> (u32, Vec<(u32, bool)>) {
    (
        k.knee_users,
        k.trials.iter().map(|t| (t.users, t.pass)).collect(),
    )
}

fn smoke_params(medium: Medium) -> SearchParams {
    SearchParams {
        max_users: 16,
        chaos: true,
        medium,
        ..SearchParams::default()
    }
}

/// The same search run twice agrees point-for-point, on both media and
/// all three topologies, chaos validation included.
#[test]
fn repeated_searches_agree_exactly() {
    for (name, spec) in canonical_shapes(7).into_iter().take(2) {
        for topo in [Topology::Single, Topology::Sharded, Topology::Quorum] {
            for medium in [Medium::Perfect, Medium::Ethernet] {
                let params = smoke_params(medium);
                let a = find_knee(name, topo, &spec, &SloSpec::default(), &params);
                let b = find_knee(name, topo, &spec, &SloSpec::default(), &params);
                assert_eq!(
                    skeleton(&a),
                    skeleton(&b),
                    "{name}/{topo:?}/{medium:?} diverged"
                );
            }
        }
    }
}

/// Structural invariants of any search: the knee is the largest passing
/// trial (or zero with none), the bracket walk never exceeds the cap,
/// and every searched point carries full workload accounting.
#[test]
fn search_results_are_well_formed() {
    let (name, spec) = canonical_shapes(3).remove(2); // flash_crowd
    let params = smoke_params(Medium::Ethernet);
    let knee = find_knee(name, Topology::Single, &spec, &SloSpec::default(), &params);
    assert!(knee.knee_users <= params.max_users);
    match knee.knee_trial() {
        Some(best) => assert_eq!(best.users, knee.knee_users),
        None => assert_eq!(knee.knee_users, 0),
    }
    assert!(!knee.trials.is_empty());
    for t in &knee.trials {
        assert!(t.users >= 1 && t.users <= params.max_users);
        assert!(t.delivered <= t.offered, "sinks cannot invent messages");
        let w = t.report.workload.as_ref().expect("stats attached");
        assert_eq!(w.offered, t.offered);
        assert_eq!(w.delivered, t.delivered);
        assert_eq!(
            t.pass,
            t.violations.is_empty() && t.chaos_failures.is_empty()
        );
    }
}
