//! Workload synthesis for the Chapter 5 model.
//!
//! §5.1 derived its operating points "by measuring the most heavily
//! utilized research VAX at UCB over the period of a week" and converting
//! to a distributed equivalent: "all system calls were assumed to
//! translate to short messages sent to servers. All I/O requests were
//! assumed to represent long messages … estimated to be 128 and 1024
//! bytes respectively." The raw traces are long gone, so this module
//! synthesizes state sizes and per-process traffic with the shapes the
//! thesis states (Figure 5.3's 4 KB–64 KB spread) and applies the same
//! conversion rule.

use publishing_sim::rng::DetRng;

// The size constants live with the shared load-driver sampling in
// `publishing_demos::driver`; re-exported here so the analytic model
// and the simulated drivers can never disagree about the conversion
// rule.
pub use publishing_demos::driver::{CHECKPOINT_BYTES, LONG_BYTES, SHORT_BYTES};

/// The Figure 5.3 process state-size distribution: a right-skewed spread
/// over 4 KB–64 KB (most UNIX processes small, a heavy tail of big ones).
#[derive(Debug, Clone, Copy)]
pub struct StateSizes {
    /// Log-mean of the underlying normal (of KB).
    pub mu: f64,
    /// Log-sigma.
    pub sigma: f64,
}

impl Default for StateSizes {
    fn default() -> Self {
        // exp(2.3) ≈ 10 KB median, long tail clipped at 64 KB.
        StateSizes {
            mu: 2.3,
            sigma: 0.7,
        }
    }
}

impl StateSizes {
    /// Samples one process state size in bytes, clipped to [4 KB, 64 KB].
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let kb = rng.lognormal(self.mu, self.sigma).clamp(4.0, 64.0);
        (kb * 1024.0) as usize
    }

    /// The distribution's mean in bytes (by sampling; deterministic for a
    /// fixed seed).
    pub fn mean_bytes(&self, rng: &mut DetRng, samples: usize) -> f64 {
        let total: usize = (0..samples).map(|_| self.sample(rng)).sum();
        total as f64 / samples as f64
    }

    /// A histogram over `buckets` equal-width bins spanning 4–64 KB,
    /// normalized to fractions — the Figure 5.3 curve.
    pub fn histogram(&self, rng: &mut DetRng, samples: usize, buckets: usize) -> Vec<f64> {
        let mut h = publishing_sim::LinearHistogram::new(4.0, 64.0, buckets);
        for _ in 0..samples {
            h.record(self.sample(rng) as f64 / 1024.0);
        }
        h.fractions()
    }
}

/// Per-process message traffic, after the syscall/IO → message
/// conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessTraffic {
    /// Short (128 B) messages per second.
    pub short_per_sec: f64,
    /// Long (1024 B) messages per second.
    pub long_per_sec: f64,
}

impl ProcessTraffic {
    /// Total published bytes per second (messages only).
    pub fn bytes_per_sec(&self) -> f64 {
        self.short_per_sec * SHORT_BYTES as f64 + self.long_per_sec * LONG_BYTES as f64
    }

    /// Total messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.short_per_sec + self.long_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_sizes_in_range() {
        let mut rng = DetRng::new(1);
        let d = StateSizes::default();
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((4096..=65536).contains(&s));
        }
    }

    #[test]
    fn state_size_distribution_is_right_skewed() {
        let mut rng = DetRng::new(2);
        let d = StateSizes::default();
        let h = d.histogram(&mut rng, 100_000, 12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass concentrates low with a tail: the first third of buckets
        // holds most of the distribution.
        let head: f64 = h[..4].iter().sum();
        let tail: f64 = h[8..].iter().sum();
        assert!(head > 0.5, "head {head}");
        assert!(tail > 0.01, "some large processes exist: {tail}");
        assert!(head > tail * 3.0);
    }

    #[test]
    fn mean_between_bounds() {
        let mut rng = DetRng::new(3);
        let mean = StateSizes::default().mean_bytes(&mut rng, 50_000);
        assert!(mean > 8.0 * 1024.0 && mean < 32.0 * 1024.0, "mean {mean}");
    }

    #[test]
    fn traffic_arithmetic() {
        let t = ProcessTraffic {
            short_per_sec: 10.0,
            long_per_sec: 2.0,
        };
        assert!((t.bytes_per_sec() - (1280.0 + 2048.0)).abs() < 1e-9);
        assert!((t.msgs_per_sec() - 12.0).abs() < 1e-9);
    }
}
