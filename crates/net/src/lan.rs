//! The LAN abstraction: a sans-IO medium state machine.
//!
//! Every medium model (CSMA/CD Ethernet, Acknowledging Ethernet, token
//! ring, star hub, and the idealized bus) implements [`Lan`]. A driver —
//! the simulation world, or a unit test — feeds it transmissions and timer
//! callbacks and executes the [`LanAction`]s it emits. The medium owns all
//! physical-layer concerns: serialization delay, contention, loss and
//! corruption draws, and the *recorder acknowledgement* semantics of §6.1
//! ("if the recorder cannot receive a message, the processor for which the
//! message is destined cannot be allowed to receive it").

use crate::frame::{Frame, StationId};
use publishing_sim::fault::FaultPlan;
use publishing_sim::rng::DetRng;
use publishing_sim::stats::{Counter, Utilization};
use publishing_sim::time::{SimDuration, SimTime};

/// Physical and MAC parameters of a LAN.
#[derive(Debug, Clone)]
pub struct LanConfig {
    /// Raw bandwidth in bits per second (Fig 5.2: 10 Mb/s).
    pub bandwidth_bps: u64,
    /// Fixed per-frame interface delay (Fig 5.2: 1.6 ms interpacket delay).
    pub interpacket: SimDuration,
    /// Collision window / backoff quantum (classic Ethernet: 51.2 µs).
    pub slot_time: SimDuration,
    /// Length of a reserved acknowledge slot (Acknowledging Ethernet §6.1.1).
    pub ack_slot: SimDuration,
    /// Cap on the binary-exponential-backoff exponent.
    pub max_backoff_exp: u32,
    /// Transmission attempts before the MAC reports failure.
    pub max_attempts: u32,
    /// Seed for the medium's private randomness (backoff, fault draws).
    pub seed: u64,
}

impl Default for LanConfig {
    fn default() -> Self {
        LanConfig {
            bandwidth_bps: 10_000_000,
            interpacket: SimDuration::from_micros(1_600),
            slot_time: SimDuration::from_nanos(51_200),
            ack_slot: SimDuration::from_nanos(51_200),
            max_backoff_exp: 10,
            max_attempts: 16,
            seed: 0,
        }
    }
}

impl LanConfig {
    /// Returns the time to serialize `bytes` onto the wire, including the
    /// fixed interpacket delay.
    pub fn frame_time(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        let ns = bits.saturating_mul(1_000_000_000) / self.bandwidth_bps;
        self.interpacket + SimDuration::from_nanos(ns)
    }

    /// Returns this configuration with the wire sped up by `factor`
    /// (> 1 = faster): bandwidth multiplied, the fixed per-frame
    /// interface delay divided. Contention constants (slot and ack
    /// slots, backoff) are physical-layer round-trip properties and are
    /// left untouched. This is the what-if profiler's "wire speed ×k"
    /// knob.
    pub fn scaled(&self, factor: f64) -> LanConfig {
        assert!(factor > 0.0, "wire-speed factor must be positive");
        let mut cfg = self.clone();
        cfg.bandwidth_bps = ((self.bandwidth_bps as f64) * factor).max(1.0) as u64;
        cfg.interpacket = self.interpacket.mul_f64(1.0 / factor);
        cfg
    }
}

/// An action a medium asks its driver to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LanAction {
    /// Deliver `frame` to station `to` at time `at`.
    ///
    /// `recorder_ok` reports whether every *required* recorder received the
    /// frame intact; publishing-enforcing link layers discard the frame
    /// when it is `false` (§4.4.1), forcing a transport-level resend.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Receiving station (every attached, up station other than the
        /// sender gets one — broadcast medium).
        to: StationId,
        /// The frame as received (possibly corrupted in flight).
        frame: Frame,
        /// Whether all required recorders captured the frame intact.
        recorder_ok: bool,
    },
    /// Report the fate of a transmission to its submitting station.
    TxOutcome {
        /// Completion time.
        at: SimTime,
        /// The station that submitted the frame.
        station: StationId,
        /// `true` if the frame made it onto the wire; `false` if the MAC
        /// gave up (excessive collisions).
        ok: bool,
        /// Collisions suffered before the outcome.
        collisions: u32,
    },
    /// Ask the driver to call [`Lan::timer`] with `token` at time `at`.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Opaque token to hand back.
        token: u64,
    },
}

/// Counters every medium keeps.
#[derive(Debug, Default, Clone)]
pub struct LanStats {
    /// Frames submitted by stations.
    pub submitted: Counter,
    /// Frame deliveries to stations (per receiving station).
    pub delivered: Counter,
    /// Collisions observed (CSMA/CD media only).
    pub collisions: Counter,
    /// Frames dropped by fault injection (loss draws).
    pub lost: Counter,
    /// Frames corrupted by fault injection.
    pub corrupted: Counter,
    /// Extra deliveries produced by fault injection (duplication draws).
    pub duplicated: Counter,
    /// Frames blocked because a required recorder missed them.
    pub recorder_blocked: Counter,
    /// Transmissions abandoned after too many collisions.
    pub aborted: Counter,
    /// Wire bytes submitted (headers included) — with `submitted`, the
    /// mean frame size the queueing cross-validation's utilization-law
    /// prediction needs.
    pub wire_bytes: Counter,
    /// Busy-time integrator for the shared medium.
    pub busy: Utilization,
    /// Per-station counts of gating stalls attributed to the required
    /// recorder that missed the frame: when delivery is blocked because a
    /// required recorder failed to capture a frame intact, each recorder
    /// that missed it is charged here. The sharded tier reads this to
    /// report per-shard capture-set stalls.
    pub blocked_at_recorder: std::collections::BTreeMap<StationId, u64>,
}

impl LanStats {
    /// Returns the gating stalls charged to one required-recorder station.
    pub fn blocked_at(&self, station: StationId) -> u64 {
        self.blocked_at_recorder.get(&station).copied().unwrap_or(0)
    }
}

/// Per-frame recorder routing for sharded recorder tiers.
///
/// Given a frame, returns the stations whose intact receipt gates its
/// delivery — `Some(set)` overrides the global required-recorder set for
/// this frame (an empty set means the frame is ungated), `None` falls
/// back to it. The closure is installed by the tier above the medium
/// (it decodes the opaque payload to find the destination process and
/// asks the shard map which shards own its recorder-ack slot); the
/// medium itself stays payload-agnostic.
pub type RecorderRouter = std::sync::Arc<dyn Fn(&Frame) -> Option<Vec<StationId>> + Send + Sync>;

/// Resolves the required-recorder set for one frame: router verdict if
/// one is installed and speaks, otherwise the medium's global set.
pub(crate) fn route_required(
    router: Option<&RecorderRouter>,
    frame: &Frame,
    fallback: impl FnOnce() -> Vec<StationId>,
) -> Vec<StationId> {
    router.and_then(|r| r(frame)).unwrap_or_else(fallback)
}

/// A broadcast medium with publishing (recorder-acknowledgement) support.
pub trait Lan {
    /// Attaches a station; it starts up.
    fn attach(&mut self, station: StationId);

    /// Marks a station up or down; down stations neither receive nor count
    /// as recorders.
    fn set_station_up(&mut self, station: StationId, up: bool);

    /// Sets the stations whose intact receipt gates delivery (§6.1, §6.3).
    /// An empty set disables recorder gating (baseline, non-published mode).
    fn set_required_recorders(&mut self, recorders: Vec<StationId>);

    /// Installs (or clears) a per-frame recorder router, giving each
    /// frame's recorder-ack slot to the shard(s) owning its destination.
    /// Default: ignored — media without router support keep gating on
    /// the global [`Lan::set_required_recorders`] set, and the star hub
    /// is structurally its own single recorder.
    fn set_recorder_router(&mut self, _router: Option<RecorderRouter>) {}

    /// Installs a fault plan (loss/corruption/duplication probabilities).
    /// Replacing the plan mid-run is how the chaos engine opens and closes
    /// fault bursts; the medium's RNG stream is unaffected by the swap.
    fn set_faults(&mut self, faults: FaultPlan);

    /// Submits a frame for transmission from `frame.src`.
    fn submit(&mut self, now: SimTime, frame: Frame) -> Vec<LanAction>;

    /// Delivers a previously requested timer callback.
    fn timer(&mut self, now: SimTime, token: u64) -> Vec<LanAction>;

    /// Returns the medium's counters.
    fn stats(&self) -> &LanStats;

    /// Returns the medium's timing configuration, when it has one (all
    /// built-in media do). The capacity lens reads the bandwidth and
    /// interpacket constants here to compute the analytic service time
    /// its queueing cross-validation predicts utilization from.
    fn config(&self) -> Option<&LanConfig> {
        None
    }
}

/// Shared per-delivery fault and recorder-gating logic used by all media.
///
/// Given the set of receiving stations, rolls loss/corruption per receiver,
/// determines `recorder_ok` from the required recorders' outcomes, and
/// produces the corresponding [`LanAction::Deliver`]s.
pub(crate) struct DeliveryFanout<'a> {
    pub faults: &'a FaultPlan,
    pub rng: &'a mut DetRng,
    pub stats: &'a mut LanStats,
    /// How much later a duplicated frame's second copy arrives. Media pass
    /// their natural re-arrival delay (a frame time, a hop latency); the
    /// fanout floors it at 1 ns so the two arrivals are always distinct.
    pub dup_gap: SimDuration,
}

impl DeliveryFanout<'_> {
    /// Fans `frame` out to `receivers` at time `at`.
    ///
    /// `required_recorders` must be a subset of `receivers` (down stations
    /// already filtered out by the caller). Stations that lose the frame
    /// get no delivery; corrupted deliveries arrive with a broken FCS; a
    /// duplication draw makes an intact delivery arrive a second time,
    /// `dup_gap` later.
    pub fn run(
        &mut self,
        at: SimTime,
        frame: &Frame,
        receivers: &[StationId],
        required_recorders: &[StationId],
    ) -> Vec<LanAction> {
        // Decide each receiver's physical outcome first.
        #[derive(Clone, Copy, PartialEq)]
        enum Fate {
            Ok,
            Lost,
            Corrupt,
        }
        let fates: Vec<(StationId, Fate)> = receivers
            .iter()
            .map(|&st| {
                let fate = if self.faults.roll_loss(self.rng) {
                    Fate::Lost
                } else if self.faults.roll_corruption(self.rng) {
                    Fate::Corrupt
                } else {
                    Fate::Ok
                };
                (st, fate)
            })
            .collect();

        // §6.1: the frame is usable only if every required recorder
        // captured it intact. A recorder that *sent* the frame trivially
        // has it.
        let recorder_ok = required_recorders.iter().all(|r| {
            *r == frame.src || fates.iter().any(|&(st, fate)| st == *r && fate == Fate::Ok)
        });
        if !recorder_ok && !required_recorders.is_empty() {
            self.stats.recorder_blocked.inc();
            // Attribute the stall to every required recorder that missed
            // the frame, so a sharded tier can see which shard is lossy.
            for r in required_recorders {
                let missed = *r != frame.src
                    && !fates.iter().any(|&(st, fate)| st == *r && fate == Fate::Ok);
                if missed {
                    *self.stats.blocked_at_recorder.entry(*r).or_insert(0) += 1;
                }
            }
        }

        let mut out = Vec::with_capacity(fates.len());
        for (st, fate) in fates {
            match fate {
                Fate::Lost => {
                    self.stats.lost.inc();
                }
                Fate::Corrupt => {
                    self.stats.corrupted.inc();
                    let mut f = frame.clone();
                    f.corrupt_in_flight();
                    self.stats.delivered.inc();
                    out.push(LanAction::Deliver {
                        at,
                        to: st,
                        frame: f,
                        recorder_ok,
                    });
                }
                Fate::Ok => {
                    self.stats.delivered.inc();
                    out.push(LanAction::Deliver {
                        at,
                        to: st,
                        frame: frame.clone(),
                        recorder_ok,
                    });
                    if self.faults.roll_duplication(self.rng) {
                        self.stats.duplicated.inc();
                        self.stats.delivered.inc();
                        out.push(LanAction::Deliver {
                            at: at + self.dup_gap.max(SimDuration::from_nanos(1)),
                            to: st,
                            frame: frame.clone(),
                            recorder_ok,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Destination;

    #[test]
    fn frame_time_scales_with_size() {
        let cfg = LanConfig::default();
        let t_small = cfg.frame_time(128);
        let t_large = cfg.frame_time(1024);
        assert!(t_large > t_small);
        // 1024 bytes at 10 Mb/s is 819.2 µs on the wire plus 1.6 ms fixed.
        assert_eq!(
            t_large,
            SimDuration::from_micros(1_600) + SimDuration::from_nanos(819_200)
        );
    }

    #[test]
    fn scaled_config_speeds_up_the_wire() {
        let base = LanConfig::default();
        let fast = base.scaled(2.0);
        assert_eq!(fast.bandwidth_bps, 20_000_000);
        assert_eq!(fast.interpacket, SimDuration::from_micros(800));
        // Contention constants are untouched.
        assert_eq!(fast.slot_time, base.slot_time);
        assert_eq!(fast.ack_slot, base.ack_slot);
        // Frame time halves exactly for a doubling.
        assert_eq!(
            fast.frame_time(1024).as_nanos() * 2,
            base.frame_time(1024).as_nanos()
        );
    }

    #[test]
    fn fanout_delivers_to_all_when_fault_free() {
        let faults = FaultPlan::new();
        let mut rng = DetRng::new(1);
        let mut stats = LanStats::default();
        let frame = Frame::new(StationId(0), Destination::Broadcast, vec![1, 2, 3]);
        let receivers = [StationId(1), StationId(2), StationId(3)];
        let actions = DeliveryFanout {
            faults: &faults,
            rng: &mut rng,
            stats: &mut stats,
            dup_gap: SimDuration::from_micros(10),
        }
        .run(SimTime::from_millis(1), &frame, &receivers, &[StationId(3)]);
        assert_eq!(actions.len(), 3);
        for a in &actions {
            match a {
                LanAction::Deliver {
                    frame: f,
                    recorder_ok,
                    ..
                } => {
                    assert!(f.is_intact());
                    assert!(recorder_ok);
                }
                _ => panic!("unexpected action"),
            }
        }
    }

    #[test]
    fn recorder_loss_blocks_usability() {
        // Force every frame to be lost: the recorder misses it, so even
        // though nobody receives anything, the blocked counter reflects the
        // recorder gate.
        let faults = FaultPlan::new().with_frame_loss(1.0);
        let mut rng = DetRng::new(2);
        let mut stats = LanStats::default();
        let frame = Frame::new(StationId(0), Destination::Broadcast, vec![9]);
        let actions = DeliveryFanout {
            faults: &faults,
            rng: &mut rng,
            stats: &mut stats,
            dup_gap: SimDuration::from_micros(10),
        }
        .run(
            SimTime::ZERO,
            &frame,
            &[StationId(1), StationId(2)],
            &[StationId(2)],
        );
        assert!(actions.is_empty());
        assert_eq!(stats.recorder_blocked.get(), 1);
        assert_eq!(stats.lost.get(), 2);
        // The stall is attributed to the required recorder that missed the
        // frame, not to bystander receivers.
        assert_eq!(stats.blocked_at(StationId(2)), 1);
        assert_eq!(stats.blocked_at(StationId(1)), 0);
    }

    #[test]
    fn corruption_at_recorder_marks_unusable_for_receiver() {
        let faults = FaultPlan::new().with_frame_corruption(1.0);
        let mut rng = DetRng::new(3);
        let mut stats = LanStats::default();
        let frame = Frame::new(StationId(0), Destination::Broadcast, vec![7, 7]);
        let actions = DeliveryFanout {
            faults: &faults,
            rng: &mut rng,
            stats: &mut stats,
            dup_gap: SimDuration::from_micros(10),
        }
        .run(
            SimTime::ZERO,
            &frame,
            &[StationId(1), StationId(9)],
            &[StationId(9)],
        );
        assert_eq!(actions.len(), 2);
        for a in &actions {
            if let LanAction::Deliver {
                frame: f,
                recorder_ok,
                ..
            } = a
            {
                assert!(!f.is_intact());
                assert!(!recorder_ok);
            }
        }
    }

    #[test]
    fn duplication_yields_second_delivery_later() {
        let faults = FaultPlan::new().with_frame_duplication(1.0);
        let mut rng = DetRng::new(5);
        let mut stats = LanStats::default();
        let frame = Frame::new(StationId(0), Destination::Broadcast, vec![1]);
        let actions = DeliveryFanout {
            faults: &faults,
            rng: &mut rng,
            stats: &mut stats,
            dup_gap: SimDuration::from_micros(10),
        }
        .run(SimTime::from_millis(1), &frame, &[StationId(1)], &[]);
        let times: Vec<SimTime> = actions
            .iter()
            .filter_map(|a| match a {
                LanAction::Deliver { at, to, .. } if *to == StationId(1) => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(times.len(), 2);
        assert!(times[1] > times[0]);
        assert_eq!(stats.duplicated.get(), 1);
        assert_eq!(stats.delivered.get(), 2);
    }

    #[test]
    fn no_required_recorders_means_no_gating() {
        let faults = FaultPlan::new();
        let mut rng = DetRng::new(4);
        let mut stats = LanStats::default();
        let frame = Frame::new(StationId(0), Destination::Broadcast, vec![]);
        let actions = DeliveryFanout {
            faults: &faults,
            rng: &mut rng,
            stats: &mut stats,
            dup_gap: SimDuration::from_micros(10),
        }
        .run(SimTime::ZERO, &frame, &[StationId(1)], &[]);
        match &actions[0] {
            LanAction::Deliver { recorder_ok, .. } => assert!(recorder_ok),
            _ => panic!(),
        }
        assert_eq!(stats.recorder_blocked.get(), 0);
    }
}
