//! Virtual-time utilization ledger: typed resources, busy/idle
//! timelines, and automatic binding-resource ranking.
//!
//! Every serially reusable resource in the simulation — a node's CPU, the
//! broadcast medium, a recorder disk, a transport channel — charges its
//! busy spans into a [`Timeline`]: fixed-width virtual-time bins of busy
//! nanoseconds. Because a capacity run's report window is dominated by
//! the post-horizon drain/grace period, a scalar busy ÷ window ratio
//! dilutes a saturated resource to a few percent; the timeline preserves
//! *when* the resource was busy, so [`ResourceUsage::peak_util`] can
//! report utilization over the loaded window and the ranking in [`rank`]
//! can name the binding resource without hand analysis.
//!
//! The companion [`LevelGauge`] integrates a queue-depth level over
//! virtual time (the `L` of Little's law), which is what separates a
//! *bottleneck* (busy with work waiting) from a *self-paced source*
//! (busy by construction, nothing queued behind it).

use crate::time::{SimDuration, SimTime};

/// Timeline bin width as a power-of-two nanosecond shift: 2^24 ns
/// ≈ 16.78 ms per bin, so bin indexing is a shift, not a division.
pub const BIN_NS_SHIFT: u32 = 24;

/// Nanoseconds per timeline bin.
pub const BIN_NS: u64 = 1 << BIN_NS_SHIFT;

/// Sliding-window width (in bins) for [`Timeline::peak_util`]:
/// 8 bins ≈ 134 ms, the scale of the delivery-latency SLO.
pub const PEAK_WINDOW_BINS: usize = 8;

/// Busy nanoseconds accumulated per fixed-width virtual-time bin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    bins: Vec<u32>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline { bins: Vec::new() }
    }

    /// Charges the half-open busy span `[from, to)` into the bins it
    /// overlaps. Spans with `to <= from` are ignored.
    pub fn add_busy(&mut self, from: SimTime, to: SimTime) {
        let (a, b) = (from.as_nanos(), to.as_nanos());
        if b <= a {
            return;
        }
        let last_bin = ((b - 1) >> BIN_NS_SHIFT) as usize;
        if self.bins.len() <= last_bin {
            self.bins.resize(last_bin + 1, 0);
        }
        let mut cur = a;
        while cur < b {
            let bin = (cur >> BIN_NS_SHIFT) as usize;
            let bin_end = ((bin as u64) + 1) << BIN_NS_SHIFT;
            let end = b.min(bin_end);
            self.bins[bin] = self.bins[bin].saturating_add((end - cur) as u32);
            cur = end;
        }
    }

    /// Returns the per-bin busy nanoseconds.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Returns `true` if no busy time was ever charged.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(|&b| b == 0)
    }

    /// Total busy time across all bins.
    pub fn busy_total(&self) -> SimDuration {
        SimDuration::from_nanos(self.bins.iter().map(|&b| u64::from(b)).sum())
    }

    /// The first and last bin with any busy time, if any.
    pub fn active_range(&self) -> Option<(usize, usize)> {
        let first = self.bins.iter().position(|&b| b > 0)?;
        let last = self.bins.iter().rposition(|&b| b > 0)?;
        Some((first, last))
    }

    /// Busy time divided by the active span (first busy bin through last
    /// busy bin); 0 for an empty timeline. This is the utilization of
    /// the resource *while it was in use at all*, immune to dilution by
    /// an idle drain period.
    pub fn active_util(&self) -> f64 {
        let Some((first, last)) = self.active_range() else {
            return 0.0;
        };
        let span_ns = ((last - first + 1) as u64 * BIN_NS) as f64;
        self.busy_total().as_nanos() as f64 / span_ns
    }

    /// Maximum utilization over any [`PEAK_WINDOW_BINS`]-bin sliding
    /// window (shorter timelines use their full length).
    pub fn peak_util(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        let win = PEAK_WINDOW_BINS.min(self.bins.len());
        let mut sum: u64 = self.bins[..win].iter().map(|&b| u64::from(b)).sum();
        let mut best = sum;
        for i in win..self.bins.len() {
            sum += u64::from(self.bins[i]);
            sum -= u64::from(self.bins[i - win]);
            best = best.max(sum);
        }
        (best as f64 / (win as u64 * BIN_NS) as f64).min(1.0)
    }

    /// Mean utilization inside a window of absolute virtual time.
    pub fn util_between(&self, from: SimTime, to: SimTime) -> f64 {
        let (a, b) = (from.as_nanos(), to.as_nanos());
        if b <= a {
            return 0.0;
        }
        let lo = (a >> BIN_NS_SHIFT) as usize;
        let hi = ((b - 1) >> BIN_NS_SHIFT) as usize;
        let busy: u64 = self
            .bins
            .iter()
            .enumerate()
            .skip(lo)
            .take(hi + 1 - lo)
            .map(|(_, &v)| u64::from(v))
            .sum();
        (busy as f64 / (b - a) as f64).min(1.0)
    }

    /// Folds another timeline into this one bin-by-bin.
    pub fn merge(&mut self, other: &Timeline) {
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// Integrates a nonnegative level (queue depth, in-flight count) over
/// virtual time: `area = ∫ level dt`, so `area / window` is the
/// time-average occupancy — Little's `L`.
#[derive(Debug, Clone, Default)]
pub struct LevelGauge {
    level: u64,
    last: Option<SimTime>,
    area_ns: u128,
    peak: u64,
}

impl LevelGauge {
    /// Creates a gauge at level 0.
    pub fn new() -> Self {
        LevelGauge::default()
    }

    /// Sets the level as of `now`, integrating the previous level over
    /// the elapsed span. Time is assumed monotone; out-of-order calls
    /// contribute nothing.
    pub fn set(&mut self, now: SimTime, level: u64) {
        if let Some(last) = self.last {
            let dt = now.saturating_since(last);
            self.area_ns += u128::from(self.level) * u128::from(dt.as_nanos());
        }
        self.last = Some(now);
        self.level = level;
        self.peak = self.peak.max(level);
    }

    /// The current level.
    pub fn level(&self) -> u64 {
        self.level
    }

    /// The highest level ever set.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Time-average level over `window` (integrates the open interval up
    /// to `now` first if the gauge is mid-span).
    pub fn mean_over(&self, now: SimTime, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        let mut area = self.area_ns;
        if let Some(last) = self.last {
            area += u128::from(self.level) * u128::from(now.saturating_since(last).as_nanos());
        }
        area as f64 / window.as_nanos() as f64
    }
}

/// The type of a ledger resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ResourceKind {
    /// The shared broadcast medium (contended media meter real busy
    /// time; the perfect bus charges serial frame times so the
    /// utilization law has a contention-free baseline).
    Medium,
    /// A recorder's stable-storage disk.
    Disk,
    /// The recorder's per-message publishing CPU.
    RecorderCpu,
    /// A node's network-protocol CPU (send/receive/delivery costs).
    NodeCpuProto,
    /// A node's program CPU (process activations and modeled compute).
    NodeCpuProg,
    /// A node-pair guaranteed-transport channel (stop-and-wait or
    /// windowed). The dst node's inbound channels are its receive
    /// budget.
    Transport,
    /// Consensus availability: busy while the replica group is
    /// leaderless (elections in progress).
    Consensus,
}

impl ResourceKind {
    /// Stable lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ResourceKind::Medium => "medium",
            ResourceKind::Disk => "disk",
            ResourceKind::RecorderCpu => "recorder_cpu",
            ResourceKind::NodeCpuProto => "cpu_proto",
            ResourceKind::NodeCpuProg => "cpu_prog",
            ResourceKind::Transport => "transport",
            ResourceKind::Consensus => "consensus",
        }
    }

    /// Parses a label produced by [`ResourceKind::label`].
    pub fn parse(s: &str) -> Option<ResourceKind> {
        Some(match s {
            "medium" => ResourceKind::Medium,
            "disk" => ResourceKind::Disk,
            "recorder_cpu" => ResourceKind::RecorderCpu,
            "cpu_proto" => ResourceKind::NodeCpuProto,
            "cpu_prog" => ResourceKind::NodeCpuProg,
            "transport" => ResourceKind::Transport,
            "consensus" => ResourceKind::Consensus,
            _ => return None,
        })
    }
}

/// One resource's assembled usage over a run: the summary a world
/// attaches to its observability report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// Resource type.
    pub kind: ResourceKind,
    /// Display name, e.g. `cpu0:prog`, `xport 0->2`, `medium`.
    pub name: String,
    /// Primary index (node, disk, or transport source node).
    pub index: u32,
    /// Secondary index (transport destination node; 0 otherwise).
    pub peer: u32,
    /// Total busy virtual time, ms.
    pub busy_ms: f64,
    /// Report window, ms.
    pub window_ms: f64,
    /// Busy ÷ full window.
    pub util: f64,
    /// Busy ÷ active span (first busy bin through last).
    pub active_util: f64,
    /// Max utilization over a [`PEAK_WINDOW_BINS`]-bin sliding window.
    pub peak_util: f64,
    /// Time-average queued/in-flight work behind the resource.
    pub mean_queue: f64,
    /// Peak queued/in-flight work.
    pub peak_queue: u64,
    /// Completions (messages, frames, activations) the busy time covers.
    pub events: u64,
    /// Contention events (medium collisions; 0 elsewhere).
    pub contention: u64,
}

impl ResourceUsage {
    /// Builds a usage row from a timeline plus queue-gauge readings.
    #[allow(clippy::too_many_arguments)]
    pub fn from_timeline(
        kind: ResourceKind,
        name: String,
        index: u32,
        peer: u32,
        timeline: &Timeline,
        window: SimDuration,
        mean_queue: f64,
        peak_queue: u64,
        events: u64,
        contention: u64,
    ) -> Self {
        let busy = timeline.busy_total();
        let window_ms = window.as_millis_f64();
        ResourceUsage {
            kind,
            name,
            index,
            peer,
            busy_ms: busy.as_millis_f64(),
            window_ms,
            util: if window_ms > 0.0 {
                (busy.as_millis_f64() / window_ms).min(1.0)
            } else {
                0.0
            },
            active_util: timeline.active_util().min(1.0),
            peak_util: timeline.peak_util(),
            mean_queue,
            peak_queue,
            events,
            contention,
        }
    }

    /// Whether the resource ran at (or near) capacity during its loaded
    /// window: peak utilization ≥ 0.9, or — for a contended medium —
    /// a collision-to-event ratio that marks MAC-layer contention.
    pub fn saturated(&self) -> bool {
        if self.peak_util >= 0.90 {
            return true;
        }
        self.kind == ResourceKind::Medium
            && self.events > 0
            && self.contention as f64 / self.events as f64 >= 0.10
    }

    /// The collision-to-submission ratio (0 for anything but a medium).
    pub fn contention_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.contention as f64 / self.events as f64
        }
    }

    /// Whether this is a broadcast medium binding by contention: a
    /// material collision ratio *and* substantial active-window load.
    /// CSMA/CD capacity collapses well below 100% wire utilization, and
    /// the queues the contention creates live in per-station backoff
    /// state no gauge observes — so a contended medium must be
    /// recognized from its own counters, not from queue depth. The
    /// active-utilization floor keeps a lightly loaded medium (whose
    /// ack convoys still collide at a high *ratio*) from claiming a
    /// knee that a backlogged resource explains better; [`rank`] drops
    /// the floor when nothing on the board holds a real queue.
    pub fn contended_medium(&self) -> bool {
        self.kind == ResourceKind::Medium
            && self.contention_ratio() >= 0.10
            && self.active_util >= 0.30
    }
}

/// Queue depth below which a resource's backlog is noise rather than
/// evidence of a throughput wall.
const QUEUE_EVIDENCE_FLOOR: f64 = 0.5;

/// Ranks resources most-binding-first: saturated resources ahead of
/// unsaturated ones; among the saturated, a contention-bound medium
/// first (it sits causally upstream of every channel crossing it, and
/// its queues hide in per-station backoff state — downstream channel
/// queues are its symptoms), then the resource with the most work
/// queued behind it (a busy resource with an empty queue is a
/// self-paced source, not a constraint); ties and the unsaturated tail
/// fall back to peak utilization, then name for determinism.
///
/// The medium's active-utilization floor is waived when no saturated
/// resource holds a material queue: a knee with empty queues everywhere
/// is latency-bound, not throughput-bound, and the only resource that
/// inflates per-message latency without building backlog is a colliding
/// medium — every stop-and-wait round trip absorbs its deference and
/// backoff, so the wall never shows as queue depth.
pub fn rank(resources: &[ResourceUsage]) -> Vec<usize> {
    let queue_evidence = resources
        .iter()
        .any(|r| r.saturated() && r.mean_queue >= QUEUE_EVIDENCE_FLOOR);
    let contended = |r: &ResourceUsage| {
        r.contended_medium()
            || (!queue_evidence && r.kind == ResourceKind::Medium && r.contention_ratio() >= 0.10)
    };
    let mut idx: Vec<usize> = (0..resources.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ra, rb) = (&resources[a], &resources[b]);
        rb.saturated()
            .cmp(&ra.saturated())
            .then(contended(rb).cmp(&contended(ra)))
            .then(
                rb.mean_queue
                    .partial_cmp(&ra.mean_queue)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(
                rb.peak_util
                    .partial_cmp(&ra.peak_util)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(ra.name.cmp(&rb.name))
    });
    idx
}

/// The binding resource: the top-ranked *saturated* resource, or `None`
/// when nothing saturated (the run was below every resource's capacity,
/// or the knee came from an SLO unrelated to throughput).
pub fn binding(resources: &[ResourceUsage]) -> Option<usize> {
    rank(resources)
        .into_iter()
        .find(|&i| resources[i].saturated())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn timeline_bins_busy_spans() {
        let mut t = Timeline::new();
        t.add_busy(ms(0), ms(10));
        assert_eq!(t.busy_total(), SimDuration::from_millis(10));
        // A span crossing a bin boundary splits across bins.
        t.add_busy(ms(16), ms(18));
        assert!(t.bins().len() >= 2);
        assert_eq!(t.busy_total(), SimDuration::from_millis(12));
    }

    #[test]
    fn timeline_ignores_empty_and_inverted_spans() {
        let mut t = Timeline::new();
        t.add_busy(ms(5), ms(5));
        t.add_busy(ms(9), ms(4));
        assert!(t.is_empty());
        assert_eq!(t.busy_total(), SimDuration::ZERO);
        assert_eq!(t.active_range(), None);
        assert_eq!(t.active_util(), 0.0);
        assert_eq!(t.peak_util(), 0.0);
    }

    #[test]
    fn active_util_ignores_idle_drain() {
        let mut t = Timeline::new();
        // Fully busy for ~6 bins, then idle for a long drain.
        t.add_busy(SimTime::ZERO, SimTime::from_nanos(6 * BIN_NS));
        t.add_busy(
            SimTime::from_nanos(100 * BIN_NS),
            SimTime::from_nanos(100 * BIN_NS),
        );
        let window = SimDuration::from_nanos(200 * BIN_NS);
        let u = ResourceUsage::from_timeline(
            ResourceKind::Transport,
            "x".into(),
            0,
            2,
            &t,
            window,
            0.0,
            0,
            0,
            0,
        );
        assert!(u.util < 0.05, "full-window util diluted: {}", u.util);
        assert!(u.active_util > 0.99, "active util: {}", u.active_util);
        assert!(u.peak_util > 0.74, "peak util: {}", u.peak_util);
    }

    #[test]
    fn peak_util_finds_the_loaded_window() {
        let mut t = Timeline::new();
        // Busy only bins 10..14, completely.
        t.add_busy(
            SimTime::from_nanos(10 * BIN_NS),
            SimTime::from_nanos(14 * BIN_NS),
        );
        // Peak window is 8 bins; 4 fully busy bins => 0.5.
        assert!((t.peak_util() - 0.5).abs() < 1e-9, "{}", t.peak_util());
        // Fill the full 8-bin window.
        t.add_busy(
            SimTime::from_nanos(14 * BIN_NS),
            SimTime::from_nanos(18 * BIN_NS),
        );
        assert!((t.peak_util() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn util_between_windows() {
        let mut t = Timeline::new();
        t.add_busy(SimTime::ZERO, SimTime::from_nanos(BIN_NS));
        let full = t.util_between(SimTime::ZERO, SimTime::from_nanos(BIN_NS));
        assert!((full - 1.0).abs() < 1e-9);
        let half = t.util_between(SimTime::ZERO, SimTime::from_nanos(2 * BIN_NS));
        assert!((half - 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeline_merge_adds_bins() {
        let mut a = Timeline::new();
        a.add_busy(ms(0), ms(5));
        let mut b = Timeline::new();
        b.add_busy(ms(0), ms(3));
        b.add_busy(ms(40), ms(41));
        a.merge(&b);
        assert_eq!(a.busy_total(), SimDuration::from_millis(9));
    }

    #[test]
    fn level_gauge_integrates_area() {
        let mut g = LevelGauge::new();
        g.set(ms(0), 2);
        g.set(ms(10), 0); // 2 * 10ms = 20 ms·msg
        g.set(ms(20), 4);
        g.set(ms(25), 0); // 4 * 5ms = 20 ms·msg
        let mean = g.mean_over(ms(40), SimDuration::from_millis(40));
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
        assert_eq!(g.peak(), 4);
    }

    #[test]
    fn level_gauge_counts_open_interval() {
        let mut g = LevelGauge::new();
        g.set(ms(0), 1);
        let mean = g.mean_over(ms(10), SimDuration::from_millis(10));
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn binding_prefers_saturated_with_queue() {
        let mk = |kind, name: &str, peak: f64, q: f64| ResourceUsage {
            kind,
            name: name.into(),
            index: 0,
            peer: 0,
            busy_ms: 0.0,
            window_ms: 100.0,
            util: 0.0,
            active_util: peak,
            peak_util: peak,
            mean_queue: q,
            peak_queue: q as u64,
            events: 100,
            contention: 0,
        };
        // A self-paced source at 100% with no queue loses to a saturated
        // resource with real work waiting behind it.
        let rs = vec![
            mk(ResourceKind::NodeCpuProg, "cpu0:prog", 1.0, 0.01),
            mk(ResourceKind::Transport, "xport 0->2", 0.98, 12.0),
            mk(ResourceKind::Medium, "medium", 0.3, 0.0),
        ];
        assert_eq!(binding(&rs), Some(1));
        let order = rank(&rs);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn contended_medium_outranks_queued_channels() {
        let mk = |kind, name: &str, active: f64, q: f64, contention| ResourceUsage {
            kind,
            name: name.into(),
            index: 0,
            peer: 0,
            busy_ms: 0.0,
            window_ms: 100.0,
            util: 0.0,
            active_util: active,
            peak_util: 1.0,
            mean_queue: q,
            peak_queue: q as u64,
            events: 100,
            contention,
        };
        // The sink channel holds the visible queue, but the medium's
        // collision ratio + load say the wire itself is the wall: the
        // channel queue is head-of-line blocking behind deference.
        let rs = vec![
            mk(ResourceKind::Transport, "xport 0->2", 0.7, 13.0, 0),
            mk(ResourceKind::Medium, "medium", 0.48, 0.0, 44),
        ];
        assert_eq!(binding(&rs), Some(1));
        // Below the active-load floor the same collision ratio does not
        // claim the knee — the queued channel binds again.
        let rs = vec![
            mk(ResourceKind::Transport, "xport 0->2", 0.7, 13.0, 0),
            mk(ResourceKind::Medium, "medium", 0.08, 0.0, 39),
        ];
        assert_eq!(binding(&rs), Some(0));
    }

    #[test]
    fn latency_bound_knee_blames_colliding_medium() {
        let mk = |kind, name: &str, active: f64, q: f64, contention| ResourceUsage {
            kind,
            name: name.into(),
            index: 0,
            peer: 0,
            busy_ms: 0.0,
            window_ms: 100.0,
            util: 0.0,
            active_util: active,
            peak_util: 1.0,
            mean_queue: q,
            peak_queue: q as u64,
            events: 100,
            contention,
        };
        // No saturated resource holds a real queue: the knee is
        // latency-bound, and the colliding medium takes the binding
        // even at low wire utilization — deference and backoff inflate
        // every round trip without ever building a backlog.
        let rs = vec![
            mk(ResourceKind::Transport, "recv 2", 1.0, 0.08, 0),
            mk(ResourceKind::Medium, "medium", 0.04, 0.0, 16),
        ];
        assert_eq!(binding(&rs), Some(1));
        // The same board with a backlogged channel is throughput-bound:
        // the queue explains the knee, the idle medium does not.
        let rs = vec![
            mk(ResourceKind::Transport, "recv 2", 1.0, 596.0, 0),
            mk(ResourceKind::Medium, "medium", 0.04, 0.0, 16),
        ];
        assert_eq!(binding(&rs), Some(0));
    }

    #[test]
    fn binding_none_when_unsaturated() {
        let rs = vec![ResourceUsage {
            kind: ResourceKind::Medium,
            name: "medium".into(),
            index: 0,
            peer: 0,
            busy_ms: 10.0,
            window_ms: 100.0,
            util: 0.1,
            active_util: 0.2,
            peak_util: 0.3,
            mean_queue: 0.0,
            peak_queue: 0,
            events: 50,
            contention: 1,
        }];
        assert_eq!(binding(&rs), None);
    }

    #[test]
    fn contended_medium_saturates_by_collision_ratio() {
        let r = ResourceUsage {
            kind: ResourceKind::Medium,
            name: "medium".into(),
            index: 0,
            peer: 0,
            busy_ms: 10.0,
            window_ms: 100.0,
            util: 0.1,
            active_util: 0.5,
            peak_util: 0.6,
            mean_queue: 2.0,
            peak_queue: 4,
            events: 100,
            contention: 20,
        };
        assert!(r.saturated());
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [
            ResourceKind::Medium,
            ResourceKind::Disk,
            ResourceKind::RecorderCpu,
            ResourceKind::NodeCpuProto,
            ResourceKind::NodeCpuProg,
            ResourceKind::Transport,
            ResourceKind::Consensus,
        ] {
            assert_eq!(ResourceKind::parse(k.label()), Some(k));
        }
        assert_eq!(ResourceKind::parse("nope"), None);
    }
}
