//! Property tests for the sharded tier: HRW shard-map stability under
//! membership changes, and crash/recovery output-equivalence for random
//! crash schedules under random shard counts.

use proptest::prelude::*;
use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_shard::{ShardId, ShardMap, ShardedWorld};
use publishing_sim::time::SimTime;
use std::collections::BTreeSet;

fn pid_set(raw: Vec<(u32, u32)>) -> Vec<ProcessId> {
    let set: BTreeSet<ProcessId> = raw
        .into_iter()
        .map(|(n, l)| ProcessId::new(n % 16, l % 4096 + 1))
        .collect();
    set.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Adding one shard moves only the pids the new shard claims — every
    /// moved pid's new owner is the added shard — and the number moved
    /// stays within the rendezvous bound of at most ⌈|P|/N⌉ pids (the
    /// expected share is |P|/(N+1); the assertion allows the usual
    /// concentration slack on top of the ceiling).
    #[test]
    fn adding_a_shard_is_minimally_disruptive(
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 150..400),
        n in 2u32..8,
    ) {
        let pids = pid_set(raw);
        let before = ShardMap::new(n);
        let mut after = before.clone();
        after.add_shard(ShardId(n));
        let mut moved = 0usize;
        for &p in &pids {
            let old = before.owner(p).unwrap();
            let new = after.owner(p).unwrap();
            if new != old {
                prop_assert_eq!(new, ShardId(n), "a moved pid must move to the new shard");
                moved += 1;
            }
        }
        // moved ~ Binomial(|P|, 1/(N+1)): mean |P|/(N+1), plus three
        // standard deviations of slack so the bound is a real invariant
        // rather than a coin-flip on the drawn pid set.
        let expected = pids.len() as f64 / (n as f64 + 1.0);
        let bound = pids.len().div_ceil(n as usize) + (3.0 * expected.sqrt()).ceil() as usize;
        prop_assert!(
            moved <= bound,
            "moved {} of {} pids with {} shards (bound {})",
            moved, pids.len(), n, bound
        );
    }

    /// Removing one shard moves exactly the pids that shard owned —
    /// nothing else is disturbed — and their new owners are their
    /// next-ranked shards.
    #[test]
    fn removing_a_shard_moves_exactly_its_pids(
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 150..400),
        n in 3u32..9,
        victim in any::<u32>(),
    ) {
        let pids = pid_set(raw);
        let victim = ShardId(victim % n);
        let before = ShardMap::new(n);
        let mut after = before.clone();
        after.remove_shard(victim);
        for &p in &pids {
            let old = before.owner(p).unwrap();
            let new = after.owner(p).unwrap();
            if old == victim {
                prop_assert_eq!(new, before.ranked(p)[1], "falls to the next-ranked shard");
            } else {
                prop_assert_eq!(new, old, "an unaffected pid must not move");
            }
        }
    }

    /// Liveness changes never alter log placement: `owner` is a pure
    /// function of membership, so a failover (dead shard) followed by a
    /// readmission restores exactly the original placement.
    #[test]
    fn failover_and_readmission_restore_placement(
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 50..150),
        n in 2u32..8,
        victim in any::<u32>(),
    ) {
        let pids = pid_set(raw);
        let victim = ShardId(victim % n);
        let mut m = ShardMap::new(n);
        let placement: Vec<ShardId> = pids.iter().map(|&p| m.owner(p).unwrap()).collect();
        m.set_live(victim, false);
        for (&p, &was) in pids.iter().zip(&placement) {
            prop_assert_eq!(m.owner(p).unwrap(), was, "owner ignores liveness");
            let resp = m.responsible(p).unwrap();
            prop_assert!(resp != victim, "a dead shard is never responsible");
            if was != victim {
                prop_assert_eq!(resp, was, "live owners keep responsibility");
            }
        }
        m.set_live(victim, true);
        for (&p, &was) in pids.iter().zip(&placement) {
            prop_assert_eq!(m.responsible(p).unwrap(), was);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The paper's equivalence theorem holds under sharding: for a
    /// FIFO-pair workload with a random crash schedule — a process crash
    /// at a random time, optionally followed by killing the shard that
    /// is driving the recovery — the recovered run's external output is
    /// bit-identical to the crash-free run's, for any shard count.
    #[test]
    fn crash_recovery_is_output_equivalent_under_sharding(
        n_shards in 1usize..5,
        crash_at_ms in 5u64..120,
        crash_client in any::<bool>(),
        kill_responsible_shard in any::<bool>(),
    ) {
        let run = |crash: bool| -> u64 {
            let mut reg = ProgramRegistry::new();
            programs::register_standard(&mut reg);
            reg.register("slowping", || {
                let mut p = PingClient::new(20);
                p.think_ns = 3_000_000;
                Box::new(p)
            });
            let mut w = ShardedWorld::new(2, n_shards, reg);
            let server = w.spawn(1, "echo", vec![]).unwrap();
            let client = w
                .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
                .unwrap();
            if crash {
                w.run_until(SimTime::from_millis(crash_at_ms));
                let victim = if crash_client { client } else { server };
                w.crash_process(victim, "injected");
                // Killing the responsible shard needs a surviving backup.
                if kill_responsible_shard && n_shards >= 2 {
                    let resp = w.router().with_map(|m| m.responsible(victim)).unwrap();
                    w.run_until(SimTime::from_millis(crash_at_ms + 2));
                    w.crash_shard(resp.0 as usize);
                }
            }
            w.run_until(SimTime::from_secs(60));
            let out = w.outputs_of(client);
            assert_eq!(out.len(), 21, "{out:?}");
            assert_eq!(out.last().unwrap(), "done");
            w.output_fingerprint()
        };
        prop_assert_eq!(run(false), run(true));
    }
}
