//! A minimal driver wiring kernels to a LAN — the test scaffold for
//! DEMOS/MP behaviour *without* a recorder (the full published-
//! communications world, with recorder and recovery manager, lives in
//! `publishing-core`).

use crate::ids::ProcessId;
use crate::kernel::{Kernel, KernelAction};
use publishing_net::frame::Frame;
use publishing_net::lan::{Lan, LanAction};
use publishing_sim::event::Scheduler;
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// Events the harness schedules.
#[derive(Debug)]
pub enum Ev {
    /// A LAN-internal timer.
    LanTimer(u64),
    /// A kernel timer on node `.0`.
    KernelTimer(u32, u64),
    /// A frame delivery to station `.to`.
    Deliver {
        /// Receiving station (== node id).
        to: u32,
        /// The frame as received.
        frame: Frame,
        /// Recorder-gating flag from the medium.
        recorder_ok: bool,
    },
}

/// One externally visible output line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLine {
    /// When it was emitted.
    pub at: SimTime,
    /// By which process.
    pub pid: ProcessId,
    /// Per-process output sequence (for deduplicating replayed output).
    pub seq: u64,
    /// The bytes.
    pub bytes: Vec<u8>,
}

/// A kernels-plus-LAN driver.
pub struct Harness {
    /// The event queue / clock.
    pub sched: Scheduler<Ev>,
    /// The shared medium.
    pub lan: Box<dyn Lan>,
    /// Kernels by node id.
    pub kernels: BTreeMap<u32, Kernel>,
    /// Collected process outputs, in emission order.
    pub outputs: Vec<OutputLine>,
}

impl Harness {
    /// Builds a harness over `lan`; kernels attach their stations.
    pub fn new(lan: Box<dyn Lan>) -> Self {
        Harness {
            sched: Scheduler::new(),
            lan,
            kernels: BTreeMap::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a kernel, attaching its station to the LAN.
    pub fn add_kernel(&mut self, kernel: Kernel) {
        self.lan.attach(kernel.station());
        self.kernels.insert(kernel.node().0, kernel);
    }

    /// Applies kernel actions at time `now`.
    pub fn apply_kernel(&mut self, now: SimTime, node: u32, actions: Vec<KernelAction>) {
        for a in actions {
            match a {
                KernelAction::Transmit(frame) => {
                    let lan_actions = self.lan.submit(now, frame);
                    self.apply_lan(lan_actions);
                }
                KernelAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, Ev::KernelTimer(node, token));
                }
                KernelAction::Output { pid, seq, bytes } => {
                    self.outputs.push(OutputLine {
                        at: now,
                        pid,
                        seq,
                        bytes,
                    });
                }
            }
        }
    }

    fn apply_lan(&mut self, actions: Vec<LanAction>) {
        for a in actions {
            match a {
                LanAction::Deliver {
                    at,
                    to,
                    frame,
                    recorder_ok,
                } => {
                    self.sched.schedule_at(
                        at,
                        Ev::Deliver {
                            to: to.0,
                            frame,
                            recorder_ok,
                        },
                    );
                }
                LanAction::SetTimer { at, token } => {
                    self.sched.schedule_at(at, Ev::LanTimer(token));
                }
                LanAction::TxOutcome { .. } => {}
            }
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.pop() else {
            return false;
        };
        match ev {
            Ev::LanTimer(token) => {
                let actions = self.lan.timer(now, token);
                self.apply_lan(actions);
            }
            Ev::KernelTimer(node, token) => {
                if let Some(k) = self.kernels.get_mut(&node) {
                    let actions = k.on_timer(now, token);
                    self.apply_kernel(now, node, actions);
                }
            }
            Ev::Deliver {
                to,
                frame,
                recorder_ok,
            } => {
                if let Some(k) = self.kernels.get_mut(&to) {
                    let actions = k.on_frame(now, &frame, recorder_ok);
                    self.apply_kernel(now, to, actions);
                }
            }
        }
        true
    }

    /// Runs until the event queue drains or `deadline` passes.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs until fully quiescent (no pending events). Retransmission
    /// loops against a dead node never drain; use [`Harness::run_until`]
    /// for those scenarios.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Returns the output lines of one process, as strings.
    pub fn outputs_of(&self, pid: ProcessId) -> Vec<String> {
        self.outputs
            .iter()
            .filter(|o| o.pid == pid)
            .map(|o| String::from_utf8_lossy(&o.bytes).into_owned())
            .collect()
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }
}
