//! The CI perf-regression gate: diffs two `BENCH_<n>.json` snapshots.
//!
//! Usage: `bench_compare <prev.json> <new.json>`
//!
//! Compares the newer snapshot against the older one under the default
//! rule set (see `publishing_perf::compare::default_rules`): virtual
//! metrics only, with per-metric noise thresholds. Exit codes: `0` no
//! regression, `1` at least one gated metric regressed, `2` the inputs
//! are unreadable or not comparable (schema/mode mismatch, scenario
//! lost).

use publishing_perf::compare::{compare, default_rules};
use publishing_perf::snapshot::Snapshot;

fn load(path: &str) -> Snapshot {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match Snapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [prev_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <prev.json> <new.json>");
        std::process::exit(2);
    };
    let prev = load(prev_path);
    let new = load(new_path);
    let c = compare(&prev, &new, &default_rules());
    print!("{}", c.render());
    std::process::exit(c.exit_code());
}
