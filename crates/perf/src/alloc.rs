//! A counting global allocator.
//!
//! The `bench` binary installs [`CountingAlloc`] as its
//! `#[global_allocator]` so each scenario can report how many heap
//! allocations (and bytes) it cost. The counts are *host-side* metrics:
//! they vary with the standard library and allocator version, so the
//! snapshot schema files them next to wall-clock time, outside the
//! deterministic virtual section the CI gate compares.
//!
//! This is the one module in the workspace's non-vendored crates that
//! needs `unsafe`: the `GlobalAlloc` trait is unsafe by definition. The
//! implementation only counts and forwards to [`System`].
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that counts allocations and bytes.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the atomics only observe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocations (including growth reallocations) so far.
    pub allocs: u64,
    /// Bytes requested so far.
    pub bytes: u64,
}

/// Reads the counters. Meaningful deltas require the binary to have
/// installed [`CountingAlloc`]; otherwise both stay zero.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

impl AllocSnapshot {
    /// Counter growth since `earlier`.
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_delta() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 25,
            bytes: 180,
        };
        assert_eq!(
            b.since(a),
            AllocSnapshot {
                allocs: 15,
                bytes: 80
            }
        );
        assert_eq!(a.since(b), AllocSnapshot::default());
    }

    // The allocator itself is exercised by the bench binary (tests here
    // run under the default test harness allocator, where the counters
    // legitimately stay zero).
}
