//! Frame-level shard routing.
//!
//! The medium gates every process-destined frame on its recorder ack
//! slot (§6.1). Under sharding, the slot is owned not by one global
//! recorder set but by the destination pid's *capture set* — the top-R
//! live shards in HRW order. [`ShardRouter`] packages the shared
//! [`ShardMap`] plus the shard↔station directory into the closures the
//! rest of the system needs:
//!
//! - a [`RecorderRouter`] installed on the LAN, which decodes each
//!   frame's [`Wire`] payload, extracts the destination pid, and returns
//!   the stations whose acknowledgement the frame must collect;
//! - per-shard ownership filters for [`publishing_core::recorder::Recorder`]
//!   ("do I record this pid?") and responsibility filters for
//!   [`publishing_core::manager::RecoveryManager`] ("do I drive this
//!   pid's recovery?").
//!
//! Kernel-to-kernel control traffic and datagrams are deliberately
//! ungated: recovery traffic must flow even while a shard is down, and
//! the publish-before-use rule (§4.4.1) protects *process* messages.

use crate::map::{ShardId, ShardMap};
use publishing_core::recorder::PidFilter;
use publishing_demos::ids::{NodeId, ProcessId};
use publishing_demos::transport::Wire;
use publishing_net::frame::{Frame, StationId};
use publishing_net::lan::RecorderRouter;
use publishing_sim::codec::Decode;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// The shared routing state of a sharded recorder tier. Cheap to clone;
/// all clones observe the same map (cutovers are a single epoch-bumping
/// write that every installed closure sees immediately).
#[derive(Clone)]
pub struct ShardRouter {
    map: Arc<RwLock<ShardMap>>,
    stations: Arc<RwLock<BTreeMap<ShardId, StationId>>>,
    replication: usize,
}

impl ShardRouter {
    /// Wraps `map` with replication factor `replication` (the R of the
    /// capture set; clamped to at least 1).
    pub fn new(map: ShardMap, replication: usize) -> Self {
        ShardRouter {
            map: Arc::new(RwLock::new(map)),
            stations: Arc::new(RwLock::new(BTreeMap::new())),
            replication: replication.max(1),
        }
    }

    /// The replication factor R.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Registers the station a shard's recorder listens on.
    pub fn register(&self, shard: ShardId, station: StationId) {
        self.stations
            .write()
            .expect("station directory lock")
            .insert(shard, station);
    }

    /// Reads the map under the lock.
    pub fn with_map<R>(&self, f: impl FnOnce(&ShardMap) -> R) -> R {
        f(&self.map.read().expect("shard map lock"))
    }

    /// Mutates the map under the lock (membership changes, liveness).
    /// Every installed router/filter closure sees the change on its next
    /// evaluation — this *is* the cutover swap.
    pub fn with_map_mut<R>(&self, f: impl FnOnce(&mut ShardMap) -> R) -> R {
        f(&mut self.map.write().expect("shard map lock"))
    }

    /// The stations that must acknowledge a frame destined to `pid`.
    ///
    /// With no live shard at all, every *member* station is required:
    /// none can answer, so process traffic suspends until a shard
    /// returns — §3.3.4's recorder-down behaviour. Returning the empty
    /// set instead would let messages flow unrecorded, breaking the
    /// publish-before-use rule.
    pub fn required_for(&self, pid: ProcessId) -> Vec<StationId> {
        let shards = self.with_map(|m| {
            let set = m.capture_set(pid, self.replication);
            if set.is_empty() {
                m.members()
            } else {
                set
            }
        });
        let dir = self.stations.read().expect("station directory lock");
        shards.iter().filter_map(|s| dir.get(s).copied()).collect()
    }

    /// Builds the per-frame required-recorder closure for the medium.
    pub fn recorder_router(&self) -> RecorderRouter {
        let this = self.clone();
        Arc::new(move |frame: &Frame| {
            let dst = match Wire::decode_all(&frame.payload) {
                Ok(Wire::Data { msg, .. }) => msg.header.to,
                Ok(Wire::Ack { dst_pid, .. }) => dst_pid,
                // Datagrams, epoch notices, and quorum consensus traffic
                // are unguaranteed transport control and never published.
                Ok(Wire::Datagram { .. } | Wire::EpochNotice { .. } | Wire::Quorum { .. }) => {
                    return Some(Vec::new())
                }
                // Not transport traffic: fall back to the global set.
                Err(_) => return None,
            };
            if dst.is_kernel() {
                // Control traffic (including recovery) is never gated on
                // a shard: it must flow while shards are down.
                return Some(Vec::new());
            }
            Some(this.required_for(dst))
        })
    }

    /// The ownership filter for `shard`'s recorder: record a pid iff the
    /// shard sits in the pid's capture set — evaluated with the shard
    /// itself counted even while marked dead, so a restarted shard keeps
    /// recording its pids during catch-up.
    pub fn owner_filter(&self, shard: ShardId) -> PidFilter {
        let this = self.clone();
        Arc::new(move |pid: ProcessId| {
            this.with_map(|m| {
                m.capture_set_for(shard, pid, this.replication)
                    .contains(&shard)
            })
        })
    }

    /// The responsibility filter for `shard`'s recovery manager: drive a
    /// pid's recovery iff the shard is the top-ranked *live* shard for it.
    pub fn responsible_filter(&self, shard: ShardId) -> PidFilter {
        let this = self.clone();
        Arc::new(move |pid: ProcessId| this.with_map(|m| m.responsible(pid) == Some(shard)))
    }

    /// The shard that arbitrates a crashed node's physical restart: the
    /// one responsible for the node's kernel endpoint. This generalizes
    /// the §6.3 priority vector — the vector for node `n` is the HRW
    /// ranking of its kernel pid, and the highest-priority live shard
    /// acts.
    pub fn restart_leader(&self, node: NodeId) -> Option<ShardId> {
        self.with_map(|m| m.responsible(ProcessId::kernel_of(node)))
    }
}

impl core::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.with_map(|m| {
            f.debug_struct("ShardRouter")
                .field("epoch", &m.epoch())
                .field("members", &m.len())
                .field("live", &m.live().len())
                .field("replication", &self.replication)
                .finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::{Channel, MessageId};
    use publishing_demos::message::{Message, MessageHeader};
    use publishing_net::frame::Destination;
    use publishing_sim::codec::Encode;

    fn router(n: u32) -> ShardRouter {
        let r = ShardRouter::new(ShardMap::new(n), 2);
        for i in 0..n {
            r.register(ShardId(i), StationId(100 + i));
        }
        r
    }

    fn data_frame(to: ProcessId) -> Frame {
        let msg = Message {
            header: MessageHeader {
                id: MessageId {
                    sender: ProcessId::new(1, 1),
                    seq: 1,
                },
                to,
                code: 0,
                channel: Channel(0),
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: vec![1, 2, 3],
        };
        let wire = Wire::Data {
            src_node: NodeId(1),
            incarnation: 0,
            peer_epoch: 0,
            tseq: 1,
            msg,
        };
        Frame::new(StationId(1), Destination::Broadcast, wire.encode_to_vec())
    }

    #[test]
    fn process_frames_gate_on_capture_set_stations() {
        let r = router(4);
        let pid = ProcessId::new(2, 7);
        let route = r.recorder_router();
        let req = route(&data_frame(pid)).expect("routed");
        let want: Vec<StationId> = r.with_map(|m| {
            m.capture_set(pid, 2)
                .iter()
                .map(|s| StationId(100 + s.0))
                .collect()
        });
        assert_eq!(req.len(), 2);
        assert_eq!(req, want);
    }

    #[test]
    fn kernel_frames_and_garbage_are_not_shard_gated() {
        let r = router(3);
        let route = r.recorder_router();
        let kernel = data_frame(ProcessId::kernel_of(NodeId(2)));
        assert_eq!(route(&kernel), Some(Vec::new()));
        let garbage = Frame::new(StationId(1), Destination::Broadcast, vec![0xFF, 0xFF]);
        assert_eq!(route(&garbage), None, "falls back to the global set");
    }

    #[test]
    fn cutover_changes_routing_through_installed_closures() {
        let r = router(2);
        let pid = ProcessId::new(3, 5);
        let route = r.recorder_router();
        let before = route(&data_frame(pid)).unwrap();
        r.register(ShardId(2), StationId(102));
        r.with_map_mut(|m| m.add_shard(ShardId(2)));
        let after = route(&data_frame(pid)).unwrap();
        let want: Vec<StationId> = r.with_map(|m| {
            m.capture_set(pid, 2)
                .iter()
                .map(|s| StationId(100 + s.0))
                .collect()
        });
        assert_eq!(after, want);
        // With only two shards before, both were required; the third
        // shard can displace one of them.
        assert_eq!(before.len(), 2);
    }

    #[test]
    fn filters_partition_ownership_and_responsibility() {
        let r = router(3);
        let owner0 = r.owner_filter(ShardId(0));
        let resp: Vec<PidFilter> = (0..3).map(|i| r.responsible_filter(ShardId(i))).collect();
        let mut owned0 = 0;
        for l in 1..=60u32 {
            let pid = ProcessId::new(l % 5, l);
            // Exactly one shard is responsible for every pid.
            assert_eq!(resp.iter().filter(|f| f(pid)).count(), 1);
            if owner0(pid) {
                owned0 += 1;
            }
        }
        // R=2 of 3 shards: shard 0 captures roughly 2/3 of pids.
        assert!(owned0 > 20 && owned0 < 60, "owned {owned0}/60");
    }

    #[test]
    fn no_live_shard_suspends_traffic_instead_of_ungating() {
        // §3.3.4: recorder down ⇒ traffic stops. With every shard dead,
        // process frames must be gated on (unanswerable) stations, not
        // waved through unrecorded.
        let r = router(2);
        let pid = ProcessId::new(2, 7);
        let route = r.recorder_router();
        r.with_map_mut(|m| {
            m.set_live(ShardId(0), false);
            m.set_live(ShardId(1), false);
        });
        let req = route(&data_frame(pid)).expect("routed");
        assert_eq!(req, vec![StationId(100), StationId(101)]);
    }

    #[test]
    fn restart_leader_follows_liveness() {
        let r = router(3);
        let node = NodeId(4);
        let leader = r.restart_leader(node).unwrap();
        r.with_map_mut(|m| m.set_live(leader, false));
        let backup = r.restart_leader(node).unwrap();
        assert_ne!(leader, backup);
    }
}
