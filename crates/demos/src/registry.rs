//! The program registry: named binary images (§3.3.1).
//!
//! "The first checkpoint for a process is the binary image from which the
//! process is created. When a new process is created, the recorder is told
//! … the name of this binary image." The registry maps those names to
//! factories producing a fresh instance of the program — the recovery
//! manager's way of reloading a process from its initial state.

use crate::program::Program;
use std::collections::BTreeMap;
use std::sync::Arc;

type Factory = dyn Fn() -> Box<dyn Program> + Send + Sync;

/// Errors from registry lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProgram(pub String);

impl core::fmt::Display for UnknownProgram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown program image: {:?}", self.0)
    }
}

impl std::error::Error for UnknownProgram {}

/// A shared, immutable-after-build registry of program images.
#[derive(Clone, Default)]
pub struct ProgramRegistry {
    factories: BTreeMap<String, Arc<Factory>>,
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ProgramRegistry::default()
    }

    /// Registers a program image under `name`, replacing any previous one.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn Program> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Instantiates a fresh copy of the named program.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] if no image is registered under `name`.
    pub fn instantiate(&self, name: &str) -> Result<Box<dyn Program>, UnknownProgram> {
        match self.factories.get(name) {
            Some(f) => Ok(f()),
            None => Err(UnknownProgram(name.to_string())),
        }
    }

    /// Returns `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Lists the registered image names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(|s| s.as_str())
    }
}

impl core::fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProgramRegistry")
            .field("images", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Ctx, Received};
    use publishing_sim::codec::CodecError;

    struct Nop;
    impl Program for Nop {
        fn on_start(&mut self, _: &mut Ctx<'_>) {}
        fn on_message(&mut self, _: &mut Ctx<'_>, _: Received) {}
        fn snapshot(&self) -> Vec<u8> {
            vec![7]
        }
        fn restore(&mut self, _: &[u8]) -> Result<(), CodecError> {
            Ok(())
        }
    }

    #[test]
    fn register_and_instantiate() {
        let mut r = ProgramRegistry::new();
        r.register("nop", || Box::new(Nop));
        assert!(r.contains("nop"));
        let p = r.instantiate("nop").unwrap();
        assert_eq!(p.snapshot(), vec![7]);
    }

    #[test]
    fn unknown_program_errors() {
        let r = ProgramRegistry::new();
        let err = match r.instantiate("ghost") {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert_eq!(err, UnknownProgram("ghost".into()));
    }

    #[test]
    fn names_are_sorted() {
        let mut r = ProgramRegistry::new();
        r.register("zeta", || Box::new(Nop));
        r.register("alpha", || Box::new(Nop));
        let names: Vec<&str> = r.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn clone_shares_factories() {
        let mut r = ProgramRegistry::new();
        r.register("nop", || Box::new(Nop));
        let r2 = r.clone();
        assert!(r2.contains("nop"));
    }
}
