//! Explicit binary encoding for checkpoints and wire messages.
//!
//! Checkpoints and replayed messages must decode to *exactly* the state
//! that was encoded — recovery correctness depends on it — so we use a
//! small, fully explicit little-endian codec rather than a derive-based
//! serializer. Every field written is a deliberate decision, which makes
//! the determinism audit (what exactly is part of process state?) easy.

use core::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEnd {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A length prefix exceeded the configured sanity bound.
    LengthTooLarge {
        /// The decoded length.
        len: u64,
        /// The maximum allowed.
        max: u64,
    },
    /// An enum tag had no corresponding variant.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// Bytes left over.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::LengthTooLarge { len, max } => {
                write!(f, "length prefix {len} exceeds bound {max}")
            }
            CodecError::InvalidTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum accepted collection/byte-string length (16 MiB); a decoded
/// length above this is certainly corruption, not data.
pub const MAX_LEN: u64 = 16 * 1024 * 1024;

/// An append-only byte sink for encoding.
#[derive(Default, Debug, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an f64 by its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Writes an `Option` as a presence byte plus the value.
    pub fn option<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        match v {
            None => {
                self.u8(0);
            }
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
        self
    }

    /// Writes a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.u64(items.len() as u64);
        for it in items {
            f(self, it);
        }
        self
    }
}

/// A cursor over encoded bytes for decoding.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Returns the number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any nonzero byte is `true`.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    /// Reads an f64 from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(CodecError::LengthTooLarge { len, max: MAX_LEN });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.len_prefix()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads an `Option` written by [`Encoder::option`].
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::InvalidTag {
                what: "option",
                tag,
            }),
        }
    }

    /// Reads a length-prefixed sequence written by [`Encoder::seq`].
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// A type with a canonical binary encoding.
pub trait Encode {
    /// Appends this value's encoding to `e`.
    fn encode(&self, e: &mut Encoder);

    /// Encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }
}

/// A type decodable from its canonical binary encoding.
pub trait Decode: Sized {
    /// Decodes one value, advancing the cursor.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must occupy the entire input.
    fn decode_all(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d)?;
        d.finish()?;
        Ok(v)
    }
}

impl Encode for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.u64(*self);
    }
}

impl Decode for u64 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.u64()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, e: &mut Encoder) {
        e.bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.bytes()
    }
}

impl Encode for String {
    fn encode(&self, e: &mut Encoder) {
        e.str(self);
    }
}

impl Decode for String {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        d.str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7)
            .bool(true)
            .u16(0xBEEF)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .i64(-42)
            .f64(3.5)
            .str("hello")
            .bytes(&[1, 2, 3]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.5);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn option_roundtrip() {
        let mut e = Encoder::new();
        e.option(Some(&5u64), |e, v| {
            e.u64(*v);
        });
        e.option::<u64>(None, |e, v| {
            e.u64(*v);
        });
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.option(|d| d.u64()).unwrap(), Some(5));
        assert_eq!(d.option(|d| d.u64()).unwrap(), None);
    }

    #[test]
    fn seq_roundtrip() {
        let xs = vec![10u64, 20, 30];
        let mut e = Encoder::new();
        e.seq(&xs, |e, v| {
            e.u64(*v);
        });
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.seq(|d| d.u64()).unwrap(), xs);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut e = Encoder::new();
        e.u64(99);
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..5]);
        assert!(matches!(d.u64(), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut e = Encoder::new();
        e.u64(MAX_LEN + 1);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.bytes(), Err(CodecError::LengthTooLarge { .. })));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let buf = [9u8];
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            d.option(|d| d.u8()),
            Err(CodecError::InvalidTag { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 9];
        let mut d = Decoder::new(&buf);
        let _ = d.u64().unwrap();
        assert!(matches!(
            d.finish(),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn decode_all_roundtrip_via_traits() {
        let v: Vec<u8> = vec![4, 5, 6];
        let buf = v.encode_to_vec();
        assert_eq!(Vec::<u8>::decode_all(&buf).unwrap(), v);
        let s = "publishing".to_string();
        assert_eq!(String::decode_all(&s.encode_to_vec()).unwrap(), s);
        assert_eq!(u64::decode_all(&7u64.encode_to_vec()).unwrap(), 7);
    }

    #[test]
    fn nan_f64_roundtrips_bit_exactly() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut e = Encoder::new();
        e.f64(nan);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.f64().unwrap().to_bits(), nan.to_bits());
    }
}
