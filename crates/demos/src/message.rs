//! Messages: header, optional passed link, and body (§4.2.2.3).

use crate::ids::{Channel, MessageId, ProcessId};
use crate::link::Link;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// A message header. Code and channel come from the link the message was
/// sent over; the ids support duplicate suppression and publishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageHeader {
    /// Network-unique message id (sender + per-sender sequence).
    pub id: MessageId,
    /// Destination process.
    pub to: ProcessId,
    /// The sending link's code.
    pub code: u32,
    /// The sending link's channel.
    pub channel: Channel,
    /// Sent over a DELIVERTOKERNEL link: the destination node's kernel
    /// process receives it instead of the destination process (§4.4.3).
    pub deliver_to_kernel: bool,
}

impl MessageHeader {
    /// Returns the sending process (from the message id).
    pub fn from(&self) -> ProcessId {
        self.id.sender
    }
}

impl Encode for MessageHeader {
    fn encode(&self, e: &mut Encoder) {
        self.id.encode(e);
        self.to.encode(e);
        e.u32(self.code)
            .u8(self.channel.0)
            .bool(self.deliver_to_kernel);
    }
}

impl Decode for MessageHeader {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = MessageId::decode(d)?;
        let to = ProcessId::decode(d)?;
        let code = d.u32()?;
        let channel = Channel(d.u8()?);
        let deliver_to_kernel = d.bool()?;
        Ok(MessageHeader {
            id,
            to,
            code,
            channel,
            deliver_to_kernel,
        })
    }
}

/// A complete message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Routing and identification fields.
    pub header: MessageHeader,
    /// At most one link may ride in a message (§4.2.2.3); it was removed
    /// from the sender's table and is installed in the receiver's on read.
    pub passed_link: Option<Link>,
    /// Uninterpreted body; "it is left to the communicating processes to
    /// agree as to the contents and format".
    pub body: Vec<u8>,
}

impl Message {
    /// Returns the message's size in bytes as carried on the wire
    /// (header fields + optional link + body), for timing models.
    pub fn wire_len(&self) -> usize {
        let header = 8 + 8 + 8 + 4 + 1 + 1; // ids, code, channel, flag
        let link = if self.passed_link.is_some() { 14 } else { 1 };
        header + link + 8 + self.body.len()
    }
}

impl Encode for Message {
    fn encode(&self, e: &mut Encoder) {
        self.header.encode(e);
        e.option(self.passed_link.as_ref(), |e, l| l.encode(e));
        e.bytes(&self.body);
    }
}

impl Decode for Message {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let header = MessageHeader::decode(d)?;
        let passed_link = d.option(Link::decode)?;
        let body = d.bytes()?;
        Ok(Message {
            header,
            passed_link,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn msg() -> Message {
        Message {
            header: MessageHeader {
                id: MessageId {
                    sender: ProcessId::new(1, 5),
                    seq: 7,
                },
                to: ProcessId::new(2, 3),
                code: 42,
                channel: Channel(9),
                deliver_to_kernel: false,
            },
            passed_link: Some(Link::to(ProcessId::new(1, 5), Channel(1), 11)),
            body: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn codec_roundtrip() {
        let m = msg();
        let buf = m.encode_to_vec();
        assert_eq!(Message::decode_all(&buf).unwrap(), m);
    }

    #[test]
    fn codec_roundtrip_without_link() {
        let mut m = msg();
        m.passed_link = None;
        let buf = m.encode_to_vec();
        assert_eq!(Message::decode_all(&buf).unwrap(), m);
    }

    #[test]
    fn from_is_id_sender() {
        assert_eq!(
            msg().header.from(),
            ProcessId {
                node: NodeId(1),
                local: 5
            }
        );
    }

    #[test]
    fn wire_len_tracks_body_and_link() {
        let with = msg();
        let mut without = msg();
        without.passed_link = None;
        assert!(with.wire_len() > without.wire_len());
        let mut big = msg();
        big.body = vec![0; 1024];
        assert_eq!(big.wire_len() - with.wire_len(), 1020);
    }

    #[test]
    fn truncated_message_fails() {
        let buf = msg().encode_to_vec();
        assert!(Message::decode_all(&buf[..buf.len() - 1]).is_err());
    }
}
