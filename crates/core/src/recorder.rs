//! The passive recorder (§3.3, §4.5).
//!
//! The recorder overhears every frame on the network. Captured messages
//! sit in a pending buffer until the destination's transport
//! acknowledgement is observed — "it is possible to discover the order in
//! which messages are received at the receiving node by tracing the
//! acknowledgements" (§4.4.1) — at which point the message is assigned
//! its arrival sequence and appended to the stable store. Read-order
//! notices (§4.4.2) pin deviations between arrival order and read order;
//! the *replay stream* for a process is arrival order corrected by pins.
//!
//! Each database entry holds what §4.5 lists: the ids of messages
//! received since the last checkpoint, the latest checkpoint, the highest
//! sequence acknowledged per destination (for resend suppression), and
//! the recovering flag. The entry is a summary of what is on disk: after
//! a recorder crash, [`Recorder::restart`] rebuilds it from the store and
//! the battery-backed buffer (§3.3.4).

use crate::recovery_time::RecoveryEstimator;
use publishing_demos::ids::{MessageId, NodeId, ProcessId};
use publishing_demos::message::Message;
use publishing_demos::protocol::{CheckpointDeposit, ReadOrderNotice};
use publishing_obs::span::{MsgKey, SpanLog, Stage};
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use publishing_sim::ledger::Timeline;
use publishing_sim::stats::{Counter, LinearHistogram};
use publishing_sim::time::{SimDuration, SimTime};
use publishing_stable::disk::DiskParams;
use publishing_stable::store::{Checkpoint, RecordKey, StableStore, StoreEvent, StoreIo};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Recorder-side per-message CPU cost, §5.2.2's three operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishCost {
    /// The unoptimized DEMOS/MP kernel path: 57 ms per message.
    FullStack,
    /// After inlining the hot path: 12 ms per message.
    Inlined,
    /// Intercepting at the media layer: the 0.8 ms design goal.
    MediaLayer,
}

impl PublishCost {
    /// CPU charged per captured message.
    pub fn per_message(self) -> SimDuration {
        match self {
            PublishCost::FullStack => SimDuration::from_millis(57),
            PublishCost::Inlined => SimDuration::from_millis(12),
            PublishCost::MediaLayer => SimDuration::from_micros(800),
        }
    }
}

/// Recorder-internal checkpoint metadata wrapped around the kernel's
/// process image before it goes to stable storage, so the database can be
/// rebuilt from disk alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CheckpointMeta {
    program_name: String,
    /// Creation-time links (initial state parameters).
    initial_links: Vec<publishing_demos::link::Link>,
    /// read_count at the checkpoint (replay floor).
    read_floor: u64,
    /// Read-order pins at or above the floor.
    pins: Vec<(u64, MessageId)>,
    /// Arrival seqs consumed before the checkpoint but above the
    /// conservative floor (out-of-order reads not yet GC-able by range).
    consumed_deltas: Vec<u64>,
    /// The kernel's encoded ProcessImage (`None` for the initial
    /// binary-image checkpoint of §3.3.1).
    image: Option<Vec<u8>>,
}

impl Encode for CheckpointMeta {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.program_name);
        e.seq(&self.initial_links, |e, l| l.encode(e));
        e.u64(self.read_floor);
        e.seq(&self.pins, |e, (idx, id)| {
            e.u64(*idx);
            id.encode(e);
        });
        e.seq(&self.consumed_deltas, |e, s| {
            e.u64(*s);
        });
        e.option(self.image.as_ref(), |e, i| {
            e.bytes(i);
        });
    }
}

impl Decode for CheckpointMeta {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let program_name = d.str()?;
        let initial_links = d.seq(publishing_demos::link::Link::decode)?;
        let read_floor = d.u64()?;
        let pins = d.seq(|d| {
            let idx = d.u64()?;
            let id = MessageId::decode(d)?;
            Ok((idx, id))
        })?;
        let consumed_deltas = d.seq(|d| d.u64())?;
        let image = d.option(|d| d.bytes())?;
        Ok(CheckpointMeta {
            program_name,
            initial_links,
            read_floor,
            pins,
            consumed_deltas,
            image,
        })
    }
}

/// One §4.5 database entry.
#[derive(Debug)]
pub struct ProcessEntry {
    /// The process.
    pub pid: ProcessId,
    /// Binary image name (from the creation notice).
    pub program_name: String,
    /// Creation-time links (from the creation notice).
    pub initial_links: Vec<publishing_demos::link::Link>,
    /// Unconsumed messages in arrival (ack) order: (arrival seq, id).
    pub arrivals: Vec<(u64, MessageId)>,
    /// Read-order pins at absolute read indices (§4.4.2 notices).
    pub pins: BTreeMap<u64, MessageId>,
    /// read_count at the latest durable checkpoint.
    pub read_floor: u64,
    /// Next arrival sequence to assign.
    pub next_arrival_seq: u64,
    /// Highest acknowledged sequence this process sent, per destination —
    /// the §4.7 resend-suppression watermarks.
    pub last_sent: BTreeMap<ProcessId, u64>,
    /// Whether recovery is in progress.
    pub recovering: bool,
    /// §6.6.1: whether this process is recoverable at all; messages for
    /// unrecoverable processes are not published.
    pub recoverable: bool,
    /// Latest durable kernel image (None = initial state only).
    pub checkpoint_image: Option<Vec<u8>>,
    /// Recovery-time accumulators for the checkpoint policy.
    pub estimator: RecoveryEstimator,
    /// Bytes of published messages since the last checkpoint (drives the
    /// §5.1 storage-exceeds-checkpoint policy).
    pub bytes_since_checkpoint: u64,
}

impl ProcessEntry {
    fn new(now: SimTime, pid: ProcessId, program_name: String) -> Self {
        ProcessEntry {
            pid,
            program_name,
            initial_links: Vec::new(),
            arrivals: Vec::new(),
            pins: BTreeMap::new(),
            read_floor: 0,
            next_arrival_seq: 0,
            last_sent: BTreeMap::new(),
            recovering: false,
            recoverable: true,
            checkpoint_image: None,
            estimator: RecoveryEstimator::new(now, 1),
            bytes_since_checkpoint: 0,
        }
    }
}

/// Counters the recorder maintains.
#[derive(Debug, Clone)]
pub struct RecorderStats {
    /// Data frames captured into the pending buffer.
    pub captured: Counter,
    /// Messages sequenced (ack observed) and appended to the store.
    pub published: Counter,
    /// Encoded bytes of every sequenced (published) message.
    pub bytes_published: Counter,
    /// Duplicate data/ack observations ignored.
    pub duplicates: Counter,
    /// Acks for messages never captured (lost pending state).
    pub orphan_acks: Counter,
    /// Read-order notices applied.
    pub notices: Counter,
    /// Checkpoints made durable.
    pub checkpoints: Counter,
    /// CPU charged for publishing work.
    pub cpu_used: SimDuration,
    /// Pending-buffer depth sampled after every capture: the queue-depth
    /// distribution the perf observatory summarizes (p50/p95/p99/max).
    pub depth_hist: LinearHistogram,
}

impl Default for RecorderStats {
    fn default() -> Self {
        RecorderStats {
            captured: Counter::default(),
            published: Counter::default(),
            bytes_published: Counter::default(),
            duplicates: Counter::default(),
            orphan_acks: Counter::default(),
            notices: Counter::default(),
            checkpoints: Counter::default(),
            cpu_used: SimDuration::ZERO,
            // One bucket per depth up to 256; deeper samples clamp into
            // the top bucket and the quantile clamps to the observed max.
            depth_hist: LinearHistogram::new(0.0, 256.0, 256),
        }
    }
}

struct PendingDeposit {
    meta: CheckpointMeta,
    consumed: Vec<(u64, MessageId)>,
    pages: u64,
}

/// A predicate over process ids: which destinations this recorder is
/// responsible for. A sharded recorder tier installs one per shard so
/// each recorder tracks only the processes its shard owns.
pub type PidFilter = std::sync::Arc<dyn Fn(ProcessId) -> bool + Send + Sync>;

/// A portable snapshot of one process's published state — the latest
/// durable checkpoint plus every surviving log record and the database
/// entry that summarizes them. Produced by [`Recorder::export_process`]
/// during shard rebalancing and consumed by [`Recorder::import_process`]
/// on the destination shard.
#[derive(Debug, Clone)]
pub struct ProcessExport {
    /// The process being handed off.
    pub pid: ProcessId,
    /// Latest durable checkpoint (pid, floor, metadata blob).
    pub checkpoint: Option<Checkpoint>,
    /// Surviving log records in seq order.
    pub records: Vec<(RecordKey, Vec<u8>)>,
    /// Captured-but-unacknowledged messages for the process, in capture
    /// order (the battery-backed buffer's slice for this destination).
    pub pending: Vec<Message>,
    /// Unconsumed arrivals: (arrival seq, id).
    pub arrivals: Vec<(u64, MessageId)>,
    /// Read-order pins at absolute read indices.
    pub pins: Vec<(u64, MessageId)>,
    /// read_count at the latest durable checkpoint.
    pub read_floor: u64,
    /// Next arrival sequence to assign.
    pub next_arrival_seq: u64,
    /// §4.7 resend-suppression watermarks.
    pub last_sent: Vec<(ProcessId, u64)>,
    /// Whether the process participates in recovery at all.
    pub recoverable: bool,
    /// Binary image name.
    pub program_name: String,
    /// Creation-time links.
    pub initial_links: Vec<publishing_demos::link::Link>,
    /// Latest durable kernel image.
    pub checkpoint_image: Option<Vec<u8>>,
}

/// The passive recorder: capture pipeline, process database, and stable
/// store.
pub struct Recorder {
    node: NodeId,
    store: StableStore,
    db: BTreeMap<ProcessId, ProcessEntry>,
    /// Captured but not yet acknowledged, in capture order. This buffer is
    /// battery-backed (§3.3.4): a destination may have used and
    /// acknowledged a frame in the instant before a recorder crash, and
    /// "no messages or checkpoints can be lost" — restart drains it into
    /// the streams.
    pending: BTreeMap<u64, Message>,
    pending_ids: HashMap<MessageId, u64>,
    next_capture: u64,
    /// Ids already sequenced (volatile; rebuilt from store on restart).
    sequenced: BTreeSet<MessageId>,
    pending_deposits: HashMap<ProcessId, PendingDeposit>,
    drained_ios: Vec<StoreIo>,
    restart_number: u64,
    publish_cost: PublishCost,
    /// When set, the recorder only tracks processes the filter accepts
    /// (a shard's slice of the destination space). `None` = track all.
    owner: Option<PidFilter>,
    /// Quorum mode: arrival sequences are assigned by a replicated log
    /// ([`Recorder::apply_sequenced_at`]), never locally — restart must
    /// not drain the pending buffer into self-assigned sequences.
    external_sequencing: bool,
    stats: RecorderStats,
    spans: SpanLog,
    cpu_busy_until: SimTime,
    cpu_timeline: Timeline,
}

impl Recorder {
    /// Creates a recorder on `node` with `n_disks` disks.
    pub fn new(node: NodeId, disk: DiskParams, n_disks: usize, publish_cost: PublishCost) -> Self {
        Recorder {
            node,
            store: StableStore::new(disk, n_disks),
            db: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_ids: HashMap::new(),
            next_capture: 0,
            sequenced: BTreeSet::new(),
            pending_deposits: HashMap::new(),
            drained_ios: Vec::new(),
            restart_number: 0,
            publish_cost,
            owner: None,
            external_sequencing: false,
            stats: RecorderStats::default(),
            spans: SpanLog::default(),
            cpu_busy_until: SimTime::ZERO,
            cpu_timeline: Timeline::new(),
        }
    }

    /// Switches the recorder into quorum mode: arrival sequences are
    /// assigned by the replicated log via
    /// [`Recorder::apply_sequenced_at`], and restart leaves the pending
    /// buffer for the log to publish rather than self-sequencing it.
    pub fn set_external_sequencing(&mut self, on: bool) {
        self.external_sequencing = on;
    }

    /// Installs (or clears) the ownership filter. A sharded tier sets
    /// this to "pid is in my shard's capture set"; the recorder then
    /// ignores traffic, notices, and deposits for other shards' processes.
    pub fn set_ownership_filter(&mut self, owner: Option<PidFilter>) {
        self.owner = owner;
    }

    fn owns(&self, pid: ProcessId) -> bool {
        self.owner.as_ref().map(|f| f(pid)).unwrap_or(true)
    }

    /// Returns the recorder's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Returns the recorder counters.
    pub fn stats(&self) -> &RecorderStats {
        &self.stats
    }

    /// Returns the recorder's message-lifecycle span log (capture,
    /// sequence, and checkpoint events). Like the stats, spans survive a
    /// recorder crash: they model an external observer.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Mutable access to the span log, for consensus-layer events the
    /// recorder core does not see (election wins) and for capacity /
    /// sampling reconfiguration. Spans never influence behavior, so
    /// callers cannot perturb the run through this.
    pub fn spans_mut(&mut self) -> &mut SpanLog {
        &mut self.spans
    }

    /// Re-bounds the span ring (0 = fingerprint-only mode; the
    /// `obs_overhead` bench prices exactly this switch).
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.spans.set_capacity(capacity);
    }

    /// Returns the number of captured-but-unsequenced messages in the
    /// battery-backed pending buffer (the shard-health queue depth).
    pub fn pending_depth(&self) -> usize {
        self.pending.len()
    }

    /// Returns the store (for utilization reporting).
    pub fn store(&self) -> &StableStore {
        &self.store
    }

    /// Applies a disk-fault regime (chaos injection) to every disk in
    /// the store. All-default faults turn injection off again.
    pub fn set_disk_faults(&mut self, faults: publishing_stable::disk::DiskFaults) {
        self.store.set_disk_faults(faults);
    }

    /// Returns the current §3.4 restart number.
    pub fn restart_number(&self) -> u64 {
        self.restart_number
    }

    /// Looks up a database entry.
    pub fn entry(&self, pid: ProcessId) -> Option<&ProcessEntry> {
        self.db.get(&pid)
    }

    /// Iterates known process ids.
    pub fn known_pids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.db.keys().copied()
    }

    /// Marks a process as (not) recovering.
    pub fn set_recovering(&mut self, pid: ProcessId, recovering: bool) {
        if let Some(e) = self.db.get_mut(&pid) {
            e.recovering = recovering;
        }
    }

    /// Charges the per-message publishing CPU as a serially occupying
    /// busy span, so the ledger can see when the recorder's processor —
    /// not just how much of it — was consumed.
    fn charge(&mut self, now: SimTime) {
        let c = self.publish_cost.per_message();
        self.stats.cpu_used += c;
        let start = self.cpu_busy_until.max(now);
        self.cpu_busy_until = start + c;
        self.cpu_timeline.add_busy(start, self.cpu_busy_until);
    }

    /// Busy timeline of the recorder's publishing CPU.
    pub fn cpu_timeline(&self) -> &Timeline {
        &self.cpu_timeline
    }

    /// Captures a process-destined data message seen on the wire.
    pub fn on_data(&mut self, now: SimTime, msg: &Message) {
        let id = msg.header.id;
        if msg.header.to.is_kernel() || !self.owns(msg.header.to) {
            return;
        }
        if let Some(e) = self.db.get(&msg.header.to) {
            if !e.recoverable {
                return;
            }
        }
        if self.sequenced.contains(&id) || self.pending_ids.contains_key(&id) {
            self.stats.duplicates.inc();
            return;
        }
        self.charge(now);
        self.stats.captured.inc();
        let cap = self.next_capture;
        self.next_capture += 1;
        self.spans
            .record(now, id.into(), Stage::Capture, msg.header.to.as_u64(), cap);
        self.pending.insert(cap, msg.clone());
        self.pending_ids.insert(id, cap);
        self.stats.depth_hist.record(self.pending.len() as f64);
    }

    /// Handles an observed destination acknowledgement: assigns the
    /// message its arrival sequence and publishes it.
    pub fn on_ack(&mut self, now: SimTime, msg_id: MessageId, dst_pid: ProcessId) -> Vec<StoreIo> {
        if dst_pid.is_kernel() || !self.owns(dst_pid) {
            return Vec::new();
        }
        if self.sequenced.contains(&msg_id) {
            self.stats.duplicates.inc();
            return Vec::new();
        }
        let Some(cap) = self.pending_ids.remove(&msg_id) else {
            self.stats.orphan_acks.inc();
            return Vec::new();
        };
        let msg = self.pending.remove(&cap).expect("pending indexed");
        self.sequence_message(now, msg)
    }

    /// Looks up a captured-but-unsequenced message by id (the quorum
    /// leader reads these out of the battery-backed buffer to build
    /// replication proposals).
    pub fn pending_message(&self, id: MessageId) -> Option<&Message> {
        self.pending_ids
            .get(&id)
            .and_then(|cap| self.pending.get(cap))
    }

    /// Whether a message id has already been sequenced (published).
    pub fn is_sequenced(&self, id: MessageId) -> bool {
        self.sequenced.contains(&id)
    }

    /// Next arrival sequence the destination would be assigned (0 for an
    /// unknown process). Quorum leaders seed their proposal counters from
    /// this after taking office.
    pub fn next_arrival_seq(&self, pid: ProcessId) -> u64 {
        self.db.get(&pid).map(|e| e.next_arrival_seq).unwrap_or(0)
    }

    /// Publishes a message at a *fixed* arrival sequence decided by the
    /// replicated log (quorum commit path). Idempotent: re-applying an
    /// entry after a crash, or applying one whose store record already
    /// survived, is a no-op — so replaying a committed prefix over a
    /// rebuilt recorder can fill durability gaps without ever double-
    /// assigning a sequence.
    pub fn apply_sequenced_at(&mut self, now: SimTime, seq: u64, msg: &Message) -> Vec<StoreIo> {
        let id = msg.header.id;
        let dst = msg.header.to;
        if dst.is_kernel() || !self.owns(dst) {
            return Vec::new();
        }
        if self.sequenced.contains(&id) {
            self.stats.duplicates.inc();
            return Vec::new();
        }
        if let Some(e) = self.db.get(&dst) {
            if e.arrivals.iter().any(|&(s, _)| s == seq) {
                // The slot is already occupied (rebuilt from a durable
                // record whose id matches under log matching).
                self.stats.duplicates.inc();
                return Vec::new();
            }
        }
        if let Some(cap) = self.pending_ids.remove(&id) {
            self.pending.remove(&cap);
        }
        self.sequence_message_at(now, Some(seq), msg.clone())
    }

    /// Assigns the next arrival sequence for the message's destination
    /// and appends it to the stable store.
    fn sequence_message(&mut self, now: SimTime, msg: Message) -> Vec<StoreIo> {
        self.sequence_message_at(now, None, msg)
    }

    /// Publishes `msg` at `fixed_seq` (quorum commit) or at the entry's
    /// next arrival sequence (standalone recorder).
    fn sequence_message_at(
        &mut self,
        now: SimTime,
        fixed_seq: Option<u64>,
        msg: Message,
    ) -> Vec<StoreIo> {
        let msg_id = msg.header.id;
        let dst_pid = msg.header.to;
        self.sequenced.insert(msg_id);
        let bytes = msg.encode_to_vec();
        let len = bytes.len();
        let entry = self
            .db
            .entry(dst_pid)
            .or_insert_with(|| ProcessEntry::new(now, dst_pid, String::new()));
        let seq = match fixed_seq {
            Some(s) => {
                entry.next_arrival_seq = entry.next_arrival_seq.max(s + 1);
                s
            }
            None => {
                let s = entry.next_arrival_seq;
                entry.next_arrival_seq += 1;
                s
            }
        };
        // Keep arrivals sorted by seq: a quorum re-apply can commit a seq
        // below records already rebuilt from the durable store.
        match entry.arrivals.binary_search_by_key(&seq, |&(s, _)| s) {
            Ok(_) => {}
            Err(pos) => entry.arrivals.insert(pos, (seq, msg_id)),
        }
        entry.estimator.on_message(len);
        entry.bytes_since_checkpoint += len as u64;
        self.spans
            .record(now, msg_id.into(), Stage::Sequence, dst_pid.as_u64(), seq);
        // Track the sender's delivered watermark toward this destination.
        // Under sharding the sender may belong to another shard; skip it
        // rather than grow an entry we don't own. Under-suppression is the
        // safe direction: receivers deduplicate resent messages.
        let sender = msg_id.sender;
        if !sender.is_kernel() && self.owns(sender) {
            let se = self
                .db
                .entry(sender)
                .or_insert_with(|| ProcessEntry::new(now, sender, String::new()));
            let w = se.last_sent.entry(dst_pid).or_insert(0);
            *w = (*w).max(msg_id.seq);
        }
        self.stats.published.inc();
        self.stats.bytes_published.add(len as u64);
        self.store.append_message(
            now,
            RecordKey {
                pid: dst_pid.as_u64(),
                seq,
            },
            bytes,
        )
    }

    /// Handles a creation notice: registers the process and writes its
    /// initial (binary image) checkpoint (§3.3.1).
    pub fn on_created(
        &mut self,
        now: SimTime,
        pid: ProcessId,
        program_name: &str,
        initial_links: Vec<publishing_demos::link::Link>,
        recoverable: bool,
    ) -> Vec<StoreIo> {
        if !self.owns(pid) {
            return Vec::new();
        }
        let entry = self
            .db
            .entry(pid)
            .or_insert_with(|| ProcessEntry::new(now, pid, program_name.to_string()));
        entry.program_name = program_name.to_string();
        entry.initial_links = initial_links.clone();
        entry.recoverable = recoverable;
        if !recoverable {
            // §6.6.1: "If we do not publish messages for these processes,
            // we may greatly increase the capability of the recorder."
            // No initial checkpoint either; a crash is final.
            return Vec::new();
        }
        let meta = CheckpointMeta {
            program_name: program_name.to_string(),
            initial_links,
            read_floor: 0,
            pins: Vec::new(),
            consumed_deltas: Vec::new(),
            image: None,
        };
        self.pending_deposits.insert(
            pid,
            PendingDeposit {
                meta: meta.clone(),
                consumed: Vec::new(),
                pages: 1,
            },
        );
        let blob = meta.encode_to_vec();
        self.store.write_checkpoint(
            now,
            Checkpoint {
                pid: pid.as_u64(),
                upto_seq: 0,
                blob,
            },
        )
    }

    /// Handles a destruction notice: forgets the process entirely.
    pub fn on_destroyed(&mut self, now: SimTime, pid: ProcessId) -> Vec<StoreIo> {
        if let Some(e) = self.db.remove(&pid) {
            for (_, id) in &e.arrivals {
                self.sequenced.remove(id);
            }
        }
        // Drop not-yet-acknowledged captures for the process too.
        let stale: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, m)| m.header.to == pid)
            .map(|(&cap, _)| cap)
            .collect();
        for cap in stale {
            if let Some(m) = self.pending.remove(&cap) {
                self.pending_ids.remove(&m.header.id);
            }
        }
        self.pending_deposits.remove(&pid);
        self.store.purge_process(now, pid.as_u64())
    }

    /// Snapshots one process's published state for a shard handoff:
    /// the latest durable checkpoint, every surviving log record, and the
    /// database entry. Read-only; pair with [`Recorder::on_destroyed`] on
    /// the source once the destination has imported.
    pub fn export_process(&self, pid: ProcessId) -> Option<ProcessExport> {
        let entry = self.db.get(&pid)?;
        let packed = pid.as_u64();
        let records = self
            .store
            .messages_from(packed, 0)
            .into_iter()
            .map(|rec| (rec.key, rec.payload.clone()))
            .collect();
        let pending = self
            .pending
            .values()
            .filter(|m| m.header.to == pid)
            .cloned()
            .collect();
        Some(ProcessExport {
            pid,
            checkpoint: self.store.latest_checkpoint(packed).cloned(),
            records,
            pending,
            arrivals: entry.arrivals.clone(),
            pins: entry.pins.iter().map(|(i, id)| (*i, *id)).collect(),
            read_floor: entry.read_floor,
            next_arrival_seq: entry.next_arrival_seq,
            last_sent: entry.last_sent.iter().map(|(d, s)| (*d, *s)).collect(),
            recoverable: entry.recoverable,
            program_name: entry.program_name.clone(),
            initial_links: entry.initial_links.clone(),
            checkpoint_image: entry.checkpoint_image.clone(),
        })
    }

    /// Installs an exported process on this recorder: replays the
    /// checkpoint and log records into the stable store and rebuilds the
    /// database entry. The caller must schedule the returned IO
    /// completions (and this shard's ownership filter must already accept
    /// the process, or subsequent traffic for it will be dropped).
    pub fn import_process(&mut self, now: SimTime, export: ProcessExport) -> Vec<StoreIo> {
        let mut ios = Vec::new();
        if let Some(cp) = export.checkpoint.clone() {
            ios.extend(self.store.write_checkpoint(now, cp));
        }
        for (key, payload) in &export.records {
            ios.extend(self.store.append_message(now, *key, payload.clone()));
        }
        let mut entry = ProcessEntry::new(now, export.pid, export.program_name.clone());
        entry.initial_links = export.initial_links;
        entry.arrivals = export.arrivals;
        entry.pins = export.pins.into_iter().collect();
        entry.read_floor = export.read_floor;
        entry.next_arrival_seq = export.next_arrival_seq;
        entry.last_sent = export.last_sent.into_iter().collect();
        entry.recoverable = export.recoverable;
        entry.checkpoint_image = export.checkpoint_image;
        for (_, id) in &entry.arrivals {
            self.sequenced.insert(*id);
        }
        self.db.insert(export.pid, entry);
        for msg in export.pending {
            let id = msg.header.id;
            if self.sequenced.contains(&id) || self.pending_ids.contains_key(&id) {
                continue;
            }
            let cap = self.next_capture;
            self.next_capture += 1;
            self.pending.insert(cap, msg);
            self.pending_ids.insert(id, cap);
        }
        ios
    }

    /// Applies a §4.4.2 read-order notice.
    pub fn on_read_order(&mut self, now: SimTime, n: &ReadOrderNotice) {
        if !self.owns(n.pid) {
            return;
        }
        let entry = self
            .db
            .entry(n.pid)
            .or_insert_with(|| ProcessEntry::new(now, n.pid, String::new()));
        entry.pins.insert(n.read_index, n.read_id);
        self.stats.notices.inc();
    }

    /// Handles a checkpoint deposit from a node kernel.
    pub fn on_deposit(&mut self, now: SimTime, d: &CheckpointDeposit) -> Vec<StoreIo> {
        if !self.owns(d.pid) {
            return Vec::new();
        }
        let Some(entry) = self.db.get_mut(&d.pid) else {
            return Vec::new();
        };
        if self.pending_deposits.contains_key(&d.pid) {
            // One checkpoint in flight at a time; drop extras.
            return Vec::new();
        }
        // Project which messages the process consumed before the image
        // was taken: read indices [read_floor, d.read_count).
        let mut used: BTreeSet<MessageId> = BTreeSet::new();
        let mut consumed: Vec<(u64, MessageId)> = Vec::new();
        for idx in entry.read_floor..d.read_count {
            let id = match entry.pins.get(&idx) {
                Some(&id) => id,
                None => {
                    let Some(&(_, id)) = entry.arrivals.iter().find(|(_, id)| !used.contains(id))
                    else {
                        break;
                    };
                    id
                }
            };
            used.insert(id);
            if let Some(&(seq, _)) = entry.arrivals.iter().find(|(_, aid)| *aid == id) {
                consumed.push((seq, id));
            }
        }
        // Conservative floor: first surviving arrival seq.
        let consumed_seqs: BTreeSet<u64> = consumed.iter().map(|(s, _)| *s).collect();
        let floor = entry
            .arrivals
            .iter()
            .map(|(s, _)| *s)
            .find(|s| !consumed_seqs.contains(s))
            .unwrap_or(entry.next_arrival_seq);
        let deltas: Vec<u64> = consumed_seqs
            .iter()
            .copied()
            .filter(|s| *s >= floor)
            .collect();
        let pins: Vec<(u64, MessageId)> = entry
            .pins
            .iter()
            .filter(|(idx, _)| **idx >= d.read_count)
            .map(|(i, id)| (*i, *id))
            .collect();
        let meta = CheckpointMeta {
            program_name: entry.program_name.clone(),
            initial_links: entry.initial_links.clone(),
            read_floor: d.read_count,
            pins,
            consumed_deltas: deltas,
            image: Some(d.image.clone()),
        };
        let blob = meta.encode_to_vec();
        let pages = (blob.len() as u64).div_ceil(4096).max(1);
        self.pending_deposits.insert(
            d.pid,
            PendingDeposit {
                meta,
                consumed,
                pages,
            },
        );
        self.store.write_checkpoint(
            now,
            Checkpoint {
                pid: d.pid.as_u64(),
                upto_seq: floor,
                blob,
            },
        )
    }

    /// Completes a disk IO; surfaces durable-checkpoint events so the
    /// checkpoint policy can observe them.
    pub fn on_disk(&mut self, now: SimTime, io: StoreIo) -> Vec<ProcessId> {
        let events = self.store.on_disk_complete(now, io);
        let mut durable = Vec::new();
        for ev in events {
            match ev {
                StoreEvent::CheckpointDurable { pid, .. } => {
                    let pid = ProcessId::from_u64(pid);
                    self.apply_durable_checkpoint(now, pid);
                    durable.push(pid);
                }
                StoreEvent::FollowUpIo(io) => self.drained_ios.push(io),
                _ => {}
            }
        }
        durable
    }

    fn apply_durable_checkpoint(&mut self, now: SimTime, pid: ProcessId) {
        let Some(dep) = self.pending_deposits.remove(&pid) else {
            return;
        };
        let Some(entry) = self.db.get_mut(&pid) else {
            return;
        };
        // Precisely invalidate consumed records above the conservative
        // floor (the store already invalidated everything below it).
        let consumed_ids: BTreeSet<MessageId> = dep.consumed.iter().map(|(_, id)| *id).collect();
        for (seq, _) in &dep.consumed {
            let erase = self.store.invalidate_record(
                now,
                RecordKey {
                    pid: pid.as_u64(),
                    seq: *seq,
                },
            );
            self.drained_ios.extend(erase);
        }
        entry.arrivals.retain(|(_, id)| !consumed_ids.contains(id));
        entry.read_floor = dep.meta.read_floor;
        entry.pins.retain(|idx, _| *idx >= dep.meta.read_floor);
        entry.checkpoint_image = dep.meta.image.clone();
        entry.estimator.on_checkpoint(now, dep.pages);
        entry.bytes_since_checkpoint = 0;
        self.stats.checkpoints.inc();
        let floor = dep.meta.read_floor;
        self.spans.record(
            now,
            MsgKey {
                sender: pid.as_u64(),
                seq: floor,
            },
            Stage::Checkpoint,
            pid.as_u64(),
            floor,
        );
    }

    /// Computes the replay stream for `pid`: the messages it must be fed,
    /// in read order, starting at its checkpoint's read floor.
    pub fn replay_stream(&self, pid: ProcessId) -> Vec<(u64, Message)> {
        let Some(entry) = self.db.get(&pid) else {
            return Vec::new();
        };
        // Message contents by id, from the store.
        let mut by_id: HashMap<MessageId, Message> = HashMap::new();
        for rec in self.store.messages_from(pid.as_u64(), 0) {
            if let Ok(msg) = Message::decode_all(&rec.payload) {
                by_id.insert(msg.header.id, msg);
            }
        }
        let mut used: BTreeSet<MessageId> = BTreeSet::new();
        let mut out = Vec::new();
        let mut idx = entry.read_floor;
        loop {
            let id = match entry.pins.get(&idx) {
                Some(&id) => id,
                None => match entry.arrivals.iter().find(|(_, id)| !used.contains(id)) {
                    Some(&(_, id)) => id,
                    None => break,
                },
            };
            used.insert(id);
            match by_id.get(&id) {
                Some(msg) => out.push((idx, msg.clone())),
                None => break,
            }
            idx += 1;
        }
        out
    }

    /// The §4.7 suppression vector for a recovering process: per
    /// destination, the highest sequence known delivered.
    pub fn suppress_vector(&self, pid: ProcessId) -> Vec<(ProcessId, u64)> {
        self.db
            .get(&pid)
            .map(|e| e.last_sent.iter().map(|(d, s)| (*d, *s)).collect())
            .unwrap_or_default()
    }

    /// Returns the latest durable kernel image for `pid`, if any.
    pub fn checkpoint_image(&self, pid: ProcessId) -> Option<&[u8]> {
        self.db
            .get(&pid)
            .and_then(|e| e.checkpoint_image.as_deref())
    }

    /// Models a recorder crash: volatile state (pending buffer, sequenced
    /// set, database) is lost; the store and its battery-backed buffer
    /// survive.
    pub fn crash(&mut self) {
        // The pending capture buffer is battery-backed and survives.
        self.sequenced.clear();
        self.db.clear();
        self.pending_deposits.clear();
        self.store.crash_volatile_state();
    }

    /// Restarts after a crash (§3.3.4): bumps the restart number and
    /// rebuilds the database from stable storage. Returns the process ids
    /// whose state must be queried.
    pub fn restart(&mut self, now: SimTime) -> Vec<ProcessId> {
        self.restart_number += 1;
        self.crash();
        let pids = self.store.rebuild_index();
        for packed in pids {
            let pid = ProcessId::from_u64(packed);
            // Metadata from the latest durable checkpoint. A pid can
            // surface with log records but no checkpoint when the crash
            // destroyed its in-flight initial checkpoint write while acked
            // messages survived in the battery-backed buffer. Rebuild its
            // sequencing state anyway — the kernel's re-announcement will
            // restore the metadata — so the process is never re-assigned
            // an arrival sequence its surviving records already use.
            let meta = self
                .store
                .latest_checkpoint(packed)
                .and_then(|cp| CheckpointMeta::decode_all(&cp.blob).ok())
                .unwrap_or_default();
            let mut entry = ProcessEntry::new(now, pid, meta.program_name.clone());
            entry.initial_links = meta.initial_links.clone();
            entry.read_floor = meta.read_floor;
            entry.pins = meta.pins.iter().copied().collect();
            entry.checkpoint_image = meta.image.clone();
            let deltas: BTreeSet<u64> = meta.consumed_deltas.iter().copied().collect();
            for rec in self.store.messages_from(packed, 0) {
                if deltas.contains(&rec.key.seq) {
                    let erase = self.store.invalidate_record(now, rec.key);
                    self.drained_ios.extend(erase);
                    continue;
                }
                if let Ok(msg) = Message::decode_all(&rec.payload) {
                    entry.arrivals.push((rec.key.seq, msg.header.id));
                    entry.next_arrival_seq = entry.next_arrival_seq.max(rec.key.seq + 1);
                    self.sequenced.insert(msg.header.id);
                }
            }
            self.db.insert(pid, entry);
        }
        // Rebuild sender watermarks from surviving records (a lower bound,
        // which is the safe direction: under-suppression is deduplicated
        // by receivers).
        let mut watermarks: Vec<(ProcessId, ProcessId, u64)> = Vec::new();
        for (&pid, entry) in &self.db {
            for rec in self.store.messages_from(pid.as_u64(), 0) {
                if entry.arrivals.iter().any(|(s, _)| *s == rec.key.seq) {
                    if let Ok(msg) = Message::decode_all(&rec.payload) {
                        watermarks.push((msg.header.id.sender, pid, msg.header.id.seq));
                    }
                }
            }
        }
        for (sender, dst, seq) in watermarks {
            if sender.is_kernel() {
                continue;
            }
            if let Some(se) = self.db.get_mut(&sender) {
                let w = se.last_sent.entry(dst).or_insert(0);
                *w = (*w).max(seq);
            }
        }
        // Drain the battery-backed pending buffer: a destination may have
        // used (and acknowledged) a captured message in the instant before
        // the crash; its ack observation died with our volatile state, and
        // nobody will retransmit an acknowledged message. Sequence every
        // survivor now, in capture order, so nothing is lost. Messages
        // whose destination never actually received them are simply
        // delivered on the destination's next recovery — the reliable-
        // message guarantee.
        if self.external_sequencing {
            // Quorum mode: arrival sequences come only from the
            // replicated log. Survivors stay in the battery-backed
            // buffer until a committed entry publishes them (or a
            // committed entry already did — drop those).
            let sequenced = &self.sequenced;
            self.pending
                .retain(|_, m| !sequenced.contains(&m.header.id));
            self.pending_ids = self
                .pending
                .iter()
                .map(|(cap, m)| (m.header.id, *cap))
                .collect();
        } else {
            let drained: Vec<Message> = std::mem::take(&mut self.pending).into_values().collect();
            self.pending_ids.clear();
            let mut pending_ios = Vec::new();
            for msg in drained {
                if self.sequenced.contains(&msg.header.id) {
                    continue;
                }
                if self.db.contains_key(&msg.header.to) {
                    pending_ios.extend(self.sequence_message(now, msg));
                }
            }
            self.drained_ios = pending_ios;
        }
        self.db.keys().copied().collect()
    }

    /// IO started by the restart's pending-buffer drain; the caller must
    /// schedule these completions.
    pub fn take_drained_ios(&mut self) -> Vec<StoreIo> {
        std::mem::take(&mut self.drained_ios)
    }

    /// Background maintenance: compacts one partially-invalid page (§4.5:
    /// "before allocating a buffer to a disk page, the disk page is read
    /// in … and the buffer is compacted"). The recorder node calls this
    /// from its policy tick.
    pub fn maintain(&mut self, now: SimTime) -> Vec<StoreIo> {
        self.store.compact_one(now)
    }

    /// Returns `true` once every known process has checkpointed after
    /// `since` — the §6.3 catch-up criterion for a rejoining recorder
    /// ("eventually, all the processes will naturally checkpoint …
    /// the recorder will then be up to date").
    pub fn caught_up(&self, since: SimTime) -> bool {
        self.db.values().all(|e| e.estimator.checkpoint_at >= since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::Channel;
    use publishing_demos::message::MessageHeader;

    fn pid(n: u32, l: u32) -> ProcessId {
        ProcessId::new(n, l)
    }

    fn msg(from: ProcessId, to: ProcessId, seq: u64, body: &[u8]) -> Message {
        Message {
            header: MessageHeader {
                id: MessageId { sender: from, seq },
                to,
                code: 0,
                channel: Channel(0),
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: body.to_vec(),
        }
    }

    fn recorder() -> Recorder {
        Recorder::new(NodeId(9), DiskParams::default(), 1, PublishCost::MediaLayer)
    }

    fn drain(r: &mut Recorder, ios: Vec<StoreIo>) {
        let mut q = ios;
        while let Some(io) = q.pop() {
            r.on_disk(io.at, io);
        }
    }

    /// Capture + ack publishes in ack order, not capture order.
    #[test]
    fn sequencing_follows_acks() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        let m1 = msg(pid(1, 1), pid(2, 1), 1, b"a");
        let m2 = msg(pid(1, 1), pid(2, 1), 2, b"b");
        r.on_data(t, &m1);
        r.on_data(t, &m2);
        // Acks arrive in reverse (m2's first copy reached the node; m1 was
        // retransmitted later).
        let ios = r.on_ack(t, m2.header.id, pid(2, 1));
        drain(&mut r, ios);
        let ios = r.on_ack(t, m1.header.id, pid(2, 1));
        drain(&mut r, ios);
        let stream = r.replay_stream(pid(2, 1));
        let bodies: Vec<&[u8]> = stream.iter().map(|(_, m)| m.body.as_slice()).collect();
        assert_eq!(bodies, vec![b"b".as_slice(), b"a".as_slice()]);
    }

    #[test]
    fn duplicate_data_and_acks_ignored() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        let m = msg(pid(1, 1), pid(2, 1), 1, b"x");
        r.on_data(t, &m);
        r.on_data(t, &m);
        let ios = r.on_ack(t, m.header.id, pid(2, 1));
        drain(&mut r, ios);
        let ios = r.on_ack(t, m.header.id, pid(2, 1));
        drain(&mut r, ios);
        assert_eq!(r.stats().published.get(), 1);
        assert_eq!(r.stats().duplicates.get(), 2);
        assert_eq!(r.replay_stream(pid(2, 1)).len(), 1);
    }

    #[test]
    fn kernel_traffic_not_published() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let m = msg(pid(1, 1), ProcessId::kernel_of(NodeId(2)), 1, b"ctl");
        r.on_data(t, &m);
        let ios = r.on_ack(t, m.header.id, ProcessId::kernel_of(NodeId(2)));
        drain(&mut r, ios);
        assert_eq!(r.stats().captured.get(), 0);
        assert_eq!(r.stats().published.get(), 0);
    }

    #[test]
    fn pins_reorder_replay() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "reader", vec![], true);
        drain(&mut r, ios);
        let msgs: Vec<Message> = (1..=3)
            .map(|i| msg(pid(1, 1), pid(2, 1), i, &[i as u8]))
            .collect();
        for m in &msgs {
            r.on_data(t, m);
            let ios = r.on_ack(t, m.header.id, pid(2, 1));
            drain(&mut r, ios);
        }
        // The process read message 3 first (urgent channel).
        r.on_read_order(
            t,
            &ReadOrderNotice {
                pid: pid(2, 1),
                read_index: 0,
                read_id: msgs[2].header.id,
                head_id: msgs[0].header.id,
            },
        );
        let stream = r.replay_stream(pid(2, 1));
        let seqs: Vec<u64> = stream.iter().map(|(_, m)| m.header.id.seq).collect();
        assert_eq!(seqs, vec![3, 1, 2]);
    }

    #[test]
    fn checkpoint_sets_replay_floor_and_gcs() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        for i in 1..=4u64 {
            let m = msg(pid(1, 1), pid(2, 1), i, &[i as u8]);
            r.on_data(t, &m);
            let ios = r.on_ack(t, m.header.id, pid(2, 1));
            drain(&mut r, ios);
        }
        // Kernel checkpoints after reading 2 messages.
        let dep = CheckpointDeposit {
            pid: pid(2, 1),
            read_count: 2,
            image: vec![0xAB; 100],
        };
        let ios = r.on_deposit(SimTime::from_millis(1), &dep);
        drain(&mut r, ios);
        assert_eq!(r.stats().checkpoints.get(), 2); // initial + this one
        let stream = r.replay_stream(pid(2, 1));
        let seqs: Vec<u64> = stream.iter().map(|(_, m)| m.header.id.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(stream[0].0, 2, "replay resumes at read index 2");
        assert_eq!(r.checkpoint_image(pid(2, 1)), Some(&[0xAB; 100][..]));
    }

    #[test]
    fn out_of_order_consumption_checkpoints_precisely() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "reader", vec![], true);
        drain(&mut r, ios);
        let msgs: Vec<Message> = (1..=3)
            .map(|i| msg(pid(1, 1), pid(2, 1), i, &[i as u8]))
            .collect();
        for m in &msgs {
            r.on_data(t, m);
            let ios = r.on_ack(t, m.header.id, pid(2, 1));
            drain(&mut r, ios);
        }
        // Read order was 3 (pinned), then checkpoint at read_count 1:
        // message 3 is consumed although it arrived last.
        r.on_read_order(
            t,
            &ReadOrderNotice {
                pid: pid(2, 1),
                read_index: 0,
                read_id: msgs[2].header.id,
                head_id: msgs[0].header.id,
            },
        );
        let dep = CheckpointDeposit {
            pid: pid(2, 1),
            read_count: 1,
            image: vec![1],
        };
        let ios = r.on_deposit(SimTime::from_millis(1), &dep);
        drain(&mut r, ios);
        let stream = r.replay_stream(pid(2, 1));
        let seqs: Vec<u64> = stream.iter().map(|(_, m)| m.header.id.seq).collect();
        assert_eq!(
            seqs,
            vec![1, 2],
            "message 3 was consumed before the checkpoint"
        );
    }

    #[test]
    fn suppress_vector_tracks_ack_watermarks() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(1, 1), "chatter", vec![], true);
        drain(&mut r, ios);
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        let ios = r.on_created(t, pid(3, 1), "echo", vec![], true);
        drain(&mut r, ios);
        for (seq, dst) in [(1u64, pid(2, 1)), (2, pid(3, 1)), (3, pid(2, 1))] {
            let m = msg(pid(1, 1), dst, seq, b"z");
            r.on_data(t, &m);
            let ios = r.on_ack(t, m.header.id, dst);
            drain(&mut r, ios);
        }
        let mut v = r.suppress_vector(pid(1, 1));
        v.sort();
        assert_eq!(v, vec![(pid(2, 1), 3), (pid(3, 1), 2)]);
    }

    #[test]
    fn restart_rebuilds_database_from_store() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        for i in 1..=5u64 {
            let m = msg(pid(1, 1), pid(2, 1), i, &[i as u8; 32]);
            r.on_data(t, &m);
            let ios = r.on_ack(t, m.header.id, pid(2, 1));
            drain(&mut r, ios);
        }
        let dep = CheckpointDeposit {
            pid: pid(2, 1),
            read_count: 2,
            image: vec![7; 64],
        };
        let ios = r.on_deposit(SimTime::from_millis(1), &dep);
        drain(&mut r, ios);
        let before = r.replay_stream(pid(2, 1));
        let rn0 = r.restart_number();

        let pids = r.restart(SimTime::from_millis(10));
        assert!(pids.contains(&pid(2, 1)));
        assert_eq!(r.restart_number(), rn0 + 1);
        let after = r.replay_stream(pid(2, 1));
        assert_eq!(
            before
                .iter()
                .map(|(i, m)| (*i, m.header.id))
                .collect::<Vec<_>>(),
            after
                .iter()
                .map(|(i, m)| (*i, m.header.id))
                .collect::<Vec<_>>(),
        );
        assert_eq!(r.entry(pid(2, 1)).unwrap().program_name, "echo");
        assert_eq!(r.checkpoint_image(pid(2, 1)), Some(&[7; 64][..]));
    }

    #[test]
    fn restart_drops_unflushed_nothing_because_buffer_is_battery_backed() {
        // Messages still in the open (battery-backed) buffer survive a
        // recorder crash, per §3.3.4.
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        let m = msg(pid(1, 1), pid(2, 1), 1, b"unflushed");
        r.on_data(t, &m);
        let ios = r.on_ack(t, m.header.id, pid(2, 1));
        drain(&mut r, ios);
        // No flush happened (single small message); restart must keep it.
        r.restart(SimTime::from_millis(5));
        let stream = r.replay_stream(pid(2, 1));
        assert_eq!(stream.len(), 1);
        assert_eq!(stream[0].1.body, b"unflushed");
    }

    #[test]
    fn destroyed_process_forgotten() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        let ios = r.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut r, ios);
        let m = msg(pid(1, 1), pid(2, 1), 1, b"x");
        r.on_data(t, &m);
        let ios = r.on_ack(t, m.header.id, pid(2, 1));
        drain(&mut r, ios);
        let erase = r.on_destroyed(t, pid(2, 1));
        drain(&mut r, erase);
        assert!(r.entry(pid(2, 1)).is_none());
        assert!(r.replay_stream(pid(2, 1)).is_empty());
        let pids = r.restart(SimTime::from_millis(1));
        assert!(!pids.contains(&pid(2, 1)), "purged from disk too");
    }

    #[test]
    fn ownership_filter_ignores_other_shards_traffic() {
        let mut r = recorder();
        let t = SimTime::ZERO;
        // Own only processes with odd local ids.
        r.set_ownership_filter(Some(std::sync::Arc::new(|p: ProcessId| p.local % 2 == 1)));
        let ios = r.on_created(t, pid(2, 1), "mine", vec![], true);
        drain(&mut r, ios);
        let ios = r.on_created(t, pid(2, 2), "theirs", vec![], true);
        drain(&mut r, ios);
        assert!(r.entry(pid(2, 1)).is_some());
        assert!(r.entry(pid(2, 2)).is_none(), "unowned create ignored");
        for (dst, seq) in [(pid(2, 1), 1u64), (pid(2, 2), 2)] {
            let m = msg(pid(1, 1), dst, seq, b"x");
            r.on_data(t, &m);
            let ios = r.on_ack(t, m.header.id, dst);
            drain(&mut r, ios);
        }
        assert_eq!(r.stats().captured.get(), 1, "unowned data not captured");
        assert_eq!(r.replay_stream(pid(2, 1)).len(), 1);
        assert!(r.replay_stream(pid(2, 2)).is_empty());
        // Clearing the filter restores full capture.
        r.set_ownership_filter(None);
        let m = msg(pid(1, 1), pid(2, 2), 3, b"y");
        r.on_data(t, &m);
        assert_eq!(r.stats().captured.get(), 2);
    }

    #[test]
    fn export_import_preserves_replay_stream() {
        let mut src = recorder();
        let t = SimTime::ZERO;
        let ios = src.on_created(t, pid(2, 1), "echo", vec![], true);
        drain(&mut src, ios);
        for i in 1..=4u64 {
            let m = msg(pid(1, 1), pid(2, 1), i, &[i as u8]);
            src.on_data(t, &m);
            let ios = src.on_ack(t, m.header.id, pid(2, 1));
            drain(&mut src, ios);
        }
        let dep = CheckpointDeposit {
            pid: pid(2, 1),
            read_count: 2,
            image: vec![0xCD; 32],
        };
        let ios = src.on_deposit(SimTime::from_millis(1), &dep);
        drain(&mut src, ios);
        let before: Vec<(u64, MessageId)> = src
            .replay_stream(pid(2, 1))
            .iter()
            .map(|(i, m)| (*i, m.header.id))
            .collect();

        let export = src.export_process(pid(2, 1)).expect("known process");
        let mut dst = Recorder::new(NodeId(8), DiskParams::default(), 1, PublishCost::MediaLayer);
        let ios = dst.import_process(SimTime::from_millis(2), export);
        drain(&mut dst, ios);
        let after: Vec<(u64, MessageId)> = dst
            .replay_stream(pid(2, 1))
            .iter()
            .map(|(i, m)| (*i, m.header.id))
            .collect();
        assert_eq!(before, after);
        assert_eq!(dst.checkpoint_image(pid(2, 1)), Some(&[0xCD; 32][..]));
        // The destination survives its own restart: the imported state is
        // durable, not just an in-memory copy.
        dst.restart(SimTime::from_millis(3));
        let rebuilt: Vec<(u64, MessageId)> = dst
            .replay_stream(pid(2, 1))
            .iter()
            .map(|(i, m)| (*i, m.header.id))
            .collect();
        assert_eq!(before, rebuilt);
        // And the source can release the process after handoff.
        let erase = src.on_destroyed(SimTime::from_millis(3), pid(2, 1));
        drain(&mut src, erase);
        assert!(src.replay_stream(pid(2, 1)).is_empty());
    }

    #[test]
    fn publish_cost_modes_match_paper() {
        assert_eq!(
            PublishCost::FullStack.per_message(),
            SimDuration::from_millis(57)
        );
        assert_eq!(
            PublishCost::Inlined.per_message(),
            SimDuration::from_millis(12)
        );
        assert_eq!(
            PublishCost::MediaLayer.per_message(),
            SimDuration::from_micros(800)
        );
    }
}
