//! CRC-32 (IEEE 802.3) frame check sequence.
//!
//! §4.3.3's link layer "wraps all messages with a rotating checksum" and
//! discards frames whose checksum fails; the token-ring recorder of §6.1.2
//! *complements* the checksum to deliberately invalidate a frame it could
//! not record. Both behaviours need a real FCS, so we implement the
//! standard reflected CRC-32 used by Ethernet.

/// The CRC-32/IEEE polynomial, reflected.
const POLY: u32 = 0xEDB8_8320;

/// Computes the lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32/IEEE checksum of `data`.
///
/// # Examples
///
/// ```
/// // The standard check value for "123456789".
/// assert_eq!(publishing_net::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 computation for multi-part frames.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"published communications";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 128];
        data[17] = 0xA5;
        let good = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(crc32(&data), good);
    }

    #[test]
    fn complemented_crc_never_validates() {
        // The token-ring recorder invalidates a frame by complementing the
        // FCS; a complemented CRC must never equal the true CRC.
        for data in [&b"x"[..], b"hello", b"", b"0123456789abcdef"] {
            let c = crc32(data);
            assert_ne!(c, !c);
        }
    }
}
