//! The versioned `BENCH_<n>.json` snapshot artifact.
//!
//! One snapshot is one run of the canonical bench scenario matrix. Each
//! scenario carries three sections:
//!
//! - `virtual` — metrics derived purely from virtual time and
//!   deterministic counters (events/sec of *virtual* time, stage-latency
//!   percentiles, peak queue depths, bytes published). Two runs at the
//!   same seed produce byte-identical virtual sections; the CI gate and
//!   the determinism tests compare only these.
//! - `fingerprints` — the run's output/span fingerprints, as hex
//!   strings (u64 does not survive an f64 JSON number).
//! - `host` — wall-clock milliseconds and allocation counts. Noisy by
//!   nature; recorded for humans, never gated on.
//!
//! The artifact is self-describing: `schema` names the layout version
//! and `mode` the scenario matrix variant (`smoke` or `full`), and the
//! comparator refuses to diff snapshots that disagree on either.

use crate::json::{parse, Json, ObjBuilder, ParseError};
use publishing_obs::registry::MetricValue;
use publishing_obs::report::ObsReport;
use std::collections::BTreeMap;

/// Layout version written into every snapshot.
pub const SCHEMA_VERSION: u32 = 1;

/// One scenario's measurements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSnapshot {
    /// Scenario name (`steady_state`, `crash_replay`, ...).
    pub name: String,
    /// Deterministic virtual-time metrics, by name.
    pub virt: BTreeMap<String, f64>,
    /// Determinism fingerprints, by name, as `0x`-prefixed hex.
    pub fingerprints: BTreeMap<String, String>,
    /// Host-side readings (wall clock, allocations). Never gated.
    pub host: BTreeMap<String, f64>,
}

impl ScenarioSnapshot {
    /// Creates an empty scenario entry.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSnapshot {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Files a virtual metric.
    pub fn virt(&mut self, name: impl Into<String>, value: f64) {
        self.virt.insert(name.into(), value);
    }

    /// Files a fingerprint.
    pub fn fingerprint(&mut self, name: impl Into<String>, value: u64) {
        self.fingerprints
            .insert(name.into(), format!("{value:#018x}"));
    }

    /// Files a host-side reading.
    pub fn host(&mut self, name: impl Into<String>, value: f64) {
        self.host.insert(name.into(), value);
    }

    fn section_json(map: &BTreeMap<String, f64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        )
    }

    fn virtual_json(&self) -> Json {
        ObjBuilder::new()
            .field("virtual", Self::section_json(&self.virt))
            .field(
                "fingerprints",
                Json::Obj(
                    self.fingerprints
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            )
            .build()
    }

    fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.virtual_json() else {
            unreachable!("virtual_json builds an object");
        };
        pairs.push(("host".into(), Self::section_json(&self.host)));
        Json::Obj(pairs)
    }
}

/// One bench run's artifact: schema, mode, and the scenario matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Layout version ([`SCHEMA_VERSION`] for snapshots this code writes).
    pub schema: u32,
    /// Scenario-matrix variant: `smoke` or `full`.
    pub mode: String,
    /// The scenarios, in matrix order.
    pub scenarios: Vec<ScenarioSnapshot>,
}

impl Snapshot {
    /// Creates an empty snapshot for `mode`.
    pub fn new(mode: impl Into<String>) -> Self {
        Snapshot {
            schema: SCHEMA_VERSION,
            mode: mode.into(),
            scenarios: Vec::new(),
        }
    }

    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioSnapshot> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Serializes the whole artifact (virtual + fingerprints + host).
    pub fn to_json(&self) -> String {
        self.doc(true).write()
    }

    /// Serializes only the deterministic half: schema, mode, and each
    /// scenario's virtual metrics and fingerprints. Two runs at the same
    /// seed must produce byte-identical output here.
    pub fn virtual_json(&self) -> String {
        self.doc(false).write()
    }

    fn doc(&self, with_host: bool) -> Json {
        ObjBuilder::new()
            .field("schema", Json::Num(self.schema as f64))
            .field("mode", Json::Str(self.mode.clone()))
            .field(
                "scenarios",
                Json::Obj(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            let body = if with_host {
                                s.to_json()
                            } else {
                                s.virtual_json()
                            };
                            (s.name.clone(), body)
                        })
                        .collect(),
                ),
            )
            .build()
    }

    /// Parses an artifact previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        let doc = parse(text)?;
        let bad = |what: &str| ParseError {
            expected: what.to_string(),
            at: 0,
        };
        let schema = doc
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("a schema number"))? as u32;
        let mode = doc
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("a mode string"))?
            .to_string();
        let mut scenarios = Vec::new();
        for (name, body) in doc
            .get("scenarios")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("a scenarios object"))?
        {
            let mut s = ScenarioSnapshot::new(name.clone());
            let section = |key: &str| -> Result<BTreeMap<String, f64>, ParseError> {
                let mut out = BTreeMap::new();
                if let Some(pairs) = body.get(key).and_then(Json::as_obj) {
                    for (k, v) in pairs {
                        out.insert(
                            k.clone(),
                            v.as_f64().ok_or_else(|| bad("a numeric metric"))?,
                        );
                    }
                }
                Ok(out)
            };
            s.virt = section("virtual")?;
            s.host = section("host")?;
            if let Some(pairs) = body.get("fingerprints").and_then(Json::as_obj) {
                for (k, v) in pairs {
                    s.fingerprints.insert(
                        k.clone(),
                        v.as_str()
                            .ok_or_else(|| bad("a hex fingerprint"))?
                            .to_string(),
                    );
                }
            }
            scenarios.push(s);
        }
        Ok(Snapshot {
            schema,
            mode,
            scenarios,
        })
    }
}

/// Projects an [`ObsReport`] into one scenario's deterministic virtual
/// metrics: scheduler throughput over virtual time, stage-latency
/// percentiles, queue-depth distribution, bytes published, and the span
/// fingerprint. The caller adds its own extra fingerprints (e.g. the
/// output fingerprint) and the host section.
pub fn scenario_from_report(name: &str, report: &ObsReport) -> ScenarioSnapshot {
    let mut s = ScenarioSnapshot::new(name);
    s.virt("at_ms", report.at_ms);
    s.virt("events_delivered", report.sched.delivered as f64);
    s.virt("events_scheduled", report.sched.scheduled as f64);
    let secs = report.at_ms / 1e3;
    s.virt(
        "events_per_virtual_sec",
        if secs > 0.0 {
            report.sched.delivered as f64 / secs
        } else {
            0.0
        },
    );
    s.virt("peak_sched_pending", report.sched.peak_pending as f64);
    if let Some(h) = &report.queue_depths {
        s.virt("queue_depth_p50", h.quantile(0.5));
        s.virt("queue_depth_p95", h.quantile(0.95));
        s.virt("queue_depth_p99", h.quantile(0.99));
        s.virt("peak_queue_depth", h.summary().max().unwrap_or(0.0));
    }
    s.virt("spans_total", report.spans_total as f64);
    s.virt("spans_replayed", report.latencies.replayed as f64);
    s.virt("spans_suppressed", report.latencies.suppressed as f64);
    s.virt("spans_partial", report.latencies.partial as f64);
    if let Some(cp) = &report.critical_path {
        s.virt("critical_path_total_ms", cp.total().as_millis_f64());
        s.virt("critical_path_segments", cp.segments.len() as f64);
        for (cat, d) in cp.by_stage() {
            s.virt(format!("critical_path_{cat}_ms"), d.as_millis_f64());
        }
    }
    for (stage, h) in [
        (
            "publish_to_capture_us",
            &report.latencies.publish_to_capture_us,
        ),
        (
            "capture_to_sequence_us",
            &report.latencies.capture_to_sequence_us,
        ),
        (
            "publish_to_deliver_us",
            &report.latencies.publish_to_deliver_us,
        ),
    ] {
        s.virt(format!("{stage}_n"), h.summary().count() as f64);
        s.virt(format!("{stage}_p50"), h.quantile(0.5) as f64);
        s.virt(format!("{stage}_p95"), h.quantile(0.95) as f64);
        s.virt(format!("{stage}_p99"), h.quantile(0.99) as f64);
    }
    let mut bytes = 0.0;
    for (path, v) in report.metrics.iter() {
        if let (true, MetricValue::Counter(c)) = (path.ends_with("/bytes_published"), v) {
            bytes += c as f64;
        }
    }
    s.virt("bytes_published", bytes);
    // Attribution families for regression forensics: virtual-time cost
    // per profile category, ledger busy time aggregated per resource
    // kind, and the binding resource's identity (a fingerprint, so a
    // flip shows up in the comparator as an informational change and in
    // forensics as a first-ranked suspect).
    for (category, d) in report.profile.iter() {
        s.virt(format!("profile_{category}_ms"), d.as_millis_f64());
    }
    if let Some(u) = &report.utilization {
        let mut busy_by_kind: BTreeMap<&'static str, f64> = BTreeMap::new();
        for r in &u.resources {
            *busy_by_kind.entry(r.kind.label()).or_insert(0.0) += r.busy_ms;
        }
        for (kind, busy) in busy_by_kind {
            s.virt(format!("util_{kind}_busy_ms"), busy);
        }
        if let Some(b) = u.binding() {
            s.fingerprints.insert("binding".into(), b.name.clone());
        }
    }
    s.fingerprint("spans", report.span_fingerprint);
    s
}

/// Picks the next free `BENCH_<n>.json` number in `dir` (1-based): one
/// more than the highest existing snapshot number, so history never gets
/// overwritten.
pub fn next_snapshot_number(dir: &std::path::Path) -> u32 {
    let mut max = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u32>().ok())
            {
                max = max.max(n);
            }
        }
    }
    max + 1
}

/// The canonical artifact filename for snapshot number `n`.
pub fn snapshot_filename(n: u32) -> String {
    format!("BENCH_{n}.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::new("smoke");
        let mut s = ScenarioSnapshot::new("steady_state");
        s.virt("events_per_virtual_sec", 1234.5);
        s.virt("publish_to_deliver_us_p99", 2048.0);
        s.virt("peak_queue_depth", 3.0);
        s.fingerprint("output", 0xdead_beef);
        s.host("wall_ms", 17.25);
        s.host("allocations", 100_000.0);
        snap.scenarios.push(s);
        snap
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = sample();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn virtual_json_excludes_host_readings() {
        let snap = sample();
        let v = snap.virtual_json();
        assert!(v.contains("events_per_virtual_sec"));
        assert!(v.contains("0x00000000deadbeef"));
        assert!(!v.contains("wall_ms"));
        assert!(!v.contains("allocations"));
        assert!(v.contains("\"schema\":1.0"));
    }

    #[test]
    fn scenario_from_report_projects_core_metrics() {
        use publishing_sim::stats::LinearHistogram;
        let mut report = ObsReport {
            at_ms: 2000.0,
            spans_total: 99,
            span_fingerprint: 0xfeed,
            ..Default::default()
        };
        report.sched.delivered = 500;
        report.sched.peak_pending = 12;
        report.metrics.counter("shard/0/bytes_published", 100);
        report.metrics.counter("shard/1/bytes_published", 50);
        let mut depths = LinearHistogram::new(0.0, 16.0, 16);
        for d in [1.0, 2.0, 5.0] {
            depths.record(d);
        }
        report.queue_depths = Some(depths);
        let s = scenario_from_report("steady_state", &report);
        assert_eq!(s.virt["events_per_virtual_sec"], 250.0);
        assert_eq!(s.virt["bytes_published"], 150.0);
        assert_eq!(s.virt["peak_sched_pending"], 12.0);
        assert_eq!(s.virt["peak_queue_depth"], 5.0);
        assert!(s.virt.contains_key("publish_to_deliver_us_p99"));
        assert_eq!(s.fingerprints["spans"], "0x000000000000feed");
    }

    #[test]
    fn snapshot_numbering_scans_existing_files() {
        let dir = std::env::temp_dir().join(format!("perf-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_snapshot_number(&dir), 1);
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        assert_eq!(next_snapshot_number(&dir), 8);
        assert_eq!(snapshot_filename(8), "BENCH_8.json");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
