//! The workload DSL: a compact, round-trippable literal for offered
//! load.
//!
//! A [`WorkloadSpec`] is a header — user count, subject count, seed,
//! per-user publish rate, tick, horizon, and message-size mix — plus a
//! list of composable [`Phase`] tokens modulating that base load over
//! logical time: diurnal curves, flash crowds, hotspot (Zipf) subject
//! skew, stalled receivers, and checkpoint storms. Like
//! [`publishing_chaos::FaultSchedule`], a spec prints as a
//! whitespace-separated literal and parses back to an identical value,
//! so any searched operating point is a string a human can paste back
//! in:
//!
//! ```text
//! users=12 subjects=4 seed=7 rate=25/s tick=20ms horizon=400ms \
//!   mix=92%x128/1024 diurnal@0ms+400ms~200ms=40..100% \
//!   flash@120ms+60ms=300% zipf@0ms+400ms=120 stall@150ms+80ms#1 \
//!   storm@200ms+40ms=2
//! ```
//!
//! All times are logical milliseconds (the drivers track them by
//! charging one tick of virtual CPU per iteration, because programs
//! cannot read a clock); rates and percentages are integers so literals
//! round-trip exactly.

use publishing_demos::driver::MessageMix;
use std::fmt;
use std::str::FromStr;

/// One load-modulating phase over `[at_ms, at_ms + dur_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `diurnal@Ams+Dms~Pms=LO..HI%`: the rate multiplier follows a
    /// triangle wave between `lo_pct` and `hi_pct` percent of base with
    /// period `period_ms` — the compressed day/night curve.
    Diurnal {
        /// Window start (logical ms).
        at_ms: u64,
        /// Window length (ms).
        dur_ms: u64,
        /// Wave period (ms).
        period_ms: u64,
        /// Multiplier at the trough, percent of base rate.
        lo_pct: u32,
        /// Multiplier at the crest, percent of base rate.
        hi_pct: u32,
    },
    /// `flash@Ams+Dms=M%`: a flash crowd multiplying the rate by
    /// `pct`% (typically > 100) for the window.
    Flash {
        /// Window start (ms).
        at_ms: u64,
        /// Window length (ms).
        dur_ms: u64,
        /// Rate multiplier in percent.
        pct: u32,
    },
    /// `zipf@Ams+Dms=T`: hotspot subject skew — subjects are drawn
    /// Zipf(θ) with θ = `theta_centi`/100 instead of uniformly for the
    /// window (the last active skew wins when windows overlap).
    Zipf {
        /// Window start (ms).
        at_ms: u64,
        /// Window length (ms).
        dur_ms: u64,
        /// Skew exponent in centi-units (120 = θ 1.20).
        theta_centi: u32,
    },
    /// `stall@Ams+Dms#K`: subject sink `K` turns slow for the window,
    /// charging a full tick of CPU per message it drains.
    Stall {
        /// Window start (ms).
        at_ms: u64,
        /// Window length (ms).
        dur_ms: u64,
        /// Sink index (mod the subject count).
        sink: u32,
    },
    /// `storm@Ams+Dms=B`: a checkpoint storm — every driver publishes
    /// `burst` extra checkpoint-sized messages per tick in the window.
    Storm {
        /// Window start (ms).
        at_ms: u64,
        /// Window length (ms).
        dur_ms: u64,
        /// Extra checkpoint messages per driver tick.
        burst: u32,
    },
}

impl Phase {
    fn window(&self) -> (u64, u64) {
        match *self {
            Phase::Diurnal { at_ms, dur_ms, .. }
            | Phase::Flash { at_ms, dur_ms, .. }
            | Phase::Zipf { at_ms, dur_ms, .. }
            | Phase::Stall { at_ms, dur_ms, .. }
            | Phase::Storm { at_ms, dur_ms, .. } => (at_ms, dur_ms),
        }
    }

    /// True if the phase's window covers logical instant `t_ms`.
    pub fn active(&self, t_ms: u64) -> bool {
        let (at, dur) = self.window();
        at <= t_ms && t_ms < at + dur
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Phase::Diurnal {
                at_ms,
                dur_ms,
                period_ms,
                lo_pct,
                hi_pct,
            } => write!(
                f,
                "diurnal@{at_ms}ms+{dur_ms}ms~{period_ms}ms={lo_pct}..{hi_pct}%"
            ),
            Phase::Flash { at_ms, dur_ms, pct } => write!(f, "flash@{at_ms}ms+{dur_ms}ms={pct}%"),
            Phase::Zipf {
                at_ms,
                dur_ms,
                theta_centi,
            } => write!(f, "zipf@{at_ms}ms+{dur_ms}ms={theta_centi}"),
            Phase::Stall {
                at_ms,
                dur_ms,
                sink,
            } => {
                write!(f, "stall@{at_ms}ms+{dur_ms}ms#{sink}")
            }
            Phase::Storm {
                at_ms,
                dur_ms,
                burst,
            } => write!(f, "storm@{at_ms}ms+{dur_ms}ms={burst}"),
        }
    }
}

fn parse_ms(s: &str, what: &str) -> Result<u64, String> {
    s.strip_suffix("ms")
        .ok_or_else(|| format!("{what}: expected <n>ms, got {s:?}"))?
        .parse()
        .map_err(|e| format!("{what}: {e}"))
}

impl FromStr for Phase {
    type Err = String;

    fn from_str(tok: &str) -> Result<Self, String> {
        let (name, rest) = tok
            .split_once('@')
            .ok_or_else(|| format!("phase {tok:?}: missing '@'"))?;
        let (at, rest) = rest
            .split_once('+')
            .ok_or_else(|| format!("{name}: expected @Ams+Dms…"))?;
        let at_ms = parse_ms(at, name)?;
        match name {
            "diurnal" => {
                let (dur, rest) = rest
                    .split_once('~')
                    .ok_or_else(|| format!("{name}: expected +Dms~Pms=LO..HI%"))?;
                let (period, range) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{name}: expected ~Pms=LO..HI%"))?;
                let (lo, hi) = range
                    .strip_suffix('%')
                    .and_then(|r| r.split_once(".."))
                    .ok_or_else(|| format!("{name}: expected =LO..HI%"))?;
                let period_ms = parse_ms(period, name)?;
                if period_ms == 0 {
                    return Err(format!("{name}: zero period"));
                }
                Ok(Phase::Diurnal {
                    at_ms,
                    dur_ms: parse_ms(dur, name)?,
                    period_ms,
                    lo_pct: lo.parse().map_err(|e| format!("{name}: {e}"))?,
                    hi_pct: hi.parse().map_err(|e| format!("{name}: {e}"))?,
                })
            }
            "flash" => {
                let (dur, pct) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{name}: expected +Dms=M%"))?;
                Ok(Phase::Flash {
                    at_ms,
                    dur_ms: parse_ms(dur, name)?,
                    pct: pct
                        .strip_suffix('%')
                        .ok_or_else(|| format!("{name}: expected M%"))?
                        .parse()
                        .map_err(|e| format!("{name}: {e}"))?,
                })
            }
            "zipf" => {
                let (dur, theta) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{name}: expected +Dms=T"))?;
                Ok(Phase::Zipf {
                    at_ms,
                    dur_ms: parse_ms(dur, name)?,
                    theta_centi: theta.parse().map_err(|e| format!("{name}: {e}"))?,
                })
            }
            "stall" => {
                let (dur, sink) = rest
                    .split_once('#')
                    .ok_or_else(|| format!("{name}: expected +Dms#K"))?;
                Ok(Phase::Stall {
                    at_ms,
                    dur_ms: parse_ms(dur, name)?,
                    sink: sink.parse().map_err(|e| format!("{name}: {e}"))?,
                })
            }
            "storm" => {
                let (dur, burst) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{name}: expected +Dms=B"))?;
                Ok(Phase::Storm {
                    at_ms,
                    dur_ms: parse_ms(dur, name)?,
                    burst: burst.parse().map_err(|e| format!("{name}: {e}"))?,
                })
            }
            other => Err(format!("unknown phase kind {other:?}")),
        }
    }
}

/// A complete offered-load description; see the module docs for the
/// literal grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Concurrent users (one publish driver each).
    pub users: u32,
    /// Subjects (one sink process each); drivers pick a subject per
    /// message, uniformly unless a `zipf` phase is active.
    pub subjects: u32,
    /// Seed feeding every driver's sample stream.
    pub seed: u64,
    /// Base publish rate per user, messages per logical second.
    pub rate_per_sec: u32,
    /// Driver tick (ms of virtual CPU charged per iteration).
    pub tick_ms: u64,
    /// Logical end of the offered load; drivers then flush and finish.
    pub horizon_ms: u64,
    /// Message-size mix.
    pub mix: MessageMix,
    /// Load-modulating phases.
    pub phases: Vec<Phase>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        // rate=5/s is the paper's mean operating point (4.2 short +
        // 0.35 long messages per user-second, §5.3) rounded to the
        // integer grid the literal uses.
        WorkloadSpec {
            users: 4,
            subjects: 2,
            seed: 1,
            rate_per_sec: 5,
            tick_ms: 50,
            horizon_ms: 400,
            mix: MessageMix::paper(),
            phases: Vec::new(),
        }
    }
}

/// Generator processes a compiled workload spawns (one per processing
/// node outside the sink node). Like the paper's §5.3 user simulators,
/// each generator models a *cohort* of `users / GENERATORS` users —
/// one process per node can pace with virtual CPU without co-located
/// generators queueing behind each other's compute.
pub const GENERATORS: u32 = 2;

impl WorkloadSpec {
    /// The spec at a different user count (the capacity search's knob).
    pub fn with_users(mut self, users: u32) -> Self {
        self.users = users;
        self
    }

    /// Generator processes this spec compiles to.
    pub fn generators(&self) -> u32 {
        GENERATORS.min(self.users)
    }

    /// Users simulated by generator `gen` (users are dealt round-robin:
    /// generator `g` takes users `g, g+G, g+2G, …`).
    pub fn cohort(&self, gen: u32) -> u32 {
        let g = self.generators();
        (self.users + g - 1 - gen) / g
    }

    /// The rate multiplier at logical instant `t_ms`, in percent of the
    /// base rate: active diurnal and flash phases multiply together.
    pub fn multiplier_pct(&self, t_ms: u64) -> u64 {
        let mut pct: u64 = 100;
        for p in &self.phases {
            if !p.active(t_ms) {
                continue;
            }
            match *p {
                Phase::Diurnal {
                    at_ms,
                    period_ms,
                    lo_pct,
                    hi_pct,
                    ..
                } => {
                    // Triangle wave in integer per-mill units.
                    let pos = (t_ms - at_ms) % period_ms;
                    let mill = pos * 1000 / period_ms;
                    let tri = if mill < 500 {
                        2 * mill
                    } else {
                        2 * (1000 - mill)
                    };
                    let lo = lo_pct.min(hi_pct) as u64;
                    let hi = lo_pct.max(hi_pct) as u64;
                    pct = pct * (lo + (hi - lo) * tri / 1000) / 100;
                }
                Phase::Flash { pct: m, .. } => pct = pct * m as u64 / 100,
                _ => {}
            }
        }
        pct
    }

    /// The subject-skew exponent active at `t_ms` (centi-units), if any.
    pub fn zipf_at(&self, t_ms: u64) -> Option<u32> {
        self.phases
            .iter()
            .filter(|p| p.active(t_ms))
            .filter_map(|p| match *p {
                Phase::Zipf { theta_centi, .. } => Some(theta_centi),
                _ => None,
            })
            .next_back()
    }

    /// True if sink `sink` is inside a stall window at `t_ms`.
    pub fn stalled(&self, sink: u32, t_ms: u64) -> bool {
        self.phases.iter().any(|p| {
            p.active(t_ms)
                && matches!(*p, Phase::Stall { sink: s, .. } if s % self.subjects.max(1) == sink)
        })
    }

    /// Extra checkpoint messages per driver tick at `t_ms`.
    pub fn storm_burst(&self, t_ms: u64) -> u32 {
        self.phases
            .iter()
            .filter(|p| p.active(t_ms))
            .map(|p| match *p {
                Phase::Storm { burst, .. } => burst,
                _ => 0,
            })
            .sum()
    }

    /// Validates the parts the drivers depend on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("users must be >= 1".into());
        }
        if self.subjects == 0 {
            return Err("subjects must be >= 1".into());
        }
        if self.rate_per_sec == 0 {
            return Err("rate must be >= 1/s".into());
        }
        if self.tick_ms == 0 {
            return Err("tick must be >= 1ms".into());
        }
        if self.horizon_ms < self.tick_ms {
            return Err("horizon must cover at least one tick".into());
        }
        if self.mix.short_bytes < 8 || self.mix.long_bytes < 8 {
            return Err("mix sizes must be >= 8 bytes (body header)".into());
        }
        if self.mix.short_pct > 100 {
            return Err("mix short percentage > 100%".into());
        }
        Ok(())
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "users={} subjects={} seed={} rate={}/s tick={}ms horizon={}ms mix={}%x{}/{}",
            self.users,
            self.subjects,
            self.seed,
            self.rate_per_sec,
            self.tick_ms,
            self.horizon_ms,
            self.mix.short_pct,
            self.mix.short_bytes,
            self.mix.long_bytes
        )?;
        for p in &self.phases {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

impl FromStr for WorkloadSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut users = None;
        let mut subjects = None;
        let mut seed = None;
        let mut rate = None;
        let mut tick = None;
        let mut horizon = None;
        let mut mix = None;
        let mut phases = Vec::new();
        for tok in s.split_whitespace() {
            if let Some(v) = tok.strip_prefix("users=") {
                users = Some(v.parse().map_err(|e| format!("users: {e}"))?);
            } else if let Some(v) = tok.strip_prefix("subjects=") {
                subjects = Some(v.parse().map_err(|e| format!("subjects: {e}"))?);
            } else if let Some(v) = tok.strip_prefix("seed=") {
                seed = Some(v.parse().map_err(|e| format!("seed: {e}"))?);
            } else if let Some(v) = tok.strip_prefix("rate=") {
                let v = v
                    .strip_suffix("/s")
                    .ok_or_else(|| format!("rate: expected <n>/s, got {v:?}"))?;
                rate = Some(v.parse().map_err(|e| format!("rate: {e}"))?);
            } else if let Some(v) = tok.strip_prefix("tick=") {
                tick = Some(parse_ms(v, "tick")?);
            } else if let Some(v) = tok.strip_prefix("horizon=") {
                horizon = Some(parse_ms(v, "horizon")?);
            } else if let Some(v) = tok.strip_prefix("mix=") {
                let (pct, sizes) = v
                    .split_once('x')
                    .ok_or_else(|| format!("mix: expected P%xS/L, got {v:?}"))?;
                let short_pct = pct
                    .strip_suffix('%')
                    .ok_or_else(|| format!("mix: expected P%, got {pct:?}"))?
                    .parse()
                    .map_err(|e| format!("mix: {e}"))?;
                let (short, long) = sizes
                    .split_once('/')
                    .ok_or_else(|| format!("mix: expected S/L, got {sizes:?}"))?;
                mix = Some(MessageMix {
                    short_pct,
                    short_bytes: short.parse().map_err(|e| format!("mix: {e}"))?,
                    long_bytes: long.parse().map_err(|e| format!("mix: {e}"))?,
                });
            } else {
                phases.push(tok.parse()?);
            }
        }
        let spec = WorkloadSpec {
            users: users.ok_or("missing users=")?,
            subjects: subjects.ok_or("missing subjects=")?,
            seed: seed.ok_or("missing seed=")?,
            rate_per_sec: rate.ok_or("missing rate=")?,
            tick_ms: tick.ok_or("missing tick=")?,
            horizon_ms: horizon.ok_or("missing horizon=")?,
            mix: mix.ok_or("missing mix=")?,
            phases,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The four canonical shapes the capacity bin sweeps: each is the
/// default operating point with one stressor applied.
pub fn canonical_shapes(seed: u64) -> Vec<(&'static str, WorkloadSpec)> {
    let base = WorkloadSpec {
        seed,
        ..WorkloadSpec::default()
    };
    let h = base.horizon_ms;
    vec![
        (
            "diurnal",
            WorkloadSpec {
                phases: vec![Phase::Diurnal {
                    at_ms: 0,
                    dur_ms: h,
                    period_ms: h / 2,
                    lo_pct: 40,
                    hi_pct: 130,
                }],
                ..base.clone()
            },
        ),
        (
            "hotspot",
            WorkloadSpec {
                phases: vec![Phase::Zipf {
                    at_ms: 0,
                    dur_ms: h,
                    theta_centi: 120,
                }],
                ..base.clone()
            },
        ),
        (
            "flash_crowd",
            WorkloadSpec {
                phases: vec![Phase::Flash {
                    at_ms: h / 4,
                    dur_ms: h / 4,
                    pct: 300,
                }],
                ..base.clone()
            },
        ),
        (
            "stalled_receiver",
            WorkloadSpec {
                phases: vec![Phase::Stall {
                    at_ms: h / 4,
                    dur_ms: h / 2,
                    sink: 1,
                }],
                ..base
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_literal_round_trips() {
        let spec = WorkloadSpec::default();
        let lit = spec.to_string();
        assert_eq!(
            lit,
            "users=4 subjects=2 seed=1 rate=5/s tick=50ms horizon=400ms mix=92%x128/1024"
        );
        assert_eq!(lit.parse::<WorkloadSpec>().unwrap(), spec);
    }

    #[test]
    fn cohorts_deal_users_round_robin() {
        let spec = WorkloadSpec::default().with_users(5);
        assert_eq!(spec.generators(), 2);
        assert_eq!(spec.cohort(0), 3, "users 0, 2, 4");
        assert_eq!(spec.cohort(1), 2, "users 1, 3");
        let one = WorkloadSpec::default().with_users(1);
        assert_eq!(one.generators(), 1);
        assert_eq!(one.cohort(0), 1);
    }

    #[test]
    fn all_phase_kinds_round_trip() {
        let lit = "users=12 subjects=4 seed=7 rate=25/s tick=20ms horizon=400ms \
                   mix=92%x128/1024 diurnal@0ms+400ms~200ms=40..100% flash@120ms+60ms=300% \
                   zipf@0ms+400ms=120 stall@150ms+80ms#1 storm@200ms+40ms=2";
        let spec: WorkloadSpec = lit.parse().unwrap();
        assert_eq!(spec.phases.len(), 5);
        let printed = spec.to_string();
        assert_eq!(printed.parse::<WorkloadSpec>().unwrap(), spec);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("users=4".parse::<WorkloadSpec>().is_err());
        assert!(
            "users=0 subjects=2 seed=1 rate=25/s tick=20ms horizon=400ms mix=92%x128/1024"
                .parse::<WorkloadSpec>()
                .is_err()
        );
        assert!(
            "users=4 subjects=2 seed=1 rate=25/s tick=20ms horizon=400ms mix=92%x128/1024 zap@1ms+2ms=3"
                .parse::<WorkloadSpec>()
                .is_err()
        );
        assert!(
            "users=4 subjects=2 seed=1 rate=25 tick=20ms horizon=400ms mix=92%x128/1024"
                .parse::<WorkloadSpec>()
                .is_err()
        );
        assert!(
            "users=4 subjects=2 seed=1 rate=25/s tick=20ms horizon=400ms mix=92%x128/1024 diurnal@0ms+400ms~0ms=40..100%"
                .parse::<WorkloadSpec>()
                .is_err()
        );
    }

    #[test]
    fn multiplier_composes_phases() {
        let spec = WorkloadSpec {
            phases: vec![
                Phase::Flash {
                    at_ms: 100,
                    dur_ms: 100,
                    pct: 300,
                },
                Phase::Flash {
                    at_ms: 150,
                    dur_ms: 100,
                    pct: 200,
                },
            ],
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.multiplier_pct(50), 100);
        assert_eq!(spec.multiplier_pct(120), 300);
        assert_eq!(spec.multiplier_pct(160), 600, "overlap multiplies");
        assert_eq!(spec.multiplier_pct(220), 200);
        assert_eq!(spec.multiplier_pct(260), 100);
    }

    #[test]
    fn diurnal_wave_peaks_mid_period() {
        let spec = WorkloadSpec {
            phases: vec![Phase::Diurnal {
                at_ms: 0,
                dur_ms: 400,
                period_ms: 200,
                lo_pct: 40,
                hi_pct: 100,
            }],
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.multiplier_pct(0), 40, "trough at phase start");
        assert_eq!(spec.multiplier_pct(100), 100, "crest half a period in");
        assert_eq!(spec.multiplier_pct(200), 40, "back at the trough");
        assert!(spec.multiplier_pct(50) > 40 && spec.multiplier_pct(50) < 100);
    }

    #[test]
    fn stall_and_storm_and_zipf_windows() {
        let spec = WorkloadSpec {
            subjects: 3,
            phases: vec![
                Phase::Stall {
                    at_ms: 100,
                    dur_ms: 50,
                    sink: 4, // wraps to sink 1 over 3 subjects
                },
                Phase::Storm {
                    at_ms: 200,
                    dur_ms: 50,
                    burst: 2,
                },
                Phase::Zipf {
                    at_ms: 0,
                    dur_ms: 400,
                    theta_centi: 90,
                },
                Phase::Zipf {
                    at_ms: 100,
                    dur_ms: 100,
                    theta_centi: 150,
                },
            ],
            ..WorkloadSpec::default()
        };
        assert!(spec.stalled(1, 120));
        assert!(!spec.stalled(0, 120));
        assert!(!spec.stalled(1, 160));
        assert_eq!(spec.storm_burst(220), 2);
        assert_eq!(spec.storm_burst(120), 0);
        assert_eq!(spec.zipf_at(50), Some(90));
        assert_eq!(spec.zipf_at(150), Some(150), "last active skew wins");
        assert_eq!(spec.zipf_at(300), Some(90));
    }

    #[test]
    fn canonical_shapes_parse_back() {
        for (name, spec) in canonical_shapes(42) {
            let lit = spec.to_string();
            assert_eq!(lit.parse::<WorkloadSpec>().unwrap(), spec, "{name}: {lit}");
        }
    }
}
