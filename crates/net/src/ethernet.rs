//! CSMA/CD Ethernet and the Acknowledging Ethernet of §6.1.1.
//!
//! The model captures what Figure 6.1/6.2 are about: carrier sense,
//! collisions inside the collision window, binary exponential backoff,
//! and — in acknowledging mode — time slots reserved after every data
//! frame during which only the receiver (and, for publishing, the
//! recorder) may answer, so acknowledgements never contend.
//!
//! Granularity: one in-flight transmission at a time; a second submission
//! arriving within one slot time of transmission start collides with it
//! (both abort and back off), while later submissions sense carrier and
//! defer to the end of the busy period. Deferred stations retry
//! simultaneously when the medium frees, so convoys re-collide exactly as
//! on a real Ethernet under load.

use crate::frame::{Frame, StationId};
use crate::lan::{DeliveryFanout, Lan, LanAction, LanConfig, LanStats, RecorderRouter};
use publishing_sim::fault::FaultPlan;
use publishing_sim::rng::DetRng;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// End of the data portion of the current transmission.
    EndData,
    /// End of the reserved acknowledge slots (acknowledging mode).
    EndAckSlots,
    /// A station's backoff/deferral retry.
    Retry(StationId),
}

#[derive(Debug)]
enum MediumState {
    Idle,
    /// A data frame is on the wire.
    Data {
        from: StationId,
        started: SimTime,
        end: SimTime,
        collided: bool,
        /// Recorders gating this frame (routed per frame, or the global
        /// set), fixed when transmission started.
        required: Vec<StationId>,
        /// Length of the reserved ack slots after this frame.
        ack_len: SimDuration,
    },
    /// Reserved acknowledge slots after a successful data frame.
    AckSlots {
        until: SimTime,
    },
}

#[derive(Debug, Default)]
struct Station {
    up: bool,
    backlog: VecDeque<Frame>,
    attempts: u32,
    waiting_retry: bool,
}

/// A CSMA/CD broadcast medium, in standard or acknowledging mode.
pub struct Ethernet {
    cfg: LanConfig,
    ack_mode: bool,
    stations: BTreeMap<StationId, Station>,
    recorders: Vec<StationId>,
    router: Option<RecorderRouter>,
    state: MediumState,
    timers: HashMap<u64, TimerKind>,
    next_token: u64,
    faults: FaultPlan,
    rng: DetRng,
    stats: LanStats,
}

impl Ethernet {
    /// Creates a standard (non-acknowledging) CSMA/CD Ethernet.
    pub fn standard(cfg: LanConfig) -> Self {
        Self::new(cfg, false)
    }

    /// Creates an Acknowledging Ethernet (§6.1.1): a slot is reserved after
    /// each frame for the receiver's ack, plus one per required recorder.
    pub fn acknowledging(cfg: LanConfig) -> Self {
        Self::new(cfg, true)
    }

    fn new(cfg: LanConfig, ack_mode: bool) -> Self {
        let rng = DetRng::new(cfg.seed ^ 0xE7E7);
        Ethernet {
            cfg,
            ack_mode,
            stations: BTreeMap::new(),
            recorders: Vec::new(),
            router: None,
            state: MediumState::Idle,
            timers: HashMap::new(),
            next_token: 0,
            faults: FaultPlan::new(),
            rng,
            stats: LanStats::default(),
        }
    }

    /// Returns whether the medium is currently idle.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, MediumState::Idle)
    }

    fn set_timer(&mut self, at: SimTime, kind: TimerKind, out: &mut Vec<LanAction>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        out.push(LanAction::SetTimer { at, token });
    }

    fn busy_until(&self) -> Option<SimTime> {
        match self.state {
            MediumState::Idle => None,
            MediumState::Data { end, ack_len, .. } => Some(match self.ack_mode {
                true => end + ack_len,
                false => end,
            }),
            MediumState::AckSlots { until } => Some(until),
        }
    }

    fn ack_slots_len(&self) -> SimDuration {
        // One slot for the receiver plus one per required recorder.
        let live_recorders = self
            .recorders
            .iter()
            .filter(|r| self.stations.get(r).map(|s| s.up).unwrap_or(false))
            .count() as u64;
        self.cfg.ack_slot.saturating_mul(1 + live_recorders)
    }

    fn backoff(&mut self, attempts: u32) -> SimDuration {
        let exp = attempts.min(self.cfg.max_backoff_exp);
        let slots = self.rng.below(1u64 << exp);
        self.cfg.slot_time.saturating_mul(slots)
    }

    fn try_start(&mut self, now: SimTime, st_id: StationId, out: &mut Vec<LanAction>) {
        let Some(st) = self.stations.get(&st_id) else {
            return;
        };
        if !st.up || st.backlog.is_empty() || st.waiting_retry {
            return;
        }
        enum Decision {
            Start,
            Collide,
            Defer,
        }
        let decision = match &mut self.state {
            MediumState::Idle => Decision::Start,
            MediumState::Data {
                started, collided, ..
            } => {
                if now.saturating_since(*started) < self.cfg.slot_time && !*collided {
                    // Inside the collision window: both transmissions die.
                    *collided = true;
                    Decision::Collide
                } else {
                    Decision::Defer
                }
            }
            // The reserved slots read as carrier; defer.
            MediumState::AckSlots { .. } => Decision::Defer,
        };
        match decision {
            Decision::Start => {
                let frame = self.stations[&st_id]
                    .backlog
                    .front()
                    .expect("checked")
                    .clone();
                let end = now + self.cfg.frame_time(frame.wire_bytes());
                // Resolve this frame's recorder set now: in a sharded
                // tier only the owning shard(s) get reserved ack slots.
                let (required, ack_len) = match self.router.as_ref().and_then(|r| r(&frame)) {
                    Some(set) => {
                        let len = self.cfg.ack_slot.saturating_mul(1 + set.len() as u64);
                        (set, len)
                    }
                    None => (self.recorders.clone(), self.ack_slots_len()),
                };
                self.state = MediumState::Data {
                    from: st_id,
                    started: now,
                    end,
                    collided: false,
                    required,
                    ack_len,
                };
                self.stats.busy.set_busy(now);
                // The frame stays at the backlog head; delivery happens on
                // EndData.
                self.set_timer(end, TimerKind::EndData, out);
            }
            Decision::Collide => {
                self.stats.collisions.inc();
                // The newcomer backs off now; the current transmitter backs
                // off when its EndData timer fires.
                let st = self.stations.get_mut(&st_id).expect("checked");
                st.attempts += 1;
                st.waiting_retry = true;
                let attempts = st.attempts;
                if attempts > self.cfg.max_attempts {
                    self.give_up(now, st_id, out);
                } else {
                    let delay = self.backoff(attempts);
                    self.set_timer(now + delay, TimerKind::Retry(st_id), out);
                }
            }
            Decision::Defer => self.defer(st_id, out),
        }
    }

    fn defer(&mut self, st_id: StationId, out: &mut Vec<LanAction>) {
        let until = self.busy_until().expect("medium busy");
        let st = self.stations.get_mut(&st_id).expect("attached");
        st.waiting_retry = true;
        self.set_timer(until, TimerKind::Retry(st_id), out);
    }

    fn give_up(&mut self, now: SimTime, st_id: StationId, out: &mut Vec<LanAction>) {
        let st = self.stations.get_mut(&st_id).expect("attached");
        let collisions = st.attempts;
        st.backlog.pop_front();
        st.attempts = 0;
        st.waiting_retry = false;
        self.stats.aborted.inc();
        out.push(LanAction::TxOutcome {
            at: now,
            station: st_id,
            ok: false,
            collisions,
        });
        // The station may have further backlog; contend for it normally.
        self.try_start(now, st_id, out);
    }

    fn end_data(&mut self, now: SimTime, out: &mut Vec<LanAction>) {
        let MediumState::Data {
            from,
            end,
            collided,
            required,
            ack_len,
            ..
        } = std::mem::replace(&mut self.state, MediumState::Idle)
        else {
            return;
        };
        debug_assert_eq!(end, now);
        if collided {
            self.stats.busy.set_idle(now);
            // The transmitter's frame died; back off and retry.
            let st = self.stations.get_mut(&from).expect("attached");
            st.attempts += 1;
            st.waiting_retry = true;
            let attempts = st.attempts;
            if attempts > self.cfg.max_attempts {
                self.give_up(now, from, out);
            } else {
                let delay = self.backoff(attempts);
                self.set_timer(now + delay, TimerKind::Retry(from), out);
            }
            return;
        }
        // Successful transmission: deliver to every live station but the
        // sender; recorder gating per §6.1.
        let st = self.stations.get_mut(&from).expect("attached");
        let frame = st.backlog.pop_front().expect("frame in flight");
        let collisions = st.attempts;
        st.attempts = 0;
        // A self-addressed frame loops back to its sender (published
        // intranode messages, §4.4.1).
        let to_self = frame.dst == crate::frame::Destination::Station(from);
        let receivers: Vec<StationId> = self
            .stations
            .iter()
            .filter(|&(&id, s)| s.up && (id != from || to_self))
            .map(|(&id, _)| id)
            .collect();
        // A required recorder gates even while down (§3.3.4); survivors
        // cover for a dead peer by shrinking the set explicitly (§6.3),
        // and a sharded tier routes it per frame (`required` was fixed
        // when this transmission started).
        let mut deliveries = DeliveryFanout {
            faults: &self.faults,
            rng: &mut self.rng,
            stats: &mut self.stats,
            dup_gap: self.cfg.interpacket,
        }
        .run(now, &frame, &receivers, &required);
        out.append(&mut deliveries);
        out.push(LanAction::TxOutcome {
            at: now,
            station: from,
            ok: true,
            collisions,
        });
        if self.ack_mode {
            let until = now + ack_len;
            self.state = MediumState::AckSlots { until };
            self.set_timer(until, TimerKind::EndAckSlots, out);
        } else {
            self.stats.busy.set_idle(now);
            self.try_start(now, from, out);
        }
    }

    fn end_ack_slots(&mut self, now: SimTime, out: &mut Vec<LanAction>) {
        if matches!(self.state, MediumState::AckSlots { .. }) {
            self.state = MediumState::Idle;
            self.stats.busy.set_idle(now);
            // Any station with a backlog and no pending retry may start.
            let ids: Vec<StationId> = self.stations.keys().copied().collect();
            for id in ids {
                if matches!(self.state, MediumState::Idle) {
                    self.try_start(now, id, out);
                }
            }
        }
    }
}

impl Lan for Ethernet {
    fn attach(&mut self, station: StationId) {
        self.stations.insert(
            station,
            Station {
                up: true,
                ..Station::default()
            },
        );
    }

    fn set_station_up(&mut self, station: StationId, up: bool) {
        if let Some(s) = self.stations.get_mut(&station) {
            s.up = up;
            if !up {
                s.backlog.clear();
                s.attempts = 0;
            }
        }
    }

    fn set_required_recorders(&mut self, recorders: Vec<StationId>) {
        self.recorders = recorders;
    }

    fn set_recorder_router(&mut self, router: Option<RecorderRouter>) {
        self.router = router;
    }

    fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    fn submit(&mut self, now: SimTime, frame: Frame) -> Vec<LanAction> {
        let mut out = Vec::new();
        let src = frame.src;
        let Some(st) = self.stations.get_mut(&src) else {
            return out;
        };
        if !st.up {
            return out;
        }
        self.stats.submitted.inc();
        self.stats.wire_bytes.add(frame.wire_bytes() as u64);
        st.backlog.push_back(frame);
        self.try_start(now, src, &mut out);
        out
    }

    fn timer(&mut self, now: SimTime, token: u64) -> Vec<LanAction> {
        let mut out = Vec::new();
        let Some(kind) = self.timers.remove(&token) else {
            return out;
        };
        match kind {
            TimerKind::EndData => self.end_data(now, &mut out),
            TimerKind::EndAckSlots => self.end_ack_slots(now, &mut out),
            TimerKind::Retry(st_id) => {
                if let Some(st) = self.stations.get_mut(&st_id) {
                    st.waiting_retry = false;
                }
                self.try_start(now, st_id, &mut out);
            }
        }
        out
    }

    fn stats(&self) -> &LanStats {
        &self.stats
    }

    fn config(&self) -> Option<&LanConfig> {
        Some(&self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Destination;
    use publishing_sim::event::Scheduler;

    /// Drives an Ethernet until quiescent, collecting deliveries/outcomes.
    struct Driver {
        lan: Ethernet,
        sched: Scheduler<u64>,
        deliveries: Vec<(SimTime, StationId, Frame, bool)>,
        outcomes: Vec<(SimTime, StationId, bool, u32)>,
    }

    impl Driver {
        fn new(lan: Ethernet) -> Self {
            Driver {
                lan,
                sched: Scheduler::new(),
                deliveries: Vec::new(),
                outcomes: Vec::new(),
            }
        }

        fn apply(&mut self, actions: Vec<LanAction>) {
            for a in actions {
                match a {
                    LanAction::SetTimer { at, token } => {
                        self.sched.schedule_at(at, token);
                    }
                    LanAction::Deliver {
                        at,
                        to,
                        frame,
                        recorder_ok,
                    } => {
                        self.deliveries.push((at, to, frame, recorder_ok));
                    }
                    LanAction::TxOutcome {
                        at,
                        station,
                        ok,
                        collisions,
                    } => {
                        self.outcomes.push((at, station, ok, collisions));
                    }
                }
            }
        }

        fn submit_at(&mut self, at: SimTime, frame: Frame) {
            // Run the queue up to `at`, then submit.
            while let Some(t) = self.sched.peek_time() {
                if t > at {
                    break;
                }
                let (now, token) = self.sched.pop().expect("peeked");
                let actions = self.lan.timer(now, token);
                self.apply(actions);
            }
            self.sched.advance_to(at);
            let actions = self.lan.submit(at, frame);
            self.apply(actions);
        }

        fn run_to_quiescence(&mut self) {
            while let Some((now, token)) = self.sched.pop() {
                let actions = self.lan.timer(now, token);
                self.apply(actions);
            }
        }
    }

    fn net(n: u32, ack: bool) -> Ethernet {
        let cfg = LanConfig {
            seed: 7,
            ..LanConfig::default()
        };
        let mut lan = if ack {
            Ethernet::acknowledging(cfg)
        } else {
            Ethernet::standard(cfg)
        };
        for i in 0..n {
            lan.attach(StationId(i));
        }
        lan
    }

    fn bcast(from: u32, len: usize) -> Frame {
        Frame::new(StationId(from), Destination::Broadcast, vec![0xAB; len])
    }

    #[test]
    fn lone_transmission_delivers_to_all() {
        let mut d = Driver::new(net(3, false));
        d.submit_at(SimTime::ZERO, bcast(0, 100));
        d.run_to_quiescence();
        let to: Vec<_> = d.deliveries.iter().map(|(_, to, _, _)| *to).collect();
        assert_eq!(to, vec![StationId(1), StationId(2)]);
        assert_eq!(d.outcomes.len(), 1);
        assert!(d.outcomes[0].2);
        assert_eq!(d.lan.stats().collisions.get(), 0);
    }

    #[test]
    fn simultaneous_transmissions_collide_then_recover() {
        let mut d = Driver::new(net(3, false));
        d.submit_at(SimTime::ZERO, bcast(0, 100));
        // Within the 51.2 µs collision window.
        d.submit_at(SimTime::from_nanos(10_000), bcast(1, 100));
        d.run_to_quiescence();
        assert!(d.lan.stats().collisions.get() >= 1);
        // Both frames eventually deliver (2 receivers each).
        assert_eq!(d.deliveries.len(), 4);
        assert_eq!(d.outcomes.iter().filter(|o| o.2).count(), 2);
    }

    #[test]
    fn late_submission_defers_without_collision() {
        let mut d = Driver::new(net(3, false));
        d.submit_at(SimTime::ZERO, bcast(0, 1000));
        // Well past the collision window, still during the frame.
        d.submit_at(SimTime::from_micros(200), bcast(1, 100));
        d.run_to_quiescence();
        assert_eq!(d.lan.stats().collisions.get(), 0);
        assert_eq!(d.deliveries.len(), 4);
        // The deferred frame delivers after the first finishes.
        let t0 = d.deliveries[0].0;
        let t1 = d.deliveries[3].0;
        assert!(t1 > t0);
    }

    #[test]
    fn ack_mode_reserves_slots() {
        let mut lan = net(3, true);
        lan.set_required_recorders(vec![StationId(2)]);
        let mut d = Driver::new(lan);
        d.submit_at(SimTime::ZERO, bcast(0, 100));
        d.run_to_quiescence();
        // Busy time must include data + 2 ack slots (receiver + recorder).
        let cfg = LanConfig::default();
        let expected = cfg.frame_time(bcast(0, 100).wire_bytes()) + cfg.ack_slot.saturating_mul(2);
        let busy = d.lan.stats().busy.busy_time(SimTime::from_secs(1));
        assert_eq!(busy, expected);
    }

    #[test]
    fn deferred_convoy_recollides_at_medium_free() {
        // Two stations defer behind a long frame; both retry at the same
        // instant and collide — the emergent convoy effect.
        let mut d = Driver::new(net(4, false));
        d.submit_at(SimTime::ZERO, bcast(0, 1000));
        d.submit_at(SimTime::from_micros(300), bcast(1, 100));
        d.submit_at(SimTime::from_micros(400), bcast(2, 100));
        d.run_to_quiescence();
        assert!(d.lan.stats().collisions.get() >= 1);
        // All three frames deliver eventually (3 receivers each).
        assert_eq!(d.deliveries.len(), 9);
    }

    #[test]
    fn down_station_cannot_submit() {
        let mut lan = net(2, false);
        lan.set_station_up(StationId(0), false);
        let actions = lan.submit(SimTime::ZERO, bcast(0, 10));
        assert!(actions.is_empty());
        assert_eq!(lan.stats().submitted.get(), 0);
    }

    #[test]
    fn recorder_gating_flags_deliveries() {
        let mut lan = net(3, true);
        lan.set_required_recorders(vec![StationId(2)]);
        lan.set_faults(FaultPlan::new().with_frame_corruption(1.0));
        let mut d = Driver::new(lan);
        d.submit_at(SimTime::ZERO, bcast(0, 64));
        d.run_to_quiescence();
        assert!(!d.deliveries.is_empty());
        for (_, _, _, recorder_ok) in &d.deliveries {
            assert!(!recorder_ok);
        }
    }

    #[test]
    fn utilization_grows_with_load() {
        let mut light = Driver::new(net(2, false));
        light.submit_at(SimTime::ZERO, bcast(0, 100));
        light.run_to_quiescence();
        let mut heavy = Driver::new(net(2, false));
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            heavy.submit_at(t, bcast(0, 1000));
            t += SimDuration::from_micros(100);
        }
        heavy.run_to_quiescence();
        let window = SimTime::from_millis(30);
        assert!(
            heavy.lan.stats().busy.utilization(window) > light.lan.stats().busy.utilization(window)
        );
    }
}
