//! A simulated disk with the Figure 5.2 service model.
//!
//! Service time for an operation is a fixed positioning latency (3 ms in
//! the paper's recorder) plus size divided by the transfer rate (2 MB/s).
//! Operations are FCFS; the disk is a single server, so queueing delay
//! emerges naturally under load — that queueing is what saturates first in
//! Figure 5.5 before the 4 KB buffering fix.

use publishing_sim::rng::DetRng;
use publishing_sim::stats::{Counter, Summary, Utilization};
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Disk service parameters.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Fixed per-operation positioning latency (Fig 5.2: 3 ms).
    pub latency: SimDuration,
    /// Sustained transfer rate in bytes per second (Fig 5.2: 2 MB/s).
    pub bytes_per_sec: u64,
    /// Page size in bytes (the 4 KB buffering unit of §5.1).
    pub page_size: usize,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            latency: SimDuration::from_millis(3),
            bytes_per_sec: 2_000_000,
            page_size: 4096,
        }
    }
}

impl DiskParams {
    /// Returns the service time for an operation moving `bytes`.
    pub fn service_time(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as u64).saturating_mul(1_000_000_000) / self.bytes_per_sec;
        self.latency + SimDuration::from_nanos(ns)
    }
}

/// Injected disk failure modes, all off by default so a plain
/// [`Disk`] behaves exactly as before.
///
/// Transient errors model a controller hiccup: the operation occupies the
/// disk for its full service time but completes with
/// [`DiskResult::TransientError`] and no effect; the caller retries.
/// Torn writes model power loss mid-transfer: when the host crashes (see
/// [`Disk::crash_tear_inflight`]), each in-flight write leaves only a
/// prefix of its data on the page.
#[derive(Debug, Clone)]
pub struct DiskFaults {
    /// Probability an operation fails transiently.
    pub transient_error: f64,
    /// Whether a crash tears in-flight writes.
    pub torn_writes: bool,
    /// Seed for the disk's private fault stream.
    pub seed: u64,
}

impl Default for DiskFaults {
    fn default() -> Self {
        DiskFaults {
            transient_error: 0.0,
            torn_writes: false,
            seed: 0,
        }
    }
}

/// Identifies an outstanding disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoToken(pub u64);

/// A disk request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskOp {
    /// Write `data` to `page` (data length at most the page size).
    Write {
        /// Target page number.
        page: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Read the contents of `page`.
    Read {
        /// Source page number.
        page: u64,
    },
}

/// The result handed back when an operation completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskResult {
    /// A write became durable.
    Written {
        /// The page written.
        page: u64,
    },
    /// A read finished; empty pages read as an empty vector.
    Data {
        /// The page read.
        page: u64,
        /// Its contents at read time.
        data: Vec<u8>,
    },
    /// The operation failed transiently (injected fault) with no effect on
    /// the platter; the original operation is returned for resubmission.
    TransientError {
        /// The operation that failed.
        op: DiskOp,
    },
}

/// Counters and gauges a disk maintains.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Completed writes.
    pub writes: Counter,
    /// Completed reads.
    pub reads: Counter,
    /// Bytes written.
    pub bytes_written: Counter,
    /// Bytes read.
    pub bytes_read: Counter,
    /// Busy-time integrator (Fig 5.5a's utilization source).
    pub busy: Utilization,
    /// Per-operation response time (queueing + service), milliseconds.
    pub response_ms: Summary,
    /// Operations that failed transiently (injected).
    pub transient_errors: Counter,
    /// In-flight writes torn by a crash (injected).
    pub torn_writes: Counter,
}

struct Pending {
    op: DiskOp,
    submitted: SimTime,
    completes: SimTime,
    /// Fault draw fixed at submission: this operation will fail.
    fails: bool,
}

/// A single simulated disk.
///
/// The driver calls [`Disk::submit`], schedules an event at the returned
/// completion time, and then calls [`Disk::complete`].
pub struct Disk {
    params: DiskParams,
    pages: HashMap<u64, Vec<u8>>,
    pending: HashMap<IoToken, Pending>,
    busy_until: SimTime,
    next_token: u64,
    stats: DiskStats,
    faults: DiskFaults,
    fault_rng: DetRng,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            pages: HashMap::new(),
            pending: HashMap::new(),
            busy_until: SimTime::ZERO,
            next_token: 0,
            stats: DiskStats::default(),
            faults: DiskFaults::default(),
            fault_rng: DetRng::new(0xD15C),
        }
    }

    /// Installs injected failure modes (and reseeds the fault stream).
    /// The default [`DiskFaults`] restores fault-free behaviour.
    pub fn set_faults(&mut self, faults: DiskFaults) {
        self.fault_rng = DetRng::new(faults.seed ^ 0xD15C);
        self.faults = faults;
    }

    /// Returns the service parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Returns the installed failure modes.
    pub fn faults(&self) -> &DiskFaults {
        &self.faults
    }

    /// Returns the disk's counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Returns the number of in-flight operations.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Submits an operation at time `now`; returns the token and the time
    /// the operation will complete (FCFS behind earlier submissions).
    ///
    /// # Panics
    ///
    /// Panics if a write exceeds the page size.
    pub fn submit(&mut self, now: SimTime, op: DiskOp) -> (IoToken, SimTime) {
        let bytes = match &op {
            DiskOp::Write { data, .. } => {
                assert!(
                    data.len() <= self.params.page_size,
                    "write of {} bytes exceeds page size {}",
                    data.len(),
                    self.params.page_size
                );
                data.len()
            }
            // Reads always move a whole page.
            DiskOp::Read { .. } => self.params.page_size,
        };
        let start = now.max(self.busy_until);
        let completes = start + self.params.service_time(bytes);
        self.stats.busy.set_busy(start);
        self.busy_until = completes;
        let token = IoToken(self.next_token);
        self.next_token += 1;
        // The fault draw happens at submission (and only when injection is
        // on, so fault-free disks consume no randomness).
        let fails =
            self.faults.transient_error > 0.0 && self.fault_rng.chance(self.faults.transient_error);
        self.pending.insert(
            token,
            Pending {
                op,
                submitted: now,
                completes,
                fails,
            },
        );
        (token, completes)
    }

    /// Completes an operation; the driver must call this exactly at (or
    /// after) the completion time returned by [`Disk::submit`].
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown or completion is early.
    pub fn complete(&mut self, now: SimTime, token: IoToken) -> DiskResult {
        let p = self.pending.remove(&token).expect("unknown disk token");
        assert!(
            now >= p.completes,
            "early completion: {now} < {}",
            p.completes
        );
        self.stats
            .response_ms
            .record(p.completes.saturating_since(p.submitted).as_millis_f64());
        if self.pending.is_empty() && now >= self.busy_until {
            self.stats.busy.set_idle(self.busy_until);
        }
        if p.fails {
            self.stats.transient_errors.inc();
            return DiskResult::TransientError { op: p.op };
        }
        match p.op {
            DiskOp::Write { page, data } => {
                self.stats.writes.inc();
                self.stats.bytes_written.add(data.len() as u64);
                self.pages.insert(page, data);
                DiskResult::Written { page }
            }
            DiskOp::Read { page } => {
                self.stats.reads.inc();
                let data = self.pages.get(&page).cloned().unwrap_or_default();
                self.stats.bytes_read.add(data.len() as u64);
                DiskResult::Data { page, data }
            }
        }
    }

    /// Peeks at a page's current durable contents without timing cost.
    ///
    /// This is the "open the disk pack in the lab" operation used by
    /// rebuild logic and assertions, not by the simulated dataflow.
    pub fn peek_page(&self, page: u64) -> Option<&[u8]> {
        self.pages.get(&page).map(|v| v.as_slice())
    }

    /// Iterates all non-empty pages (for rebuild scans).
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(move |k| (k, self.pages[&k].as_slice()))
    }

    /// Crash hook: if torn writes are enabled, every in-flight write is
    /// abandoned mid-transfer, leaving only a prefix of its data on the
    /// target page. The torn operations are forgotten — their completions
    /// belong to the crashed host and must never be delivered. With torn
    /// writes off this is a no-op (in-flight writes complete normally if
    /// the driver still delivers them).
    pub fn crash_tear_inflight(&mut self) {
        if !self.faults.torn_writes {
            return;
        }
        let mut tokens: Vec<IoToken> = self
            .pending
            .iter()
            .filter(|(_, p)| matches!(p.op, DiskOp::Write { .. }))
            .map(|(&t, _)| t)
            .collect();
        tokens.sort_unstable();
        for t in tokens {
            let p = self.pending.remove(&t).expect("listed");
            if let DiskOp::Write { page, data } = p.op {
                // An empty write is a trim: there is no transfer to tear,
                // so it either happened (at completion) or it didn't.
                if data.is_empty() {
                    continue;
                }
                self.stats.torn_writes.inc();
                self.pages.insert(page, data[..data.len() / 2].to_vec());
            }
        }
    }

    /// Erases everything (models replacing the pack; not used in recovery).
    pub fn wipe(&mut self) {
        self.pages.clear();
    }

    /// Erases one page instantly, with no service time. Used only by the
    /// rebuild scan to scrub pages it has just decided are garbage (a
    /// superseded checkpoint found during recovery) — the scan already
    /// owns the disk exclusively at that point.
    pub fn wipe_page(&mut self, page: u64) {
        self.pages.remove(&page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::default())
    }

    #[test]
    fn service_time_matches_paper_parameters() {
        let p = DiskParams::default();
        // A 4 KB transfer at 2 MB/s takes 2.048 ms, plus 3 ms latency.
        assert_eq!(p.service_time(4096), SimDuration::from_micros(5_048));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 7,
                data: vec![1, 2, 3],
            },
        );
        assert_eq!(d.complete(c1, t1), DiskResult::Written { page: 7 });
        let (t2, c2) = d.submit(c1, DiskOp::Read { page: 7 });
        match d.complete(c2, t2) {
            DiskResult::Data { page, data } => {
                assert_eq!(page, 7);
                assert_eq!(data, vec![1, 2, 3]);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn fcfs_queueing_delays_later_ops() {
        let mut d = disk();
        let (_, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        let (_, c2) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 1,
                data: vec![0; 4096],
            },
        );
        assert_eq!(
            c2.saturating_since(c1),
            DiskParams::default().service_time(4096)
        );
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![1],
            },
        );
        d.complete(c1, t1);
        let later = c1 + SimDuration::from_secs(1);
        let (_, c2) = d.submit(later, DiskOp::Read { page: 0 });
        assert_eq!(
            c2.saturating_since(later),
            DiskParams::default().service_time(4096)
        );
    }

    #[test]
    fn unwritten_page_reads_empty() {
        let mut d = disk();
        let (t, c) = d.submit(SimTime::ZERO, DiskOp::Read { page: 99 });
        match d.complete(c, t) {
            DiskResult::Data { data, .. } => assert!(data.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut d = disk();
        let (t, c) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        d.complete(c, t);
        // Busy for the whole service time; measure over twice that window.
        let window = SimTime::ZERO + DiskParams::default().service_time(4096).saturating_mul(2);
        let u = d.stats().busy.utilization(window);
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn response_time_includes_queueing() {
        let mut d = disk();
        let (t1, c1) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 4096],
            },
        );
        let (t2, c2) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 1,
                data: vec![0; 4096],
            },
        );
        d.complete(c1, t1);
        d.complete(c2, t2);
        let s = &d.stats().response_ms;
        assert_eq!(s.count(), 2);
        assert!(s.max().unwrap() > s.min().unwrap());
    }

    #[test]
    fn transient_error_returns_op_without_effect() {
        let mut d = disk();
        d.set_faults(DiskFaults {
            transient_error: 1.0,
            ..DiskFaults::default()
        });
        let op = DiskOp::Write {
            page: 3,
            data: vec![9, 9],
        };
        let (t, c) = d.submit(SimTime::ZERO, op.clone());
        assert_eq!(d.complete(c, t), DiskResult::TransientError { op });
        assert!(d.peek_page(3).is_none(), "no effect on the platter");
        assert_eq!(d.stats().transient_errors.get(), 1);
        assert_eq!(d.stats().writes.get(), 0);
        // Turning faults back off restores normal completion.
        d.set_faults(DiskFaults::default());
        let (t, c) = d.submit(
            c,
            DiskOp::Write {
                page: 3,
                data: vec![9, 9],
            },
        );
        assert_eq!(d.complete(c, t), DiskResult::Written { page: 3 });
        assert_eq!(d.peek_page(3), Some(&[9u8, 9][..]));
    }

    #[test]
    fn crash_tears_inflight_writes_to_prefix() {
        let mut d = disk();
        d.set_faults(DiskFaults {
            torn_writes: true,
            ..DiskFaults::default()
        });
        let (_, _) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 5,
                data: vec![1, 2, 3, 4],
            },
        );
        d.crash_tear_inflight();
        assert_eq!(d.peek_page(5), Some(&[1u8, 2][..]));
        assert_eq!(d.stats().torn_writes.get(), 1);
        assert_eq!(d.queue_depth(), 0, "torn op is forgotten");
    }

    #[test]
    fn crash_without_torn_writes_is_a_noop() {
        let mut d = disk();
        let (t, c) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 5,
                data: vec![1, 2, 3, 4],
            },
        );
        d.crash_tear_inflight();
        assert!(d.peek_page(5).is_none());
        assert_eq!(d.complete(c, t), DiskResult::Written { page: 5 });
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_rejected() {
        disk().submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![0; 5000],
            },
        );
    }

    #[test]
    #[should_panic(expected = "early completion")]
    fn early_completion_rejected() {
        let mut d = disk();
        let (t, _c) = d.submit(
            SimTime::ZERO,
            DiskOp::Write {
                page: 0,
                data: vec![1],
            },
        );
        d.complete(SimTime::ZERO, t);
    }
}
