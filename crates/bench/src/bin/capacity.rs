//! Capacity-knee explorer: the paper's Fig 5.5 experiment, generalized
//! across workload shapes and recorder topologies.
//!
//! Usage: `capacity [--seed N] [--smoke] [--medium M] [--max-users U]
//!                  [--spec S] [--topology T] [--no-chaos] [--json]`
//!
//! - `--seed N` — base seed for the canonical shapes (default 1);
//! - `--smoke` — quick run: two shapes, `--max-users 32`;
//! - `--medium M` — `ethernet` (the paper's, default) or `perfect`;
//! - `--max-users U` — search ceiling (default 256);
//! - `--no-chaos` — skip the per-point fault-schedule validation;
//! - `--json` — emit the sweep as one JSON object (shape × topology ×
//!   knee × the binding resource the utilization ledger named);
//! - `--spec S` — run a single trial of one workload literal instead of
//!   the shape sweep, print its verdict and report, and exit non-zero
//!   if the point is not sustained;
//! - `--topology T` — with `--spec`: `single` (default), `sharded`, or
//!   `quorum`.
//!
//! The default mode sweeps the canonical DSL shapes (diurnal, hotspot,
//! flash crowd, stalled receiver) over all three topologies and prints
//! one knee table: the largest user count each tier sustains within the
//! default SLOs, every searched point also validated by the chaos
//! recovery oracle. Knees are deterministic — the same build prints the
//! same table — and the perf matrix gates them via `bench_compare`.

use publishing_chaos::{Medium, Topology};
use publishing_obs::slo::SloSpec;
use publishing_workload::capacity::topology_name;
use publishing_workload::{canonical_shapes, find_knee, run_trial, SearchParams, WorkloadSpec};

fn usage() -> ! {
    eprintln!(
        "usage: capacity [--seed N] [--smoke] [--medium ethernet|perfect] \
         [--max-users U] [--no-chaos] [--json] [--spec S] \
         [--topology single|sharded|quorum]"
    );
    std::process::exit(2);
}

/// Runs one literal at face value on one topology: the single fully
/// judged operating point, verdict and workload accounting printed.
fn run_spec(literal: &str, topology: Topology, params: &SearchParams) -> Result<(), String> {
    let spec: WorkloadSpec = literal.parse()?;
    println!("spec: {spec}");
    let sched = params.chaos.then(|| {
        publishing_chaos::schedule::generate(&publishing_chaos::ChaosConfig {
            seed: spec.seed.wrapping_add(u64::from(spec.users)),
            nodes: publishing_chaos::NODES,
            shards: match topology {
                Topology::Sharded => publishing_chaos::scenario::SHARDS,
                _ => 0,
            },
            replicas: match topology {
                Topology::Quorum => publishing_chaos::scenario::REPLICAS,
                _ => 0,
            },
            procs: spec.generators() + spec.subjects,
            horizon_ms: spec.horizon_ms,
            max_faults: 3,
        })
    });
    let t = run_trial(
        topology,
        &spec,
        &SloSpec::default(),
        params.medium,
        sched.as_ref(),
    );
    let w = t.report.workload.as_ref().expect("trial attaches stats");
    println!(
        "[{}] users={} offered={} delivered={} goodput={:.3} offered/s={:.1}",
        topology_name(topology),
        t.users,
        t.offered,
        t.delivered,
        w.goodput(),
        w.offered_per_sec
    );
    for v in &t.violations {
        println!("  slo: {v}");
    }
    for f in &t.chaos_failures {
        println!("  chaos: {f}");
    }
    if t.pass {
        println!("sustained");
        Ok(())
    } else {
        Err("operating point not sustained".into())
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sweeps `shapes` × the three topologies, emitting one JSON object:
/// shape × topology × knee × the binding resource the utilization
/// ledger named for it.
fn sweep_json(shapes: &[(&'static str, WorkloadSpec)], params: &SearchParams) {
    let mut rows = Vec::new();
    for (name, spec) in shapes {
        for topo in [Topology::Single, Topology::Sharded, Topology::Quorum] {
            let knee = find_knee(name, topo, spec, &SloSpec::default(), params);
            let clauses = knee
                .failing_trial()
                .map(|t| {
                    t.rejected_by()
                        .iter()
                        .map(|c| json_str(c))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            rows.push(format!(
                "{{\"shape\":{},\"topology\":{},\"knee_users\":{},\"binding\":{},\"rejected_by\":[{}],\"trials\":{}}}",
                json_str(name),
                json_str(topology_name(topo)),
                knee.knee_users,
                knee.binding
                    .as_deref()
                    .map(json_str)
                    .unwrap_or_else(|| "null".into()),
                clauses,
                knee.trials.len(),
            ));
        }
    }
    println!(
        "{{\"medium\":{},\"max_users\":{},\"chaos\":{},\"knees\":[{}]}}",
        json_str(match params.medium {
            Medium::Perfect => "perfect",
            Medium::Ethernet => "ethernet",
        }),
        params.max_users,
        params.chaos,
        rows.join(",")
    );
}

/// Sweeps `shapes` × the three topologies and prints the knee table.
fn sweep(shapes: &[(&'static str, WorkloadSpec)], params: &SearchParams) {
    println!(
        "capacity knees (medium={}, max_users={}, chaos={})",
        match params.medium {
            Medium::Perfect => "perfect",
            Medium::Ethernet => "ethernet",
        },
        params.max_users,
        if params.chaos { "on" } else { "off" }
    );
    println!(
        "{:<18} {:<8} {:>5} {:>7} {:>9} {:>10} {:>8} {:<14}",
        "shape", "topology", "knee", "trials", "offered", "delivered", "goodput", "binding"
    );
    for (name, spec) in shapes {
        for topo in [Topology::Single, Topology::Sharded, Topology::Quorum] {
            let knee = find_knee(name, topo, spec, &SloSpec::default(), params);
            let (offered, delivered, goodput) = knee
                .knee_trial()
                .map(|t| {
                    let g = if t.offered == 0 {
                        0.0
                    } else {
                        t.delivered as f64 / t.offered as f64
                    };
                    (t.offered, t.delivered, g)
                })
                .unwrap_or((0, 0, 0.0));
            println!(
                "{:<18} {:<8} {:>5} {:>7} {:>9} {:>10} {:>8.3} {:<14}",
                name,
                topology_name(topo),
                knee.knee_users,
                knee.trials.len(),
                offered,
                delivered,
                goodput,
                knee.binding.as_deref().unwrap_or("-")
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut smoke = false;
    let mut json = false;
    let mut literal = None;
    let mut topology = Topology::Single;
    let mut params = SearchParams::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => usage(),
            },
            "--smoke" => smoke = true,
            "--medium" => match it.next().map(String::as_str) {
                Some("ethernet") => params.medium = Medium::Ethernet,
                Some("perfect") => params.medium = Medium::Perfect,
                _ => usage(),
            },
            "--max-users" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => params.max_users = v,
                _ => usage(),
            },
            "--no-chaos" => params.chaos = false,
            "--json" => json = true,
            "--spec" => match it.next() {
                Some(v) => literal = Some(v.clone()),
                None => usage(),
            },
            "--topology" => match it.next().map(String::as_str) {
                Some("single") => topology = Topology::Single,
                Some("sharded") => topology = Topology::Sharded,
                Some("quorum") => topology = Topology::Quorum,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    if let Some(lit) = literal {
        if let Err(e) = run_spec(&lit, topology, &params) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }

    let mut shapes = canonical_shapes(seed);
    if smoke {
        params.max_users = params.max_users.min(32);
        shapes.truncate(2);
    }
    if json {
        sweep_json(&shapes, &params);
    } else {
        sweep(&shapes, &params);
    }
}
