//! Fault schedules: the replayable unit of chaos.
//!
//! A [`FaultSchedule`] is a workload seed, a horizon, and a list of
//! timed [`Fault`]s, all at millisecond granularity. Schedules
//! round-trip through a compact whitespace-separated literal (the
//! `--schedule` form the `chaos` binary prints for a minimized
//! reproducer), so a failure found by the generator is a string a human
//! can paste back in.

use publishing_sim::rng::DetRng;
use std::fmt;
use std::str::FromStr;

/// One injected fault. All times are absolute virtual-time
/// milliseconds from the start of the run; probabilities are integer
/// percentages so literals round-trip exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Crash one application process (`victim` indexes the scenario's
    /// spawned processes, wrapping).
    CrashProcess {
        /// Injection time (ms).
        at_ms: u64,
        /// Index into the scenario's process list (mod its length).
        victim: u32,
    },
    /// Crash a whole processing node (`node` wraps over the scenario's
    /// node count); the recorder tier restarts and repopulates it.
    CrashNode {
        /// Injection time (ms).
        at_ms: u64,
        /// Processing-node id (mod the scenario's node count).
        node: u32,
    },
    /// Crash the recorder (single-recorder world) or shard
    /// `shard % live shards` (sharded world).
    CrashRecorder {
        /// Injection time (ms).
        at_ms: u64,
        /// Shard index (ignored by the single-recorder world).
        shard: u32,
    },
    /// Restart a previously crashed recorder/shard.
    RestartRecorder {
        /// Injection time (ms).
        at_ms: u64,
        /// Shard index (ignored by the single-recorder world).
        shard: u32,
    },
    /// Crash one replica of a recorder quorum group (quorum world
    /// only). The target guards liveness: a crash that would drop the
    /// group below a strict majority is a no-op.
    CrashReplica {
        /// Injection time (ms).
        at_ms: u64,
        /// Quorum group id (single-group worlds use 0).
        group: u32,
        /// Replica index within the group (mod the group size).
        idx: u32,
    },
    /// Restart a previously crashed quorum replica; it rejoins as a
    /// follower and catches up from the leader's log or a snapshot.
    RestartReplica {
        /// Injection time (ms).
        at_ms: u64,
        /// Quorum group id (single-group worlds use 0).
        group: u32,
        /// Replica index within the group (mod the group size).
        idx: u32,
    },
    /// Admit a brand-new shard mid-run (rebalance; no-op on the
    /// single-recorder world).
    AddShard {
        /// Injection time (ms).
        at_ms: u64,
    },
    /// Frame-loss burst: probability `p_pct`% over `[at, at+dur)`.
    Loss {
        /// Burst start (ms).
        at_ms: u64,
        /// Burst duration (ms).
        dur_ms: u64,
        /// Loss probability in percent.
        p_pct: u32,
    },
    /// Frame-corruption burst.
    Corrupt {
        /// Burst start (ms).
        at_ms: u64,
        /// Burst duration (ms).
        dur_ms: u64,
        /// Corruption probability in percent.
        p_pct: u32,
    },
    /// Frame-duplication burst.
    Duplicate {
        /// Burst start (ms).
        at_ms: u64,
        /// Burst duration (ms).
        dur_ms: u64,
        /// Duplication probability in percent.
        p_pct: u32,
    },
    /// Transient disk-IO-error window over every recorder disk.
    DiskTransient {
        /// Window start (ms).
        at_ms: u64,
        /// Window duration (ms).
        dur_ms: u64,
        /// Per-IO transient-failure probability in percent.
        p_pct: u32,
    },
    /// From here on, a recorder crash tears in-flight page writes to a
    /// prefix instead of dropping them atomically (cleared by the
    /// end-of-schedule heal).
    TornWrites {
        /// Activation time (ms).
        at_ms: u64,
    },
}

impl Fault {
    /// The fault's (start) time in milliseconds.
    pub fn at_ms(&self) -> u64 {
        match self {
            Fault::CrashProcess { at_ms, .. }
            | Fault::CrashNode { at_ms, .. }
            | Fault::CrashRecorder { at_ms, .. }
            | Fault::RestartRecorder { at_ms, .. }
            | Fault::CrashReplica { at_ms, .. }
            | Fault::RestartReplica { at_ms, .. }
            | Fault::AddShard { at_ms }
            | Fault::Loss { at_ms, .. }
            | Fault::Corrupt { at_ms, .. }
            | Fault::Duplicate { at_ms, .. }
            | Fault::DiskTransient { at_ms, .. }
            | Fault::TornWrites { at_ms } => *at_ms,
        }
    }

    /// Rewrites the fault's (start) time.
    pub fn set_at_ms(&mut self, t: u64) {
        match self {
            Fault::CrashProcess { at_ms, .. }
            | Fault::CrashNode { at_ms, .. }
            | Fault::CrashRecorder { at_ms, .. }
            | Fault::RestartRecorder { at_ms, .. }
            | Fault::CrashReplica { at_ms, .. }
            | Fault::RestartReplica { at_ms, .. }
            | Fault::AddShard { at_ms }
            | Fault::Loss { at_ms, .. }
            | Fault::Corrupt { at_ms, .. }
            | Fault::Duplicate { at_ms, .. }
            | Fault::DiskTransient { at_ms, .. }
            | Fault::TornWrites { at_ms } => *at_ms = t,
        }
    }

    /// A stable snake-case kind name, used as the metric path segment
    /// for per-kind injection counters (`chaos/injected/<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::CrashProcess { .. } => "crash_process",
            Fault::CrashNode { .. } => "crash_node",
            Fault::CrashRecorder { .. } => "crash_recorder",
            Fault::RestartRecorder { .. } => "restart_recorder",
            Fault::CrashReplica { .. } => "crash_replica",
            Fault::RestartReplica { .. } => "restart_replica",
            Fault::AddShard { .. } => "add_shard",
            Fault::Loss { .. } => "loss",
            Fault::Corrupt { .. } => "corrupt",
            Fault::Duplicate { .. } => "duplicate",
            Fault::DiskTransient { .. } => "disk_transient",
            Fault::TornWrites { .. } => "torn_writes",
        }
    }

    /// The burst duration in milliseconds, for windowed faults.
    pub fn dur_ms(&self) -> Option<u64> {
        match self {
            Fault::Loss { dur_ms, .. }
            | Fault::Corrupt { dur_ms, .. }
            | Fault::Duplicate { dur_ms, .. }
            | Fault::DiskTransient { dur_ms, .. } => Some(*dur_ms),
            _ => None,
        }
    }

    /// Rewrites the burst duration, for windowed faults (no-op
    /// otherwise).
    pub fn set_dur_ms(&mut self, d: u64) {
        match self {
            Fault::Loss { dur_ms, .. }
            | Fault::Corrupt { dur_ms, .. }
            | Fault::Duplicate { dur_ms, .. }
            | Fault::DiskTransient { dur_ms, .. } => *dur_ms = d,
            _ => {}
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::CrashProcess { at_ms, victim } => write!(f, "crash_process@{at_ms}ms#{victim}"),
            Fault::CrashNode { at_ms, node } => write!(f, "crash_node@{at_ms}ms#{node}"),
            Fault::CrashRecorder { at_ms, shard } => write!(f, "crash_recorder@{at_ms}ms#{shard}"),
            Fault::RestartRecorder { at_ms, shard } => {
                write!(f, "restart_recorder@{at_ms}ms#{shard}")
            }
            Fault::CrashReplica { at_ms, group, idx } => {
                write!(f, "crash_replica@{at_ms}ms#{group}.{idx}")
            }
            Fault::RestartReplica { at_ms, group, idx } => {
                write!(f, "restart_replica@{at_ms}ms#{group}.{idx}")
            }
            Fault::AddShard { at_ms } => write!(f, "add_shard@{at_ms}ms"),
            Fault::Loss {
                at_ms,
                dur_ms,
                p_pct,
            } => write!(f, "loss@{at_ms}ms+{dur_ms}ms={p_pct}%"),
            Fault::Corrupt {
                at_ms,
                dur_ms,
                p_pct,
            } => write!(f, "corrupt@{at_ms}ms+{dur_ms}ms={p_pct}%"),
            Fault::Duplicate {
                at_ms,
                dur_ms,
                p_pct,
            } => write!(f, "dup@{at_ms}ms+{dur_ms}ms={p_pct}%"),
            Fault::DiskTransient {
                at_ms,
                dur_ms,
                p_pct,
            } => write!(f, "disk@{at_ms}ms+{dur_ms}ms={p_pct}%"),
            Fault::TornWrites { at_ms } => write!(f, "torn@{at_ms}ms"),
        }
    }
}

/// A complete, replayable chaos run: workload seed, horizon, faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed for the scenario's workload (think times etc.).
    pub workload_seed: u64,
    /// Injection stops here; the driver then heals the world and runs a
    /// grace period for the oracle.
    pub horizon_ms: u64,
    /// The faults, in generation order (the driver sorts injection by
    /// time; equal-time faults apply in list order).
    pub faults: Vec<Fault>,
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} horizon={}ms",
            self.workload_seed, self.horizon_ms
        )?;
        for fault in &self.faults {
            write!(f, " {fault}")?;
        }
        Ok(())
    }
}

fn parse_ms(s: &str, what: &str) -> Result<u64, String> {
    s.strip_suffix("ms")
        .ok_or_else(|| format!("{what}: expected <n>ms, got {s:?}"))?
        .parse()
        .map_err(|e| format!("{what}: {e}"))
}

/// Parses `name@Tms…` tokens; see [`Fault`]'s `Display` for the forms.
impl FromStr for Fault {
    type Err = String;

    fn from_str(tok: &str) -> Result<Self, String> {
        let (name, rest) = tok
            .split_once('@')
            .ok_or_else(|| format!("fault {tok:?}: missing '@'"))?;
        let windowed = |rest: &str| -> Result<(u64, u64, u32), String> {
            let (at, rest) = rest
                .split_once('+')
                .ok_or_else(|| format!("{name}: expected @Tms+Dms=P%"))?;
            let (dur, p) = rest
                .split_once('=')
                .ok_or_else(|| format!("{name}: expected @Tms+Dms=P%"))?;
            let p_pct: u32 = p
                .strip_suffix('%')
                .ok_or_else(|| format!("{name}: expected P%"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))?;
            if p_pct > 100 {
                return Err(format!("{name}: probability {p_pct}% > 100%"));
            }
            Ok((parse_ms(at, name)?, parse_ms(dur, name)?, p_pct))
        };
        let indexed = |rest: &str| -> Result<(u64, u32), String> {
            let (at, idx) = rest
                .split_once('#')
                .ok_or_else(|| format!("{name}: expected @Tms#I"))?;
            Ok((
                parse_ms(at, name)?,
                idx.parse().map_err(|e| format!("{name}: {e}"))?,
            ))
        };
        // `@Tms#G.I` — group-qualified replica index.
        let grouped = |rest: &str, name: &str| -> Result<(u64, u32, u32), String> {
            let (at, gi) = rest
                .split_once('#')
                .ok_or_else(|| format!("{name}: expected @Tms#G.I"))?;
            let (g, i) = gi
                .split_once('.')
                .ok_or_else(|| format!("{name}: expected @Tms#G.I"))?;
            Ok((
                parse_ms(at, name)?,
                g.parse().map_err(|e| format!("{name}: {e}"))?,
                i.parse().map_err(|e| format!("{name}: {e}"))?,
            ))
        };
        match name {
            "crash_process" => {
                let (at_ms, victim) = indexed(rest)?;
                Ok(Fault::CrashProcess { at_ms, victim })
            }
            "crash_node" => {
                let (at_ms, node) = indexed(rest)?;
                Ok(Fault::CrashNode { at_ms, node })
            }
            "crash_recorder" => {
                let (at_ms, shard) = indexed(rest)?;
                Ok(Fault::CrashRecorder { at_ms, shard })
            }
            "restart_recorder" => {
                let (at_ms, shard) = indexed(rest)?;
                Ok(Fault::RestartRecorder { at_ms, shard })
            }
            "crash_replica" => {
                let (at_ms, group, idx) = grouped(rest, name)?;
                Ok(Fault::CrashReplica { at_ms, group, idx })
            }
            "restart_replica" => {
                let (at_ms, group, idx) = grouped(rest, name)?;
                Ok(Fault::RestartReplica { at_ms, group, idx })
            }
            "add_shard" => Ok(Fault::AddShard {
                at_ms: parse_ms(rest, name)?,
            }),
            "loss" => {
                let (at_ms, dur_ms, p_pct) = windowed(rest)?;
                Ok(Fault::Loss {
                    at_ms,
                    dur_ms,
                    p_pct,
                })
            }
            "corrupt" => {
                let (at_ms, dur_ms, p_pct) = windowed(rest)?;
                Ok(Fault::Corrupt {
                    at_ms,
                    dur_ms,
                    p_pct,
                })
            }
            "dup" => {
                let (at_ms, dur_ms, p_pct) = windowed(rest)?;
                Ok(Fault::Duplicate {
                    at_ms,
                    dur_ms,
                    p_pct,
                })
            }
            "disk" => {
                let (at_ms, dur_ms, p_pct) = windowed(rest)?;
                Ok(Fault::DiskTransient {
                    at_ms,
                    dur_ms,
                    p_pct,
                })
            }
            "torn" => Ok(Fault::TornWrites {
                at_ms: parse_ms(rest, name)?,
            }),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

impl FromStr for FaultSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut workload_seed = None;
        let mut horizon_ms = None;
        let mut faults = Vec::new();
        for tok in s.split_whitespace() {
            if let Some(v) = tok.strip_prefix("seed=") {
                workload_seed = Some(v.parse().map_err(|e| format!("seed: {e}"))?);
            } else if let Some(v) = tok.strip_prefix("horizon=") {
                horizon_ms = Some(parse_ms(v, "horizon")?);
            } else {
                faults.push(tok.parse()?);
            }
        }
        Ok(FaultSchedule {
            workload_seed: workload_seed.ok_or("missing seed=")?,
            horizon_ms: horizon_ms.ok_or("missing horizon=")?,
            faults,
        })
    }
}

/// Knobs for the seeded schedule generator.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Generation seed; also becomes the schedule's workload seed.
    pub seed: u64,
    /// Processing-node count of the target scenario.
    pub nodes: u32,
    /// Shard count of the target scenario (0 for the single-recorder
    /// world: recorder faults then always address index 0 and
    /// `add_shard` is never generated).
    pub shards: u32,
    /// Quorum-replica count of the target scenario (0 for worlds
    /// without a recorder quorum: replica faults are never generated).
    pub replicas: u32,
    /// Spawned-process count (victim space for process crashes).
    pub procs: u32,
    /// Injection horizon (ms).
    pub horizon_ms: u64,
    /// Upper bound on generated faults (crash/restart pairs count as
    /// two).
    pub max_faults: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            nodes: 3,
            shards: 0,
            replicas: 0,
            procs: 4,
            horizon_ms: 1500,
            max_faults: 7,
        }
    }
}

/// Generates a seeded fault schedule.
///
/// The generator is biased toward the timings that historically break
/// recovery code: after every process/node crash there is an even
/// chance of a *follow-up* crash 5–60 ms later (crash during recovery),
/// and in sharded scenarios a shard crash or rebalance may land in that
/// window too (crash during rebalance). Every recorder/shard crash is
/// paired with a restart before the horizon so convergence never
/// depends on the end-of-run heal alone.
pub fn generate(cfg: &ChaosConfig) -> FaultSchedule {
    let mut rng = DetRng::new(cfg.seed ^ 0xC4A0_5EED);
    let mut faults = Vec::new();
    let horizon = cfg.horizon_ms.max(200);
    let n = rng.range(2, cfg.max_faults.max(3) as u64) as usize;
    let mut added_shard = false;
    while faults.len() < n {
        let t = rng.range(50, horizon * 6 / 10);
        let kind = rng.below(if cfg.shards > 0 || cfg.replicas > 0 {
            8
        } else {
            6
        });
        match kind {
            0 => {
                faults.push(Fault::CrashProcess {
                    at_ms: t,
                    victim: rng.below(cfg.procs.max(1) as u64) as u32,
                });
                push_follow_up(&mut rng, &mut faults, cfg, t, horizon);
            }
            1 => {
                faults.push(Fault::CrashNode {
                    at_ms: t,
                    node: rng.below(cfg.nodes.max(1) as u64) as u32,
                });
                push_follow_up(&mut rng, &mut faults, cfg, t, horizon);
            }
            2 => push_tier_cycle(&mut rng, &mut faults, cfg, t, horizon),
            3 => faults.push(Fault::Loss {
                at_ms: t,
                dur_ms: rng.range(20, 200),
                p_pct: rng.range(5, 25) as u32,
            }),
            4 => faults.push(Fault::Duplicate {
                at_ms: t,
                dur_ms: rng.range(20, 200),
                p_pct: rng.range(10, 60) as u32,
            }),
            5 => {
                if rng.chance(0.5) {
                    faults.push(Fault::Corrupt {
                        at_ms: t,
                        dur_ms: rng.range(20, 150),
                        p_pct: rng.range(5, 20) as u32,
                    });
                } else {
                    faults.push(Fault::DiskTransient {
                        at_ms: t,
                        dur_ms: rng.range(50, 400),
                        p_pct: rng.range(10, 40) as u32,
                    });
                    if rng.chance(0.5) {
                        faults.push(Fault::TornWrites { at_ms: t });
                    }
                }
            }
            6 if cfg.shards > 0 && !added_shard => {
                added_shard = true;
                faults.push(Fault::AddShard { at_ms: t });
                push_follow_up(&mut rng, &mut faults, cfg, t, horizon);
            }
            _ => push_tier_cycle(&mut rng, &mut faults, cfg, t, horizon),
        }
    }
    faults.sort_by_key(Fault::at_ms);
    FaultSchedule {
        workload_seed: cfg.seed,
        horizon_ms: horizon,
        faults,
    }
}

/// A crash/restart pair for the scenario's recorder tier: a quorum
/// replica when the scenario has one, else the recorder (or one shard).
fn push_tier_cycle(
    rng: &mut DetRng,
    faults: &mut Vec<Fault>,
    cfg: &ChaosConfig,
    t: u64,
    horizon: u64,
) {
    if cfg.replicas > 0 {
        push_replica_cycle(rng, faults, cfg, t, horizon);
    } else {
        push_recorder_cycle(rng, faults, cfg, t, horizon);
    }
}

/// A crash/restart pair for one quorum replica. Like recorder cycles,
/// every crash is paired with a restart before the horizon, so group
/// liveness never depends on the end-of-run heal alone — and the
/// crash-during-election timing (a restart landing while the previous
/// crash's election is still settling) falls out of the follow-up bias.
fn push_replica_cycle(
    rng: &mut DetRng,
    faults: &mut Vec<Fault>,
    cfg: &ChaosConfig,
    t: u64,
    horizon: u64,
) {
    let idx = rng.below(cfg.replicas.max(1) as u64) as u32;
    let up = (t + rng.range(20, 150))
        .min(horizon.saturating_sub(1))
        .max(t + 1);
    faults.push(Fault::CrashReplica {
        at_ms: t,
        group: 0,
        idx,
    });
    faults.push(Fault::RestartReplica {
        at_ms: up,
        group: 0,
        idx,
    });
}

/// A crash/restart pair for the recorder (or one shard).
fn push_recorder_cycle(
    rng: &mut DetRng,
    faults: &mut Vec<Fault>,
    cfg: &ChaosConfig,
    t: u64,
    horizon: u64,
) {
    let shard = rng.below(cfg.shards.max(1) as u64) as u32;
    let up = (t + rng.range(20, 150))
        .min(horizon.saturating_sub(1))
        .max(t + 1);
    faults.push(Fault::CrashRecorder { at_ms: t, shard });
    faults.push(Fault::RestartRecorder { at_ms: up, shard });
}

/// The crash-during-recovery / crash-during-rebalance bias: with even
/// odds, a second fault lands 5–60 ms after `t`, while the first one's
/// recovery (or the rebalance drain) is still in flight.
fn push_follow_up(
    rng: &mut DetRng,
    faults: &mut Vec<Fault>,
    cfg: &ChaosConfig,
    t: u64,
    horizon: u64,
) {
    if !rng.chance(0.5) {
        return;
    }
    let t2 = t + rng.range(5, 60);
    match rng.below(3) {
        0 => faults.push(Fault::CrashProcess {
            at_ms: t2,
            victim: rng.below(cfg.procs.max(1) as u64) as u32,
        }),
        1 => faults.push(Fault::CrashNode {
            at_ms: t2,
            node: rng.below(cfg.nodes.max(1) as u64) as u32,
        }),
        _ => push_tier_cycle(rng, faults, cfg, t2, horizon),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_round_trips() {
        for seed in 0..40u64 {
            let s = generate(&ChaosConfig {
                seed,
                shards: if seed % 2 == 0 { 3 } else { 0 },
                replicas: if seed % 3 == 0 { 3 } else { 0 },
                ..ChaosConfig::default()
            });
            let lit = s.to_string();
            let back: FaultSchedule = lit.parse().expect("parses");
            assert_eq!(s, back, "literal: {lit}");
        }
    }

    #[test]
    fn replica_fault_literal_round_trips() {
        let f = Fault::CrashReplica {
            at_ms: 120,
            group: 2,
            idx: 1,
        };
        assert_eq!(f.to_string(), "crash_replica@120ms#2.1");
        assert_eq!("crash_replica@120ms#2.1".parse::<Fault>(), Ok(f));
        assert_eq!(
            "restart_replica@40ms#0.2".parse::<Fault>(),
            Ok(Fault::RestartReplica {
                at_ms: 40,
                group: 0,
                idx: 2,
            })
        );
        assert!("crash_replica@40ms#2".parse::<Fault>().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig {
            seed: 9,
            shards: 3,
            ..ChaosConfig::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("seed=1 horizon=100ms zap@3ms"
            .parse::<FaultSchedule>()
            .is_err());
        assert!("horizon=100ms".parse::<FaultSchedule>().is_err());
        assert!("seed=1 horizon=100ms loss@1ms+2ms=200%"
            .parse::<FaultSchedule>()
            .is_err());
        assert!("seed=1 horizon=100ms crash_node@5ms"
            .parse::<FaultSchedule>()
            .is_err());
    }

    #[test]
    fn recorder_crashes_are_paired_with_restarts() {
        for seed in 0..30u64 {
            let s = generate(&ChaosConfig {
                seed,
                shards: 3,
                ..ChaosConfig::default()
            });
            let crashes = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::CrashRecorder { .. }))
                .count();
            let restarts = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::RestartRecorder { .. }))
                .count();
            assert_eq!(crashes, restarts, "seed {seed}: {s}");
        }
    }

    #[test]
    fn replica_crashes_are_paired_with_restarts() {
        let mut any = false;
        for seed in 0..30u64 {
            let s = generate(&ChaosConfig {
                seed,
                replicas: 3,
                ..ChaosConfig::default()
            });
            let crashes = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::CrashReplica { .. }))
                .count();
            let restarts = s
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::RestartReplica { .. }))
                .count();
            assert_eq!(crashes, restarts, "seed {seed}: {s}");
            any |= crashes > 0;
            assert!(
                !s.faults.iter().any(|f| matches!(
                    f,
                    Fault::AddShard { .. }
                        | Fault::CrashRecorder { .. }
                        | Fault::RestartRecorder { .. }
                )),
                "seed {seed}: quorum scenarios get replica faults, not shard ones: {s}"
            );
        }
        assert!(any, "the generator never produced a replica fault");
    }
}
