//! Workload engine: a scenario DSL and a closed-loop capacity search
//! over the recorder topologies.
//!
//! The paper's capacity experiment (§5.3, Fig 5.5) drives the published
//! ethernet with simulated users until message delivery degrades,
//! concluding the 1983 medium sustains ≈115 users. This crate
//! generalizes that experiment along both axes the rest of the
//! workspace opened up — *what load* and *which recorder tier*:
//!
//! - [`spec`]: the workload DSL. A [`WorkloadSpec`] is a compact,
//!   round-trippable literal (same idiom as
//!   [`publishing_chaos::FaultSchedule`]) describing offered load as a
//!   base operating point plus composable phases: diurnal rate curves,
//!   flash crowds, Zipf hotspot skew over subjects, stalled receivers,
//!   and checkpoint storms, over a message-size mix generalizing the
//!   paper's 128 B / 1024 B split.
//! - [`drivers`]: the compiled per-node publish drivers — deterministic
//!   [`publishing_demos::program::Program`]s (self-paced generators and
//!   counting sinks) that run identically on the single, sharded, and
//!   quorum worlds, and survive crash/recovery like any other process.
//! - [`compile`]: [`WorkloadSpec`] → [`CompiledWorkload`], a
//!   [`publishing_chaos::WorkloadSource`] any chaos scenario can spawn.
//! - [`capacity`]: the closed loop. [`find_knee`] binary-searches the
//!   user count against [`publishing_obs::slo::SloSpec`] verdicts (and,
//!   optionally, seeded fault schedules judged by the chaos recovery
//!   oracle), emitting the "capacity knee" — the modern analogue of the
//!   paper's 115-user result — per workload shape × topology.

#![warn(missing_docs)]

pub mod capacity;
pub mod compile;
pub mod drivers;
pub mod spec;
pub mod whatif;

pub use capacity::{
    find_knee, rejecting_clauses, run_trial, run_trial_tuned, slo_clause, topology_name, Knee,
    SearchParams, TrialOutcome,
};
pub use compile::CompiledWorkload;
pub use drivers::{LoadGen, SubjectSink};
pub use spec::{canonical_shapes, Phase, WorkloadSpec};
pub use whatif::{knob_for_kind, predict_knee, run_whatif, standard_knobs, WhatIfKnob};
