//! Replicated recorder quorum: consensus-sequenced capture with leader
//! failover.
//!
//! The single recorder of §3–§5 (and the statically-partitioned shard
//! tier of §6.3) leaves one hole: between checkpoints, the arrival
//! order a recorder assigns exists in exactly one place. Lose that
//! recorder permanently and the order — the very thing PUBLISHING
//! exists to remember — is gone. This crate closes the hole by
//! replicating the *arrival log* across a small group (3–5 replicas)
//! with a Raft-style consensus core:
//!
//! - every replica is a full [recorder](publishing_core::recorder) and
//!   captures the broadcast medium independently (the medium is the
//!   replication channel for message *bytes* — consensus only has to
//!   agree on *order*);
//! - the group leader assigns arrival sequences by proposing
//!   `Sequence{seq, msg}` entries; an entry is applied (published to
//!   stable storage) only once a majority has it, so a sequenced
//!   message survives any minority of replica losses;
//! - leader failover re-elects within a few election timeouts, and the
//!   volatile ack backlog every replica maintains lets the new leader
//!   resume sequencing with no gaps or duplicates;
//! - a recovering destination node replays from whichever replica
//!   leads — which need not be the replica that originally sequenced
//!   its messages.
//!
//! Module map: [`raft`] is the sans-IO consensus core, [`replica`]
//! fuses it with a recorder node, [`codec`] serialises catch-up
//! snapshot images, and [`world`] is the deterministic closed-loop
//! harness (clients + kernels + quorum group over the simulated LAN).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod raft;
pub mod replica;
pub mod world;

pub use raft::{Op, QMsg, RaftConfig, RaftCore, RaftOut, RaftStats, ReplicaId, Role};
pub use replica::{QAction, QuorumReplica, ReplicaConfig};
pub use world::{QuorumConfig, QuorumWorld};
