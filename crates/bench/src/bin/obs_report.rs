//! Renders the unified observability report for a crash/recovery run of
//! the sharded recorder tier.
//!
//! Drives a deterministic scenario — echo servers on one node, ping
//! clients elsewhere, the server node crashed mid-run and recovered by
//! the responsible shards in parallel — then prints the [`ObsReport`]
//! artifact: shard health (replay lag drained to zero), per-process
//! recovery lag, message-lifecycle stage latencies, the virtual-time
//! profile, and the full metrics registry.
//!
//! Usage: `obs_report [--json] [--smoke] [--trace PATH] [--topology sharded|quorum]`
//!
//! - `--json` emits the report as a single JSON object instead of text;
//! - `--smoke` runs a smaller scenario (CI-friendly, < 1 s) and
//!   additionally replays it over each broadcast medium of the paper —
//!   ethernet, token ring, star — twice each, asserting the output
//!   fingerprint is identical across the double run (per-medium
//!   determinism);
//! - `--trace PATH` additionally exports the run's lifecycle spans as a
//!   Chrome-trace (Perfetto-loadable) JSON timeline: one process row
//!   per kernel and per shard recorder, plus per-message lifecycle
//!   lanes with publish→capture→sequence→deliver slices;
//! - `--topology quorum` drives the replicated-recorder world instead:
//!   a leader-crash failover plus a node crash, reported with the
//!   schema-v3 consensus sections (per-replica health, commit-latency
//!   percentiles, the invariant watchdog). The process exits non-zero
//!   if the watchdog surfaced any violation.
//!
//! [`ObsReport`]: publishing_obs::report::ObsReport

use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_net::{Ethernet, Lan, LanConfig, StarHub, StationId, TokenRing};
use publishing_obs::span::check_replay_prefix;
use publishing_perf::trace;
use publishing_quorum::QuorumWorld;
use publishing_shard::ShardedWorld;
use publishing_sim::time::{SimDuration, SimTime};

fn registry(pings: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("pinger", move || {
        let mut p = PingClient::new(pings);
        p.think_ns = 2_000_000;
        Box::new(p)
    });
    reg
}

/// Runs the canonical crash/recovery scenario, optionally on a
/// caller-supplied medium (default: the perfect bus).
fn run_scenario(
    pings: u64,
    pairs: u32,
    horizon: SimTime,
    medium: Option<Box<dyn Lan>>,
) -> (ShardedWorld, Vec<ProcessId>) {
    let reg = registry(pings);
    let mut w = match medium {
        Some(m) => ShardedWorld::with_medium(3, 4, reg, m),
        None => ShardedWorld::new(3, 4, reg),
    };
    let mut servers = Vec::new();
    for i in 0..pairs {
        let server = w.spawn(2, "echo", vec![]).expect("echo registered");
        w.spawn(i % 2, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
            .expect("pinger registered");
        servers.push(server);
    }
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    w.run_until(horizon);
    (w, servers)
}

/// The three broadcast media of the paper's §4/§6, freshly built for a
/// 3-node + 4-shard world. Station ids mirror node ids, so the star hub
/// is shard 0's station (the paper's "recorder at the hub" topology).
fn media() -> Vec<(&'static str, Box<dyn Lan>)> {
    let cfg = LanConfig::default();
    vec![
        (
            "ethernet",
            Box::new(Ethernet::acknowledging(cfg.clone())) as Box<dyn Lan>,
        ),
        (
            "token_ring",
            Box::new(TokenRing::new(cfg.clone(), SimDuration::from_micros(20))),
        ),
        (
            "star",
            Box::new(StarHub::new(
                cfg,
                StationId(3),
                SimDuration::from_micros(100),
            )),
        ),
    ]
}

/// The quorum leader-failover scenario: echo traffic over a 3-way
/// recorder quorum, the leader replica crashed mid-run (forcing an
/// election), then the server node crashed (forcing a replay from the
/// replicated arrival log under the new leader).
fn run_quorum_scenario(pings: u64, horizon: SimTime) -> (QuorumWorld, ProcessId) {
    let reg = registry(pings);
    let mut w = QuorumWorld::new(2, 3, reg);
    let server = w.spawn(1, "echo", vec![]).expect("echo registered");
    w.spawn(0, "pinger", vec![Link::to(server, Channel::DEFAULT, 7)])
        .expect("pinger registered");
    w.run_until(SimTime::from_millis(250));
    if let Some(leader) = w.leader() {
        w.crash_replica(leader);
    }
    w.run_until(SimTime::from_millis(400));
    w.crash_node(1);
    w.run_until(horizon);
    (w, server)
}

fn run_quorum(json: bool, smoke: bool, trace_path: Option<String>) {
    let (pings, horizon) = if smoke {
        (10u64, SimTime::from_secs(12))
    } else {
        (25u64, SimTime::from_secs(30))
    };
    let (w, server) = run_quorum_scenario(pings, horizon);
    let report = w.obs_report();
    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_text());
        println!("replay-prefix check (crashed node 1):");
        match check_replay_prefix(w.kernels[&1].spans(), server.as_u64()) {
            Ok(n) => println!("  pid {server}: {n} replayed reads match the pre-crash prefix"),
            Err(e) => println!("  pid {server}: DIVERGED: {e}"),
        }
    }

    if let Some(path) = trace_path {
        // Component order matches QuorumWorld::span_logs(): kernels by
        // node id, then replicas by index.
        let mut components = Vec::new();
        for (n, k) in &w.kernels {
            components.push((format!("node {n} kernel"), k.spans()));
        }
        for (i, r) in w.replicas.iter().enumerate() {
            components.push((
                format!("replica {i} recorder"),
                r.recorder_node().recorder().spans(),
            ));
        }
        let trace = trace::from_spans(&components);
        if let Err(e) = std::fs::write(&path, trace.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "trace: {} events ({} slices) -> {path}",
            trace.events.len(),
            trace.count_phase('X')
        );
    }

    // The watchdog gates the exit code: any online invariant violation
    // fails the run, not just the render.
    let wd = report
        .watchdog
        .as_ref()
        .expect("quorum reports carry a watchdog section");
    eprintln!(
        "watchdog: {} checks, {} violations",
        wd.checks,
        wd.violations.len()
    );
    if !wd.violations.is_empty() {
        for v in &wd.violations {
            eprintln!("  ! {v}");
        }
        std::process::exit(1);
    }

    if smoke {
        if w.recoveries_completed() == 0 {
            eprintln!("quorum smoke run completed no recoveries");
            std::process::exit(1);
        }
        let c = report
            .consensus
            .as_ref()
            .expect("quorum reports carry a consensus section");
        if c.commits == 0 {
            eprintln!("quorum smoke run measured no commit latencies");
            std::process::exit(1);
        }
        if c.elections < 2 {
            eprintln!("quorum smoke run should have re-elected after the leader crash");
            std::process::exit(1);
        }
        let fps: Vec<(u64, u64)> = (0..2)
            .map(|_| {
                let (w, _) = run_quorum_scenario(pings, horizon);
                (w.output_fingerprint(), w.obs_fingerprint())
            })
            .collect();
        if fps[0] != fps[1] {
            eprintln!(
                "quorum smoke run is not deterministic: {:?} vs {:?}",
                fps[0], fps[1]
            );
            std::process::exit(1);
        }
        eprintln!(
            "quorum smoke: output {:#018x} spans {:#018x} (stable over 2 runs)",
            fps[0].0, fps[0].1
        );
    }
}

const USAGE: &str =
    "usage: obs_report [--json] [--smoke] [--trace PATH] [--topology sharded|quorum]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut smoke = false;
    let mut trace_path: Option<String> = None;
    let mut quorum = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--trace" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--trace needs a path; {USAGE}");
                    std::process::exit(2);
                };
                trace_path = Some(p.clone());
            }
            "--topology" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("sharded") => quorum = false,
                    Some("quorum") => quorum = true,
                    _ => {
                        eprintln!("--topology needs sharded|quorum; {USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!("unknown argument {bad:?}; {USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if quorum {
        run_quorum(json, smoke, trace_path);
        return;
    }

    let (pings, pairs, horizon) = if smoke {
        (10u64, 2u32, SimTime::from_secs(20))
    } else {
        (25u64, 4u32, SimTime::from_secs(40))
    };

    let (w, servers) = run_scenario(pings, pairs, horizon, None);

    let report = w.obs_report();
    if json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_text());
        let kernel = &w.kernels[&2];
        println!("replay-prefix check (crashed node 2):");
        for server in &servers {
            match check_replay_prefix(kernel.spans(), server.as_u64()) {
                Ok(n) => println!("  pid {server}: {n} replayed reads match the pre-crash prefix"),
                Err(e) => println!("  pid {server}: DIVERGED: {e}"),
            }
        }
    }

    if let Some(path) = trace_path {
        // Component order matches ShardedWorld::span_logs(): kernels by
        // node id, then shards by index.
        let mut components = Vec::new();
        for (n, k) in &w.kernels {
            components.push((format!("node {n} kernel"), k.spans()));
        }
        for (i, rn) in w.shards.iter().enumerate() {
            components.push((format!("shard {i} recorder"), rn.recorder().spans()));
        }
        let trace = trace::from_spans(&components);
        if let Err(e) = std::fs::write(&path, trace.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "trace: {} events ({} slices) -> {path}",
            trace.events.len(),
            trace.count_phase('X')
        );
    }

    // A smoke run must actually have exercised recovery, and the same
    // must hold — deterministically — over every medium of the paper.
    if smoke {
        if w.recoveries_completed() == 0 {
            eprintln!("smoke run completed no recoveries");
            std::process::exit(1);
        }
        for (name, _) in media() {
            let runs: Vec<u64> = (0..2)
                .map(|_| {
                    let medium = media()
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, m)| m);
                    let (w, _) = run_scenario(pings, pairs, horizon, medium);
                    if w.recoveries_completed() == 0 {
                        eprintln!("smoke run over {name} completed no recoveries");
                        std::process::exit(1);
                    }
                    if w.outputs.is_empty() {
                        eprintln!("smoke run over {name} produced no outputs");
                        std::process::exit(1);
                    }
                    w.output_fingerprint()
                })
                .collect();
            if runs[0] != runs[1] {
                eprintln!(
                    "smoke run over {name} is not deterministic: {:#018x} vs {:#018x}",
                    runs[0], runs[1]
                );
                std::process::exit(1);
            }
            eprintln!(
                "media smoke: {name:<10} fingerprint {:#018x} (stable over 2 runs)",
                runs[0]
            );
        }
    }
}
