//! Causal message-lifecycle tracing.
//!
//! Every published message gets a *span*: the ordered set of structured
//! events it generated as it moved through the system — published by its
//! sender, captured and sequenced (recorder-acked) by the recorder,
//! delivered (read) by its destination, and, across a crash, replayed to
//! the recovering process or suppressed at the sender's §4.7 watermark.
//!
//! Events are recorded into per-component [`SpanLog`]s (one per kernel,
//! one per recorder shard) rather than one shared log, so components stay
//! `Send` and the live-thread runtime needs no locks. A world driver
//! merges the logs into per-message [`MessageSpan`]s at report time.
//!
//! Determinism: like `publishing_sim::trace::Trace`, each log keeps a
//! running FNV-1a fingerprint over *every* event ever recorded — framed
//! by a monotone sequence number so ring eviction cannot change it and
//! adjacent events cannot alias. Two runs of the same seed must produce
//! identical fingerprints; the test suites assert exactly that.

use crate::store::{ColumnarStore, SampleSpec};
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

/// Default per-component span-log capacity (events retained; all events
/// are fingerprinted regardless).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Folds one event into the running FNV-1a fingerprint. Every field is
/// fixed-width and the monotone `seq` frames the event, so the hash is
/// injective over event streams and independent of what storage later
/// retains — the columnar store and the row-oriented reference log share
/// this exact framing.
pub(crate) fn fnv_fold_event(
    mut h: u64,
    seq: u64,
    at: SimTime,
    key: MsgKey,
    stage: Stage,
    subject: u64,
    aux: u64,
) -> u64 {
    for b in seq
        .to_le_bytes()
        .iter()
        .chain(at.as_nanos().to_le_bytes().iter())
        .chain(key.sender.to_le_bytes().iter())
        .chain(key.seq.to_le_bytes().iter())
        .chain([stage as u8].iter())
        .chain(subject.to_le_bytes().iter())
        .chain(aux.to_le_bytes().iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Identifies one message across the whole system: the packed sender
/// process id (`ProcessId::as_u64()` in the demos crate) and the sender's
/// per-process sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgKey {
    /// Packed sender process id (`(node << 32) | local`).
    pub sender: u64,
    /// Sender-assigned sequence number.
    pub seq: u64,
}

impl std::fmt::Display for MsgKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node = self.sender >> 32;
        let local = self.sender & 0xffff_ffff;
        write!(f, "{}.{}#{}", node, local, self.seq)
    }
}

impl std::str::FromStr for MsgKey {
    type Err = String;

    /// Parses the [`std::fmt::Display`] form `node.local#seq` (e.g.
    /// `0.1#3`), so command-line tools can take keys verbatim from
    /// rendered reports.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad message key {s:?}: want node.local#seq");
        let (pid, seq) = s.split_once('#').ok_or_else(err)?;
        let (node, local) = pid.split_once('.').ok_or_else(err)?;
        let node: u64 = node.parse().map_err(|_| err())?;
        let local: u64 = local.parse().map_err(|_| err())?;
        if node > u32::MAX as u64 || local > u32::MAX as u64 {
            return Err(err());
        }
        Ok(MsgKey {
            sender: (node << 32) | local,
            seq: seq.parse().map_err(|_| err())?,
        })
    }
}

/// One lifecycle transition of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Sender kernel handed the message to the transport (or the local
    /// fast path). `aux` = destination queue-independent payload length.
    Publish = 0,
    /// Recorder captured the frame into its battery-backed pending
    /// buffer. `aux` = capture sequence.
    Capture = 1,
    /// Recorder observed the destination's ack and assigned the arrival
    /// sequence — the message is now *published* (recorder-acked).
    /// `aux` = arrival sequence.
    Sequence = 2,
    /// Destination process read the message. `aux` = the process's
    /// 0-based read index.
    Deliver = 3,
    /// The message was re-fed to a recovering process from the published
    /// log. `aux` = the read index being replayed.
    Replay = 4,
    /// A recovering sender regenerated the message but suppressed the
    /// resend at the §4.7 delivered watermark. `aux` = the watermark.
    Suppress = 5,
    /// A durable checkpoint advanced the subject process's replay floor.
    /// `aux` = the new read floor.
    Checkpoint = 6,
    /// A quorum replica won a recorder-group election and became the
    /// sequencing leader. `key.sender` = the replica's station id,
    /// `key.seq` and `aux` = the term won, `subject` = the station id.
    Elect = 7,
}

impl Stage {
    /// Number of stage variants (sampling tables are indexed by stage).
    pub const COUNT: usize = 8;

    /// Stable short name, used in rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Publish => "publish",
            Stage::Capture => "capture",
            Stage::Sequence => "sequence",
            Stage::Deliver => "deliver",
            Stage::Replay => "replay",
            Stage::Suppress => "suppress",
            Stage::Checkpoint => "checkpoint",
            Stage::Elect => "elect",
        }
    }

    /// Inverse of `stage as u8`, for the columnar store's packed rows.
    ///
    /// # Panics
    ///
    /// Panics on a bit pattern no variant uses (packed rows only ever
    /// hold discriminants written by [`SpanLog::record`]).
    pub(crate) fn from_bits(bits: u8) -> Stage {
        match bits {
            0 => Stage::Publish,
            1 => Stage::Capture,
            2 => Stage::Sequence,
            3 => Stage::Deliver,
            4 => Stage::Replay,
            5 => Stage::Suppress,
            6 => Stage::Checkpoint,
            7 => Stage::Elect,
            other => unreachable!("no stage has discriminant {other}"),
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotone per-log emission number (0-based).
    pub seq: u64,
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The message this event belongs to.
    pub key: MsgKey,
    /// Which lifecycle transition occurred.
    pub stage: Stage,
    /// The packed process id the event concerns (the destination for
    /// capture/sequence/deliver/replay, the peer for suppress, the
    /// checkpointed process for checkpoint).
    pub subject: u64,
    /// Stage-specific detail; see [`Stage`] variants.
    pub aux: u64,
}

/// A bounded, fingerprinting log of lifecycle events for one component.
///
/// Storage is columnar ([`crate::store::ColumnarStore`]): retained rows
/// are delta-encoded struct-of-arrays columns at ~18 bytes each instead
/// of 56-byte structs, so the default capacity costs ~1.2 MB per
/// component instead of ~3.7 MB. Reconstruction is exact, and the
/// fingerprint is taken at record time over the caller's values, so it
/// is independent of capacity, sampling, and the storage layout.
#[derive(Debug)]
pub struct SpanLog {
    store: ColumnarStore,
    sampling: SampleSpec,
    capacity: usize,
    total: u64,
    fnv: u64,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanLog {
    /// Creates a log retaining at most `capacity` events (every event is
    /// still counted and fingerprinted after eviction).
    pub fn new(capacity: usize) -> Self {
        SpanLog {
            store: ColumnarStore::default(),
            sampling: SampleSpec::default(),
            capacity,
            total: 0,
            fnv: FNV_OFFSET,
        }
    }

    /// Records one lifecycle event.
    pub fn record(&mut self, at: SimTime, key: MsgKey, stage: Stage, subject: u64, aux: u64) {
        let seq = self.total;
        self.total += 1;
        self.fnv = fnv_fold_event(self.fnv, seq, at, key, stage, subject, aux);
        if self.capacity == 0 || !self.sampling.admit(stage) {
            return;
        }
        if self.store.len() == self.capacity {
            self.store.pop_front();
        }
        self.store.push(SpanEvent {
            seq,
            at,
            key,
            stage,
            subject,
            aux,
        });
    }

    /// Returns the number of events ever recorded (including evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the running fingerprint over all events ever recorded.
    pub fn fingerprint(&self) -> u64 {
        self.fnv
    }

    /// Events recorded but not retained — evicted by the ring, thinned
    /// by sampling, or discarded by a zero capacity. All of them are
    /// still counted and fingerprinted.
    pub fn dropped(&self) -> u64 {
        self.total - self.store.len() as u64
    }

    /// Retained event count.
    pub fn retained(&self) -> usize {
        self.store.len()
    }

    /// Deterministic estimate of the bytes the retained events occupy
    /// (columns + escapes + symbol table).
    pub fn retained_bytes(&self) -> usize {
        self.store.retained_bytes()
    }

    /// Re-bounds the ring. Shrinking (including to 0, the
    /// fingerprint-only mode) evicts oldest-first immediately; counting
    /// and fingerprinting are unaffected.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.store.len() > capacity {
            self.store.pop_front();
        }
    }

    /// Keeps only every `n`-th event of `stage` from now on (`n <= 1`
    /// restores keep-all). Sampling thins retention only; fingerprints
    /// still cover every recorded event.
    pub fn set_sampling(&mut self, stage: Stage, n: u32) {
        self.sampling.set(stage, n);
    }

    /// Returns the retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = SpanEvent> + '_ {
        self.store.iter()
    }

    /// Returns retained events concerning one subject process, oldest
    /// first.
    pub fn events_for(&self, subject: u64) -> impl Iterator<Item = SpanEvent> + '_ {
        self.store.iter().filter(move |e| e.subject == subject)
    }

    /// Returns retained events of one stage, oldest first.
    pub fn events_in(&self, stage: Stage) -> impl Iterator<Item = SpanEvent> + '_ {
        self.store.iter().filter(move |e| e.stage == stage)
    }
}

/// All lifecycle events observed for one message, merged across logs and
/// ordered by virtual time (then stage, then recording order).
#[derive(Debug, Clone)]
pub struct MessageSpan {
    /// The message.
    pub key: MsgKey,
    /// Its events, time-ordered.
    pub events: Vec<SpanEvent>,
    /// Ring eviction dropped this span's early events: a later stage is
    /// present whose prerequisite stage is missing. Latency consumers
    /// must skip partial spans — their stage gaps are fiction.
    pub partial: bool,
}

impl MessageSpan {
    /// Returns the time of the first event of `stage`, if any occurred.
    pub fn first(&self, stage: Stage) -> Option<SimTime> {
        self.events.iter().find(|e| e.stage == stage).map(|e| e.at)
    }

    /// Returns `true` if the span contains an event of `stage`.
    pub fn has(&self, stage: Stage) -> bool {
        self.events.iter().any(|e| e.stage == stage)
    }
}

/// Merges several component logs into per-message spans.
///
/// When any input log has dropped events ([`SpanLog::dropped`]: ring
/// eviction or sampling), spans whose retained stages are missing a
/// prerequisite — capture, sequence, deliver, or suppress without the
/// publish; sequence without the capture — are marked
/// [`MessageSpan::partial`]: their early events fell off the ring, so
/// stage gaps computed from them would be misleading. Without drops no
/// span is ever marked (a missing stage then means the transition
/// genuinely has not happened yet).
pub fn assemble<'a>(logs: impl IntoIterator<Item = &'a SpanLog>) -> BTreeMap<MsgKey, MessageSpan> {
    let mut spans: BTreeMap<MsgKey, MessageSpan> = BTreeMap::new();
    let mut evicted = false;
    for log in logs {
        evicted |= log.dropped() > 0;
        for e in log.events() {
            spans
                .entry(e.key)
                .or_insert_with(|| MessageSpan {
                    key: e.key,
                    events: Vec::new(),
                    partial: false,
                })
                .events
                .push(e);
        }
    }
    for span in spans.values_mut() {
        span.events
            .sort_by_key(|e| (e.at, e.stage, e.subject, e.seq));
        if evicted {
            let needs_publish = [
                Stage::Capture,
                Stage::Sequence,
                Stage::Deliver,
                Stage::Suppress,
            ]
            .iter()
            .any(|&st| span.has(st));
            span.partial = (needs_publish && !span.has(Stage::Publish))
                || (span.has(Stage::Sequence) && !span.has(Stage::Capture));
        }
    }
    spans
}

/// Folds several logs' fingerprints (and totals) into one run-level
/// fingerprint. Order-sensitive: callers must pass logs in a stable
/// order (node id, then shard index).
pub fn combined_fingerprint<'a>(logs: impl IntoIterator<Item = &'a SpanLog>) -> u64 {
    let mut h = FNV_OFFSET;
    for log in logs {
        for b in log
            .total()
            .to_le_bytes()
            .iter()
            .chain(log.fingerprint().to_le_bytes().iter())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Checks the paper's replay invariant against one destination kernel's
/// log: every replayed read of `subject` must carry exactly the message
/// that occupied the same read-order position before the crash, and any
/// read index delivered more than once (pre-crash read, post-recovery
/// re-read) must be occupied by the same message every time.
///
/// Returns `Err` with a description of the first violation, `Ok(n)` with
/// the number of replayed reads checked otherwise.
pub fn check_replay_prefix(log: &SpanLog, subject: u64) -> Result<u64, String> {
    // First occupant of each read index, in recording order: for an index
    // read both before the crash and again during recovery, the first
    // occurrence is the pre-crash read.
    let mut first_read: BTreeMap<u64, MsgKey> = BTreeMap::new();
    for e in log.events_for(subject) {
        if e.stage != Stage::Deliver {
            continue;
        }
        match first_read.get(&e.aux) {
            None => {
                first_read.insert(e.aux, e.key);
            }
            Some(k) if *k != e.key => {
                return Err(format!(
                    "read index {} re-delivered {} but originally read {}",
                    e.aux, e.key, k
                ));
            }
            Some(_) => {}
        }
    }
    let mut checked = 0;
    for e in log.events_for(subject) {
        if e.stage != Stage::Replay {
            continue;
        }
        match first_read.get(&e.aux) {
            Some(k) if *k == e.key => checked += 1,
            Some(k) => {
                return Err(format!(
                    "replay of read index {} fed {} but pre-crash read was {}",
                    e.aux, e.key, k
                ));
            }
            None => {
                return Err(format!(
                    "replay of read index {} fed {} never seen delivered",
                    e.aux, e.key
                ));
            }
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sender: u64, seq: u64) -> MsgKey {
        MsgKey { sender, seq }
    }

    #[test]
    fn fingerprint_independent_of_capacity() {
        let mut small = SpanLog::new(2);
        let mut big = SpanLog::new(1000);
        for i in 0..50 {
            small.record(SimTime::from_nanos(i), key(1, i), Stage::Publish, 2, i);
            big.record(SimTime::from_nanos(i), key(1, i), Stage::Publish, 2, i);
        }
        assert_eq!(small.fingerprint(), big.fingerprint());
        assert_eq!(small.total(), 50);
        assert_eq!(small.events().count(), 2);
    }

    #[test]
    fn fingerprint_sensitive_to_order_and_fields() {
        let mut a = SpanLog::new(8);
        let mut b = SpanLog::new(8);
        a.record(SimTime::ZERO, key(1, 0), Stage::Publish, 2, 0);
        a.record(SimTime::ZERO, key(1, 1), Stage::Publish, 2, 0);
        b.record(SimTime::ZERO, key(1, 1), Stage::Publish, 2, 0);
        b.record(SimTime::ZERO, key(1, 0), Stage::Publish, 2, 0);
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut c = SpanLog::new(8);
        c.record(SimTime::ZERO, key(1, 0), Stage::Capture, 2, 0);
        let mut d = SpanLog::new(8);
        d.record(SimTime::ZERO, key(1, 0), Stage::Publish, 2, 0);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn assemble_merges_and_orders() {
        let mut kernel = SpanLog::new(16);
        let mut recorder = SpanLog::new(16);
        let k = key(0x0000_0001_0000_0001, 1);
        kernel.record(SimTime::from_millis(1), k, Stage::Publish, 7, 0);
        recorder.record(SimTime::from_millis(2), k, Stage::Capture, 7, 0);
        recorder.record(SimTime::from_millis(3), k, Stage::Sequence, 7, 0);
        kernel.record(SimTime::from_millis(4), k, Stage::Deliver, 7, 0);
        let spans = assemble([&kernel, &recorder]);
        let span = &spans[&k];
        let stages: Vec<_> = span.events.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            [
                Stage::Publish,
                Stage::Capture,
                Stage::Sequence,
                Stage::Deliver
            ]
        );
        assert_eq!(span.first(Stage::Publish), Some(SimTime::from_millis(1)));
        assert!(span.has(Stage::Sequence));
        assert!(!span.has(Stage::Replay));
    }

    #[test]
    fn replay_prefix_check_accepts_faithful_replay() {
        let mut log = SpanLog::new(64);
        let pid = 42;
        // Pre-crash reads at indices 0..3.
        for i in 0..3u64 {
            log.record(SimTime::from_nanos(i), key(1, i), Stage::Deliver, pid, i);
        }
        // Replay of indices 1 and 2 (floor 1), then re-reads.
        for i in 1..3u64 {
            log.record(
                SimTime::from_nanos(10 + i),
                key(1, i),
                Stage::Replay,
                pid,
                i,
            );
        }
        for i in 1..3u64 {
            log.record(
                SimTime::from_nanos(20 + i),
                key(1, i),
                Stage::Deliver,
                pid,
                i,
            );
        }
        assert_eq!(check_replay_prefix(&log, pid), Ok(2));
    }

    #[test]
    fn replay_prefix_check_rejects_divergence() {
        let mut log = SpanLog::new(64);
        let pid = 42;
        log.record(SimTime::ZERO, key(1, 0), Stage::Deliver, pid, 0);
        // Replay feeds a different message at index 0.
        log.record(SimTime::from_nanos(5), key(1, 9), Stage::Replay, pid, 0);
        assert!(check_replay_prefix(&log, pid).is_err());

        let mut log2 = SpanLog::new(64);
        log2.record(SimTime::ZERO, key(1, 0), Stage::Deliver, pid, 0);
        // Post-recovery re-read disagrees with the pre-crash occupant.
        log2.record(SimTime::from_nanos(5), key(1, 3), Stage::Deliver, pid, 0);
        assert!(check_replay_prefix(&log2, pid).is_err());
    }

    #[test]
    fn combined_fingerprint_is_order_sensitive() {
        let mut a = SpanLog::new(4);
        let mut b = SpanLog::new(4);
        a.record(SimTime::ZERO, key(1, 0), Stage::Publish, 1, 0);
        b.record(SimTime::ZERO, key(2, 0), Stage::Publish, 2, 0);
        assert_ne!(
            combined_fingerprint([&a, &b]),
            combined_fingerprint([&b, &a])
        );
    }

    #[test]
    fn assemble_without_eviction_never_marks_partial() {
        let mut log = SpanLog::new(16);
        let k = key(1, 0);
        // In-flight message: captured but publish not recorded anywhere —
        // still not partial, because nothing was evicted.
        log.record(SimTime::ZERO, k, Stage::Capture, 7, 0);
        let spans = assemble([&log]);
        assert!(!spans[&k].partial);
    }

    #[test]
    fn assemble_marks_evicted_prefix_partial() {
        let mut log = SpanLog::new(2);
        let old = key(1, 0);
        let fresh = key(1, 1);
        log.record(SimTime::from_nanos(1), old, Stage::Publish, 7, 0);
        log.record(SimTime::from_nanos(2), old, Stage::Deliver, 7, 0);
        // These two evict `old`'s publish, then its deliver.
        log.record(SimTime::from_nanos(3), fresh, Stage::Publish, 7, 0);
        log.record(SimTime::from_nanos(4), old, Stage::Suppress, 7, 0);
        let spans = assemble([&log]);
        assert!(spans[&old].partial, "suppress survived, publish evicted");
        assert!(!spans[&fresh].partial, "complete span stays clean");
    }

    #[test]
    fn msgkey_parses_its_display_form() {
        let k = MsgKey {
            sender: (3u64 << 32) | 7,
            seq: 11,
        };
        assert_eq!(k.to_string().parse::<MsgKey>(), Ok(k));
        assert!("garbage".parse::<MsgKey>().is_err());
        assert!("1.2".parse::<MsgKey>().is_err());
        assert!("1#2".parse::<MsgKey>().is_err());
        assert!("9999999999.0#1".parse::<MsgKey>().is_err());
    }

    #[test]
    fn msgkey_display_unpacks_node_and_local() {
        let k = MsgKey {
            sender: (3u64 << 32) | 7,
            seq: 11,
        };
        assert_eq!(k.to_string(), "3.7#11");
    }
}
