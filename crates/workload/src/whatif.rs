//! Causal what-if profiler: virtual speedups over the capacity knee.
//!
//! Coz-style question, capacity-search answer: *if stage X were faster,
//! how many more users would the tier sustain?* Each [`WhatIfKnob`]
//! turns one physical constant of the simulation — wire speed ×2, the
//! sink-receive budget (transport window) ×2, protocol CPU cost ×0.5 —
//! and the profiler **predicts** the knee under the turned knob from
//! the baseline search's own utilization ledger, without re-running
//! anything. An optional confirm pass re-runs the full knee search
//! under the knob (deterministic, so the error column is exact) and
//! reports prediction error per knob.
//!
//! The prediction model is the utilization law read backwards. At the
//! baseline knee the ledger gives every resource's loaded-window
//! utilization; assume each *load-proportional* resource's utilization
//! scales linearly with users and with the knob's service-time
//! multiplier, and the predicted knee is the user count at which the
//! first resource returns to its saturation point:
//!
//! ```text
//! k_r = k0 · u_sat(r) / (u_r(k0) · s_r)      predicted = min over r
//! ```
//!
//! where `u_sat(r)` is the observed saturation level for the baseline
//! binding resource (a CSMA/CD medium collapses well below wire-rate
//! 1.0, so its *observed* knee utilization is its capacity) and 1.0 for
//! everything else, and `s_r` is the knob's service multiplier on
//! resources of `r`'s kind (1.0 when unaffected). Two structural
//! consequences fall out, both the point of the exercise:
//!
//! - A knob that misses the binding resource predicts `k0` unchanged —
//!   the Coz null result ("speeding up a non-bottleneck buys nothing"),
//!   confirmed exactly by the re-search when the knob is a true no-op
//!   (protocol CPU ×0.5 under the zero cost model).
//! - Self-paced resources (a generator charging its tick CPU at any
//!   load) are excluded by a utilization-slope test against a low-load
//!   probe trial: whole-window utilization that does not grow with
//!   users is pacing, not capacity.

use crate::capacity::{find_knee, run_trial_tuned, Knee, SearchParams, TrialOutcome};
use crate::spec::WorkloadSpec;
use publishing_chaos::{Topology, Tuning};
use publishing_obs::slo::SloSpec;
use publishing_obs::util::{WhatIfReport, WhatIfRow};
use publishing_sim::ledger::{ResourceKind, ResourceUsage};

/// One virtual speedup: a named physical-constant change plus the
/// service-time multiplier it implies per resource kind.
#[derive(Debug, Clone)]
pub struct WhatIfKnob {
    /// Knob name (report key): `wire`, `sink_recv`, `proto_cpu`.
    pub name: &'static str,
    /// The headline factor as the issue states it (speed ×2, cost ×0.5).
    pub multiplier: f64,
    /// Service-time multiplier on affected kinds (< 1.0 = faster).
    service: f64,
    /// Resource kinds whose service time the knob scales.
    kinds: &'static [ResourceKind],
}

impl WhatIfKnob {
    /// The turned tuning: baseline physics with this knob applied.
    pub fn apply(&self, base: &Tuning) -> Tuning {
        let mut t = base.clone();
        match self.name {
            "wire" => t.lan = t.lan.scaled(self.multiplier),
            "sink_recv" => {
                // The sink's receive budget is the stop-and-wait
                // window: ×2 in-flight halves per-message channel
                // occupancy, the sim's version of "sink receive ×0.5".
                let f = (1.0 / self.multiplier).round().max(1.0) as usize;
                t.transport.window = (t.transport.window * f).max(1);
            }
            "proto_cpu" => t.costs = t.costs.scaled(self.multiplier),
            other => panic!("unknown what-if knob {other}"),
        }
        t
    }

    fn service_multiplier(&self, kind: ResourceKind) -> f64 {
        if self.kinds.contains(&kind) {
            self.service
        } else {
            1.0
        }
    }
}

/// The issue's three-knob matrix: wire speed ×2, sink receive ×0.5
/// (transport window ×2), protocol CPU ×0.5.
pub fn standard_knobs() -> Vec<WhatIfKnob> {
    vec![
        WhatIfKnob {
            name: "wire",
            multiplier: 2.0,
            service: 0.5,
            // Faster serialization shortens both the wire's own busy
            // spans and the stop-and-wait round trip every transport
            // channel (and merged sink receive budget) is made of.
            kinds: &[ResourceKind::Medium, ResourceKind::Transport],
        },
        WhatIfKnob {
            name: "sink_recv",
            multiplier: 0.5,
            service: 0.5,
            kinds: &[ResourceKind::Transport],
        },
        WhatIfKnob {
            name: "proto_cpu",
            multiplier: 0.5,
            service: 0.5,
            kinds: &[ResourceKind::NodeCpuProto, ResourceKind::NodeCpuProg],
        },
    ]
}

/// The standard knob (if any) whose service multiplier touches `kind` —
/// the remediation hint regression forensics attaches to a resource
/// suspect, closing the loop from "this resource's busy time grew" back
/// to the physical constant a what-if run can turn.
pub fn knob_for_kind(kind: ResourceKind) -> Option<&'static str> {
    standard_knobs()
        .iter()
        .find(|k| k.kinds.contains(&kind))
        .map(|k| k.name)
}

/// Whether `r`'s whole-window utilization grew materially between the
/// low-load probe and the knee — the test that separates capacity
/// resources from self-paced ones. A resource absent at low load only
/// exists under load, so it counts as proportional.
fn load_proportional(r: &ResourceUsage, low: &[ResourceUsage]) -> bool {
    match low.iter().find(|l| l.name == r.name) {
        Some(l) => r.util > 1.5 * l.util,
        None => true,
    }
}

/// Predicts the knee under `knob` from the baseline knee's utilization
/// ledger plus a low-load probe trial. Returns the predicted user
/// count and the resource the model expects to bind afterwards.
pub fn predict_knee(knee: &Knee, low: &TrialOutcome, knob: &WhatIfKnob) -> (u32, String) {
    let k0 = knee.knee_users;
    // Saturation shows on the first failing point past the knee; the
    // passing knee trial is the fallback when the search never failed.
    let sat = knee.failing_trial().or_else(|| knee.knee_trial());
    let (Some(sat), Some(low_u)) = (
        sat.and_then(|t| t.report.utilization.as_ref()),
        low.report.utilization.as_ref(),
    ) else {
        return (k0, knee.binding.clone().unwrap_or_default());
    };
    let binding = knee.binding.as_deref().unwrap_or("");
    let mut best: Option<(f64, &str)> = None;
    for r in &sat.resources {
        let is_binding = r.name == binding;
        // Only the binding resource and queue-holding proportional
        // resources constrain the prediction: a bursty queue-less row
        // (a disk flushing in spikes) shows high loaded-window
        // intensity without any evidence of a capacity ceiling, and
        // letting it cap the min makes every positive prediction
        // pessimistic.
        if !is_binding && (r.mean_queue <= 0.1 || !load_proportional(r, &low_u.resources)) {
            continue;
        }
        // Loaded-window intensity is what saturates; whole-window util
        // only feeds the proportionality test above.
        let u = r.active_util.max(1e-6);
        let u_sat = if is_binding { u } else { 1.0 };
        let k_r = f64::from(k0) * u_sat / (u * knob.service_multiplier(r.kind));
        if best.is_none_or(|(b, _)| k_r < b) {
            best = Some((k_r, r.name.as_str()));
        }
    }
    match best {
        Some((k, name)) => (k.floor() as u32, name.to_string()),
        None => (k0, knee.binding.clone().unwrap_or_default()),
    }
}

/// Runs the what-if matrix over a finished baseline search: one
/// low-load probe trial (fault-free, `k0/4` users), a prediction per
/// knob, and — when `confirm` is set — a full deterministic knee
/// re-search per knob so every row carries its exact error.
pub fn run_whatif(
    shape: &str,
    topology: Topology,
    spec: &WorkloadSpec,
    slo: &SloSpec,
    params: &SearchParams,
    knee: &Knee,
    confirm: bool,
) -> WhatIfReport {
    let k0 = knee.knee_users;
    let mut report = WhatIfReport {
        baseline_knee: k0,
        rows: Vec::new(),
    };
    if k0 == 0 {
        return report;
    }
    // Floor at GENERATORS users so the probe spawns the same driver
    // set as the knee trial: a resource absent from the probe counts as
    // load-proportional, and a missing generator's CPU row would slip
    // through the self-paced filter and cap every prediction.
    let low_users = (k0 / 4).max(crate::spec::GENERATORS).min(k0);
    let low_spec = spec.clone().with_users(low_users);
    let low = run_trial_tuned(
        topology,
        &low_spec,
        slo,
        params.medium,
        None,
        &params.tuning,
    );
    for knob in standard_knobs() {
        let (predicted, binding_after) = predict_knee(knee, &low, &knob);
        let confirmed = confirm.then(|| {
            let tuned = SearchParams {
                // Leave the re-search headroom past the prediction so a
                // capped bracket cannot masquerade as a confirmation.
                max_users: params.max_users.max(predicted.saturating_mul(2)),
                tuning: knob.apply(&params.tuning),
                ..params.clone()
            };
            find_knee(shape, topology, spec, slo, &tuned)
        });
        report.rows.push(WhatIfRow {
            knob: knob.name.to_string(),
            multiplier: knob.multiplier,
            predicted_knee: predicted,
            confirmed_knee: confirmed.as_ref().map(|k| k.knee_users),
            binding_after: confirmed
                .as_ref()
                .and_then(|k| k.binding.clone())
                .unwrap_or(binding_after),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_chaos::Medium;

    #[test]
    fn knob_matrix_matches_the_issue() {
        let names: Vec<_> = standard_knobs().iter().map(|k| k.name).collect();
        assert_eq!(names, ["wire", "sink_recv", "proto_cpu"]);
        let base = Tuning::default();
        let wire = standard_knobs()[0].apply(&base);
        assert_eq!(wire.lan.bandwidth_bps, base.lan.bandwidth_bps * 2);
        let recv = standard_knobs()[1].apply(&base);
        assert_eq!(recv.transport.window, base.transport.window * 2);
        let cpu = standard_knobs()[2].apply(&base);
        assert_eq!(cpu.costs.net_receive, base.costs.net_receive.mul_f64(0.5));
    }

    #[test]
    fn knob_for_kind_maps_the_protocol_cpu_and_wire() {
        assert_eq!(knob_for_kind(ResourceKind::NodeCpuProto), Some("proto_cpu"));
        assert_eq!(knob_for_kind(ResourceKind::NodeCpuProg), Some("proto_cpu"));
        // The wire knob claims the medium first (matrix order).
        assert_eq!(knob_for_kind(ResourceKind::Medium), Some("wire"));
        assert_eq!(knob_for_kind(ResourceKind::Transport), Some("wire"));
        assert_eq!(knob_for_kind(ResourceKind::Disk), None);
    }

    #[test]
    fn null_knob_predicts_unchanged_knee() {
        // A knob whose kinds miss the binding resource must predict k0:
        // the binding row contributes k0 · u/u = k0 to the min.
        let spec = WorkloadSpec {
            subjects: 2,
            rate_per_sec: 40,
            horizon_ms: 400,
            ..WorkloadSpec::default()
        };
        let params = SearchParams {
            max_users: 8,
            chaos: false,
            medium: Medium::Perfect,
            ..SearchParams::default()
        };
        let knee = find_knee("t", Topology::Single, &spec, &SloSpec::default(), &params);
        if knee.knee_users == 0 || knee.binding.is_none() {
            return; // nothing saturated at this tiny scale — no claim
        }
        let w = run_whatif(
            "t",
            Topology::Single,
            &spec,
            &SloSpec::default(),
            &params,
            &knee,
            false,
        );
        let cpu = w.rows.iter().find(|r| r.knob == "proto_cpu").unwrap();
        // Zero cost model: cpu rows never saturate, prediction is k0.
        assert_eq!(cpu.predicted_knee, knee.knee_users);
    }
}
