//! Criterion benches over the paper's experiments: one group per table or
//! figure, timing the simulation that regenerates it (wall-clock cost of
//! the reproduction itself), plus substrate micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use publishing_bench::scenarios;
use publishing_core::node_recovery::{run_workload, NodeUnit};
use publishing_demos::driver::{LONG_BYTES, SHORT_BYTES};
use publishing_queueing::{figure_5_5, max_users, ShardedTier, SystemConfig};
use publishing_sim::rng::DetRng;
use publishing_sim::time::SimTime;
use std::hint::black_box;

fn bench_fig5_7_per_message(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_7_per_message");
    g.sample_size(10);
    for &publishing in &[true, false] {
        g.bench_with_input(
            BenchmarkId::new("selfping128", publishing),
            &publishing,
            |b, &publishing| {
                b.iter(|| black_box(scenarios::per_message_costs(publishing, 128)));
            },
        );
    }
    g.finish();
}

fn bench_fig5_8_per_process(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_8_per_process");
    g.sample_size(10);
    for &publishing in &[true, false] {
        g.bench_with_input(
            BenchmarkId::new("create_destroy10", publishing),
            &publishing,
            |b, &publishing| {
                b.iter(|| black_box(scenarios::per_process_costs(publishing, 10)));
            },
        );
    }
    g.finish();
}

fn bench_fig5_5_queueing_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_5_queueing");
    g.bench_function("utilization_sweep", |b| {
        b.iter(|| black_box(figure_5_5(true)));
    });
    g.bench_function("capacity_115_users", |b| {
        b.iter(|| black_box(max_users(&SystemConfig::default())));
    });
    g.finish();
}

fn bench_fig6_2_ethernet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_2_ethernet");
    g.sample_size(10);
    let horizon = SimTime::from_secs(2);
    for &(label, ack) in &[("standard", false), ("acknowledging", true)] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(scenarios::ethernet_run(ack, 8, 40.0, horizon, 9)));
        });
    }
    g.finish();
}

fn bench_fig6_4_token_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_4_token_ring");
    for &recorder in &[1u32, 7] {
        g.bench_with_input(
            BenchmarkId::new("recorder_at", recorder),
            &recorder,
            |b, &recorder| {
                b.iter(|| black_box(scenarios::token_ring_run(8, recorder, 64)));
            },
        );
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    for &interval in &[0u64, 50] {
        g.bench_with_input(
            BenchmarkId::new("checkpoint_ms", interval),
            &interval,
            |b, &interval| {
                b.iter(|| black_box(scenarios::measured_recovery_ms(interval, 300)));
            },
        );
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch2_baselines");
    g.bench_function("recovery_lines_vs_publishing", |b| {
        b.iter(|| black_box(scenarios::baseline_comparison(20, 3)));
    });
    g.finish();
}

fn bench_node_unit(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec6_6_node_unit");
    g.bench_function("run_and_replay", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(4);
            let (live, log) = run_workload(6, 3, 100, &mut rng);
            let recovered = NodeUnit::replay(6, 3, &log);
            black_box((live.state_digest(), recovered.state_digest()))
        });
    });
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    use publishing_net::crc::crc32;
    use publishing_sim::codec::{Decode, Encode};
    let mut g = c.benchmark_group("substrate");
    let data = vec![0xA5u8; LONG_BYTES];
    g.bench_function("crc32_1k", |b| b.iter(|| black_box(crc32(&data))));
    let msg = publishing_demos::message::Message {
        header: publishing_demos::message::MessageHeader {
            id: publishing_demos::ids::MessageId {
                sender: publishing_demos::ids::ProcessId::new(1, 2),
                seq: 7,
            },
            to: publishing_demos::ids::ProcessId::new(2, 3),
            code: 0,
            channel: publishing_demos::ids::Channel(0),
            deliver_to_kernel: false,
        },
        passed_link: None,
        body: vec![0; SHORT_BYTES],
    };
    g.bench_function("message_encode_decode", |b| {
        b.iter(|| {
            let buf = msg.encode_to_vec();
            black_box(publishing_demos::message::Message::decode_all(&buf).unwrap())
        })
    });
    g.finish();
}

/// Sweeps the sharded recorder tier from 1 to 8 shards: the queueing-
/// model capacity probe and a full `ShardedWorld` ping workload (router,
/// capture sets, and ack gating all on the hot path).
fn bench_shard_sweep(c: &mut Criterion) {
    use publishing_demos::ids::Channel;
    use publishing_demos::link::Link;
    use publishing_demos::programs::{self, PingClient};
    use publishing_demos::registry::ProgramRegistry;
    use publishing_shard::ShardedWorld;

    let mut g = c.benchmark_group("shard_sweep");
    g.sample_size(10);
    for shards in 1..=8u32 {
        g.bench_with_input(
            BenchmarkId::new("tier_capacity", shards),
            &shards,
            |b, &n| {
                b.iter(|| black_box(publishing_queueing::tier_max_users(&ShardedTier::new(n, 2))));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sharded_world_ping", shards),
            &shards,
            |b, &n| {
                b.iter(|| {
                    let mut reg = ProgramRegistry::new();
                    programs::register_standard(&mut reg);
                    reg.register("ping25", || Box::new(PingClient::new(25)));
                    let mut w = ShardedWorld::new(2, n as usize, reg);
                    let server = w.spawn(1, "echo", vec![]).unwrap();
                    let client = w
                        .spawn(0, "ping25", vec![Link::to(server, Channel::DEFAULT, 7)])
                        .unwrap();
                    w.run_until(SimTime::from_secs(5));
                    black_box(w.outputs_of(client).len())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5_7_per_message,
    bench_fig5_8_per_process,
    bench_fig5_5_queueing_sweep,
    bench_fig6_2_ethernet,
    bench_fig6_4_token_ring,
    bench_recovery,
    bench_baselines,
    bench_node_unit,
    bench_substrate,
    bench_shard_sweep,
);
criterion_main!(benches);
