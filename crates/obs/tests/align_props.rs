//! Property tests pinning the critical-path alignment invariants that
//! the regression-forensics differ leans on:
//!
//! - **totality** — every segment of both paths is consumed by exactly
//!   one hop, even when one side's span log was truncated mid-run and
//!   its recovery path therefore covers fewer stages;
//! - **telescoping** — hop deltas sum to the total slack delta, so the
//!   per-hop attribution always accounts for the whole regression;
//! - **self-alignment** — a path aligned against itself is clean: all
//!   hops matched, zero delta.

use proptest::prelude::*;
use publishing_obs::causal::{align_paths, CausalGraph, CriticalPath, HopStatus};
use publishing_obs::span::{MsgKey, SpanEvent, SpanLog, Stage};
use publishing_sim::time::SimTime;

const STAGES: [Stage; 8] = [
    Stage::Publish,
    Stage::Capture,
    Stage::Sequence,
    Stage::Deliver,
    Stage::Replay,
    Stage::Suppress,
    Stage::Checkpoint,
    Stage::Elect,
];

#[derive(Debug, Clone)]
struct Rec {
    dt: u64,
    sender: u64,
    seq: u64,
    stage: Stage,
    subject: u64,
}

fn arb_rec() -> impl Strategy<Value = Rec> {
    (
        1u64..2_000_000,
        0u64..4,
        0u64..40,
        0usize..STAGES.len(),
        0u64..4,
    )
        .prop_map(|(dt, sender, seq, stage, subject)| Rec {
            dt,
            sender: sender + 1,
            seq,
            stage: STAGES[stage],
            subject: subject + 1,
        })
}

/// Replays the first `take` records into a span log and derives the
/// crash→convergence critical path over the whole recorded window.
/// Returns `None` when the truncated log is empty (no anchor event).
fn path_of(recs: &[Rec], take: usize) -> Option<CriticalPath> {
    let take = take.min(recs.len());
    if take == 0 {
        return None;
    }
    let mut log = SpanLog::new(take);
    let mut at = 0u64;
    for r in &recs[..take] {
        at += r.dt;
        log.record(
            SimTime::from_nanos(at),
            MsgKey {
                sender: r.sender,
                seq: r.seq,
            },
            r.stage,
            r.subject,
            0,
        );
    }
    let events: Vec<SpanEvent> = log.events().collect();
    let graph = CausalGraph::from_event_lists(&[events]);
    graph.critical_path(
        SimTime::from_nanos(0),
        SimTime::from_nanos(at + 1_000),
        None,
    )
}

proptest! {
    /// Any path aligned against itself is clean: every hop matched with
    /// zero slack delta, and the alignment consumes both sides exactly.
    #[test]
    fn self_alignment_is_clean(recs in proptest::collection::vec(arb_rec(), 1..60)) {
        let Some(p) = path_of(&recs, recs.len()) else { return };
        let al = align_paths(&p, &p);
        prop_assert!(al.is_clean(), "{}", al.render());
        prop_assert_eq!(al.hops.len(), p.segments.len());
        prop_assert_eq!(al.delta_total_ms(), 0.0);
    }

    /// Totality over truncation: aligning the full-history path against
    /// a path built from a truncated span log must consume every
    /// segment of both paths exactly once — nothing the truncation left
    /// behind is silently dropped from the diff.
    #[test]
    fn alignment_is_total_over_truncated_logs(
        recs in proptest::collection::vec(arb_rec(), 2..60),
        cut in 1usize..60,
    ) {
        let Some(full) = path_of(&recs, recs.len()) else { return };
        let Some(cutp) = path_of(&recs, cut) else { return };
        let al = align_paths(&full, &cutp);
        let consumes_baseline = al
            .hops
            .iter()
            .filter(|h| h.status != HopStatus::OnlyRun)
            .count();
        let consumes_run = al
            .hops
            .iter()
            .filter(|h| h.status != HopStatus::OnlyBaseline)
            .count();
        prop_assert_eq!(consumes_baseline, full.segments.len(), "{}", al.render());
        prop_assert_eq!(consumes_run, cutp.segments.len(), "{}", al.render());
        // Matched hops really pair identical categories.
        for h in &al.hops {
            if h.status == HopStatus::OnlyBaseline {
                prop_assert_eq!(h.run_ms, 0.0);
            }
            if h.status == HopStatus::OnlyRun {
                prop_assert_eq!(h.baseline_ms, 0.0);
            }
        }
    }

    /// Telescoping: per-hop deltas sum to the total slack delta, and
    /// each side's hop durations sum to that side's path total (within
    /// f64 summation noise — durations are integer nanoseconds
    /// underneath).
    #[test]
    fn hop_deltas_telescope_to_the_total(
        recs in proptest::collection::vec(arb_rec(), 2..60),
        cut in 1usize..60,
    ) {
        let Some(full) = path_of(&recs, recs.len()) else { return };
        let Some(cutp) = path_of(&recs, cut) else { return };
        let al = align_paths(&full, &cutp);
        let base_sum: f64 = al.hops.iter().map(|h| h.baseline_ms).sum();
        let run_sum: f64 = al.hops.iter().map(|h| h.run_ms).sum();
        let delta_sum: f64 = al.hops.iter().map(|h| h.delta_ms()).sum();
        prop_assert!(
            (base_sum - al.baseline_total_ms).abs() < 1e-6,
            "baseline hops {} != total {}",
            base_sum,
            al.baseline_total_ms
        );
        prop_assert!(
            (run_sum - al.run_total_ms).abs() < 1e-6,
            "run hops {} != total {}",
            run_sum,
            al.run_total_ms
        );
        prop_assert!(
            (delta_sum - al.delta_total_ms()).abs() < 1e-6,
            "hop deltas {} != total delta {}",
            delta_sum,
            al.delta_total_ms()
        );
    }
}
