//! The automated office of Chapter 1 (the XEROX STAR configuration):
//! personal workstations sharing an expensive printer over the LAN,
//! with rendezvous through the named-link server (§4.2.2.1).
//!
//! Two secretaries' word processors stream print jobs to the shared
//! printer. The printer crashes mid-job; publishing restores it and every
//! page comes out exactly once, in order — neither secretary resubmits
//! anything.
//!
//! Run with: `cargo run --example office`

use publishing::core::checkpoint::CheckpointPolicy;
use publishing::core::node::RecorderConfig;
use publishing::core::world::WorldBuilder;
use publishing::demos::ids::{Channel, LinkId};
use publishing::demos::link::Link;
use publishing::demos::program::{Ctx, Program, Received};
use publishing::demos::registry::ProgramRegistry;
use publishing::demos::sysproc::{sys_codes, NameServer};
use publishing::sim::codec::{CodecError, Decoder, Encoder};
use publishing::sim::time::{SimDuration, SimTime};

/// The shared printer: prints each page it receives, in arrival order.
#[derive(Default)]
struct Printer {
    pages: u64,
}

impl Program for Printer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Register ourselves with the name server (initial link 0).
        let me = ctx.create_link(Channel::DEFAULT, 0);
        let mut e = Encoder::new();
        e.u32(sys_codes::NS_REGISTER);
        e.str("laser-printer");
        let _ = ctx.send_passing(LinkId(0), e.finish(), me);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        self.pages += 1;
        // Printing a page takes a while.
        ctx.compute(SimDuration::from_millis(3));
        ctx.output(
            format!(
                "page {:>3}: {}",
                self.pages,
                String::from_utf8_lossy(&msg.body)
            )
            .into_bytes(),
        );
    }

    fn snapshot(&self) -> Vec<u8> {
        self.pages.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.pages =
            u64::from_le_bytes(bytes.try_into().map_err(|_| CodecError::UnexpectedEnd {
                needed: 8,
                remaining: bytes.len(),
            })?);
        Ok(())
    }
}

/// A word processor: looks the printer up by name, then streams pages.
struct WordProcessor {
    who: &'static str,
    pages: u64,
    sent: u64,
    printer: Option<u32>,
}

impl Program for WordProcessor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Look up the printer at the name server (initial link 0).
        let reply = ctx.create_link(Channel::DEFAULT, 0);
        let mut e = Encoder::new();
        e.u32(sys_codes::NS_LOOKUP);
        e.str("laser-printer");
        let _ = ctx.send_passing(LinkId(0), e.finish(), reply);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if self.printer.is_none() {
            // The lookup reply carries the printer link.
            let Some(printer) = msg.link else { return };
            // Check the found flag; retry on a miss (the printer may not
            // have registered yet — our printer registers first, so a miss
            // means a malformed reply).
            self.printer = Some(printer.0);
        }
        let printer = LinkId(self.printer.expect("just set"));
        // Stream the document, one page per activation, driven by a
        // self-message "typing loop".
        if self.sent < self.pages {
            self.sent += 1;
            let text = format!("{} — draft page {}", self.who, self.sent);
            let _ = ctx.send(printer, text.into_bytes());
            // Keep typing: a self-message drives the next page.
            let me = ctx.create_link(Channel::DEFAULT, 1);
            ctx.compute(SimDuration::from_millis(2));
            let _ = ctx.send(me, vec![]);
        } else if self.sent == self.pages {
            self.sent += 1; // say it once
            ctx.output(format!("{} finished typing", self.who).into_bytes());
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(self.who).u64(self.pages).u64(self.sent);
        e.option(self.printer.as_ref(), |e, p| {
            e.u32(*p);
        });
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        let who = d.str()?;
        self.who = match who.as_str() {
            "amelia" => "amelia",
            _ => "bruno",
        };
        self.pages = d.u64()?;
        self.sent = d.u64()?;
        self.printer = d.option(|d| d.u32())?;
        d.finish()
    }
}

fn main() {
    let mut registry = ProgramRegistry::new();
    registry.register("namesrv", || Box::new(NameServer::new()));
    registry.register("printer", || Box::<Printer>::default());
    registry.register("amelia", || {
        Box::new(WordProcessor {
            who: "amelia",
            pages: 6,
            sent: 0,
            printer: None,
        })
    });
    registry.register("bruno", || {
        Box::new(WordProcessor {
            who: "bruno",
            pages: 6,
            sent: 0,
            printer: None,
        })
    });

    // Checkpoint eagerly so the printer recovers from near its crash
    // point rather than from page one.
    let rc = RecorderConfig {
        policy: CheckpointPolicy::Periodic(SimDuration::from_millis(40)),
        policy_tick: SimDuration::from_millis(10),
        ..RecorderConfig::default()
    };
    let mut world = WorldBuilder::new(3).registry(registry).recorder(rc).build();

    let namesrv = world.spawn(0, "namesrv", vec![]).unwrap();
    let printer = world
        .spawn(0, "printer", vec![Link::to(namesrv, Channel::DEFAULT, 0)])
        .unwrap();
    // Give the printer a beat to register before the lookups.
    world.run_until(SimTime::from_millis(10));
    let _amelia = world
        .spawn(1, "amelia", vec![Link::to(namesrv, Channel::DEFAULT, 0)])
        .unwrap();
    let _bruno = world
        .spawn(2, "bruno", vec![Link::to(namesrv, Channel::DEFAULT, 0)])
        .unwrap();

    world.run_until(SimTime::from_millis(40));
    println!("t={}  the printer jams (process crash)…\n", world.now());
    world.crash_process(printer, "paper jam");

    world.run_until(SimTime::from_secs(30));
    println!("printer output (deduplicated):");
    let pages = world.outputs_of(printer);
    for line in &pages {
        println!("  {line}");
    }
    assert_eq!(pages.len(), 12, "12 pages exactly once: {}", pages.len());
    // Page numbers are strictly sequential — no page lost or duplicated.
    for (i, line) in pages.iter().enumerate() {
        assert!(line.starts_with(&format!("page {:>3}:", i + 1)), "{line}");
    }
    println!("\nall 12 pages printed exactly once across the crash.");
    println!(
        "recorder stored {} checkpoints; replay covered {} messages.",
        world.recorder.recorder().stats().checkpoints.get(),
        world.recorder.manager().stats().replayed.get()
    );
}
