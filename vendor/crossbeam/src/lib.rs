//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of `crossbeam::channel` the workspace uses:
//! bounded MPMC-ish channels (`bounded`), a periodic `tick` receiver,
//! and a polling `select!` macro. It is built on `std::sync::mpsc`;
//! `select!` polls its receivers with a short sleep instead of parking,
//! which is indistinguishable for the millisecond-granularity runtimes
//! this workspace drives with it.

#![forbid(unsafe_code)]

/// Multi-producer channels with crossbeam's surface.
pub mod channel {
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    pub use crate::select;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl TryRecvError {
        /// `true` for the disconnected variant (used by `select!`).
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TryRecvError::Disconnected)
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// `select!` internals: builds receiver-typed results so arm
    /// patterns infer without annotations.
    #[doc(hidden)]
    pub fn __select_ok<T>(_rx: &Receiver<T>, v: T) -> Result<T, RecvError> {
        Ok(v)
    }

    #[doc(hidden)]
    pub fn __select_disconnected<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
        Err(RecvError)
    }

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(rx))
    }

    /// A receiver that yields the current instant roughly every `every`.
    /// The backing thread exits once the receiver is dropped.
    pub fn tick(every: Duration) -> Receiver<Instant> {
        let (tx, rx) = bounded::<Instant>(1);
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if tx.send(Instant::now()).is_err() {
                return;
            }
        });
        rx
    }
}

/// A polling stand-in for crossbeam's `select!`: tries each `recv(..)`
/// arm in order, runs the first ready one, and otherwise sleeps briefly
/// and retries. Only the `recv(receiver) -> pattern => body` arm form
/// used by this workspace is supported.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {
        'crossbeam_select: loop {
            $(
                match $rx.try_recv() {
                    Ok(v) => {
                        let $res = $crate::channel::__select_ok(&$rx, v);
                        { $body }
                        break 'crossbeam_select;
                    }
                    Err(e) if e.is_disconnected() => {
                        let $res = $crate::channel::__select_disconnected(&$rx);
                        { $body }
                        break 'crossbeam_select;
                    }
                    _ => {}
                }
            )+
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, tick};
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn select_picks_ready_arm_and_sees_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        let (_keep, ticker) = (tx.clone(), tick(Duration::from_secs(3600)));
        tx.send(7).unwrap();
        let mut got = None;
        select! {
            recv(rx) -> msg => got = Some(msg),
            recv(ticker) -> _ => {}
        }
        assert_eq!(got, Some(Ok(7)));
    }
}
