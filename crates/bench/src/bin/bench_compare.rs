//! The CI perf-regression gate: diffs two `BENCH_<n>.json` snapshots.
//!
//! Usage: `bench_compare [--json] [--explain] <prev.json> <new.json>`
//!
//! Compares the newer snapshot against the older one under the default
//! rule set (see `publishing_perf::compare::default_rules`): virtual
//! metrics only, with per-metric noise thresholds. Exit codes: `0` no
//! regression, `1` at least one gated metric regressed, `2` the inputs
//! are unreadable or not comparable (schema/mode mismatch, scenario
//! lost).
//!
//! - `--json` prints the verdict as one machine-readable JSON document
//!   instead of text (the exit-code contract is unchanged and also
//!   embedded in the document);
//! - `--explain` appends the regression-forensics diagnosis: per
//!   violated rule, the top-ranked suspects from the snapshot's
//!   attribution families (profile categories, ledger busy times,
//!   critical-path stages, what-if knees, allocation meters), each
//!   annotated with the standard what-if knob that would turn it.

use publishing_bench::forensics_demo::annotate_remediation;
use publishing_perf::forensics::{diff_snapshots, ForensicsOptions};
use publishing_perf::snapshot::Snapshot;

fn load(path: &str) -> Snapshot {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match Snapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut json = false;
    let mut explain = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--explain" => explain = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}; usage: bench_compare [--json] [--explain] <prev.json> <new.json>");
                std::process::exit(2);
            }
            _ => paths.push(arg),
        }
    }
    let [prev_path, new_path] = paths.as_slice() else {
        eprintln!("usage: bench_compare [--json] [--explain] <prev.json> <new.json>");
        std::process::exit(2);
    };
    let prev = load(prev_path);
    let new = load(new_path);
    let (c, mut diagnosis) = diff_snapshots(prev_path, &prev, &new, &ForensicsOptions::default());
    annotate_remediation(&mut diagnosis);
    if json {
        if explain && !diagnosis.is_empty() {
            // One document: the verdict with the diagnosis grafted in.
            let verdict = c.to_json();
            let spliced = verdict
                .strip_suffix('}')
                .map(|head| format!("{head},\"forensics\":{}}}", diagnosis.to_json()))
                .unwrap_or(verdict);
            println!("{spliced}");
        } else {
            println!("{}", c.to_json());
        }
    } else {
        print!("{}", c.render());
        if explain {
            print!("{}", diagnosis.render());
        }
    }
    std::process::exit(c.exit_code());
}
