//! End-to-end recovery tests: the paper's central claims, exercised
//! through the full world (nodes + recorder + medium).

use publishing_core::checkpoint::CheckpointPolicy;
use publishing_core::node::RecorderConfig;
use publishing_core::world::{World, WorldBuilder};
use publishing_demos::ids::{Channel, ProcessId};
use publishing_demos::link::Link;
use publishing_demos::programs::{self, Chatter, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_sim::time::{SimDuration, SimTime};

fn registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping10", || Box::new(PingClient::new(10)));
    reg.register("ping50", || Box::new(PingClient::new(50)));
    reg
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A paced ping client: like PingClient but with per-iteration think
/// time, so crashes land mid-workload.
fn slow_ping_registry(n: u64, think_us: u64) -> ProgramRegistry {
    let mut reg = registry();
    reg.register("slowping", move || {
        let mut p = PingClient::new(n);
        p.think_ns = think_us * 1_000;
        Box::new(p)
    });
    reg
}

#[test]
fn server_crash_recovers_transparently() {
    let mut w = WorldBuilder::new(2).registry(registry()).build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping10", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    // Let a few pings through, then crash the server process.
    w.run_until(SimTime::from_millis(40));
    w.crash_process(server, "injected parity error");
    w.run_until(secs(10));
    // The client saw every pong exactly once; it never learned anything
    // happened.
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 11, "10 pongs + done: {out:?}");
    assert_eq!(out[10], "done");
    for (i, line) in out.iter().take(10).enumerate() {
        assert!(
            line.starts_with(&format!("pong {}", i + 1)),
            "line {i}: {line}"
        );
    }
    // Recovery actually happened (this wasn't a lucky no-op).
    assert_eq!(w.recorder.manager().stats().completed.get(), 1);
    assert!(w.recorder.manager().stats().replayed.get() > 0);
}

#[test]
fn client_crash_recovers_and_finishes() {
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(20, 2000))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(60));
    w.crash_process(client, "injected");
    w.run_until(secs(10));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 21, "{out:?}");
    assert_eq!(out.last().unwrap(), "done");
    // The server never executed a duplicate request: 20 echoes exactly.
    let sp = w.kernels[&1].process(server.local).unwrap();
    assert_eq!(sp.read_count, 20);
}

#[test]
fn node_crash_detected_and_all_processes_recovered() {
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(30, 1000))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(50));
    // The whole server node dies; the watchdog must notice.
    w.crash_node(1);
    w.run_until(secs(20));
    assert!(w.recorder.manager().stats().node_crashes.get() >= 1);
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 31, "{out:?}");
    assert_eq!(out.last().unwrap(), "done");
}

#[test]
fn recovery_uses_checkpoint_not_initial_state() {
    // Aggressive checkpointing: by crash time the server has a durable
    // checkpoint, so replay starts there instead of from the binary image.
    let cfg = RecorderConfig {
        policy: CheckpointPolicy::Periodic(SimDuration::from_millis(50)),
        policy_tick: SimDuration::from_millis(10),
        ..RecorderConfig::default()
    };
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(40, 2000))
        .recorder(cfg)
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(300));
    let checkpoints_before = w.recorder.recorder().stats().checkpoints.get();
    assert!(checkpoints_before > 2, "checkpoints should have been taken");
    let floor = w.recorder.recorder().entry(server).unwrap().read_floor;
    assert!(floor > 0, "server checkpoint covers some reads");
    w.crash_process(server, "injected");
    w.run_until(secs(20));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 41, "{out:?}");
    // Replay was bounded by the checkpoint: fewer messages than the
    // server's total read count.
    let replayed = w.recorder.manager().stats().replayed.get();
    let total_reads = w.kernels[&1].process(server.local).unwrap().read_count;
    assert!(
        replayed < total_reads,
        "replayed {replayed} should be less than total reads {total_reads}"
    );
}

#[test]
fn crashed_and_crash_free_runs_are_equivalent() {
    // The core theorem, in its strict form: for this workload and crash
    // schedule, the run with crashes and recovery produces exactly the
    // outputs of the crash-free run. (Bit-exact equality is guaranteed
    // for FIFO-pair workloads; for multi-sender topologies like this one
    // it additionally requires that no undelivered cross-sender messages
    // were in flight at crash time — true for these fixed schedules, and
    // the property suite checks the order-independent guarantees for
    // arbitrary schedules.)
    let run = |crash: bool| -> (u64, World) {
        let mut reg = registry();
        reg.register("chat-a", || Box::new(Chatter::new(7, 2, true)));
        reg.register("chat-b", || Box::new(Chatter::new(9, 2, true)));
        reg.register("chat-c", || Box::new(Chatter::new(11, 2, true)));
        let mut w = WorldBuilder::new(3).registry(reg).build();
        let a = ProcessId::new(0, 1);
        let b = ProcessId::new(1, 1);
        let c = ProcessId::new(2, 1);
        // Ring of chatterboxes: each talks to the other two.
        w.spawn(
            0,
            "chat-a",
            vec![
                Link::to(b, Channel::DEFAULT, 0),
                Link::to(c, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        w.spawn(
            1,
            "chat-b",
            vec![
                Link::to(c, Channel::DEFAULT, 0),
                Link::to(a, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        w.spawn(
            2,
            "chat-c",
            vec![
                Link::to(a, Channel::DEFAULT, 0),
                Link::to(b, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
        if crash {
            w.run_until(SimTime::from_millis(100));
            w.crash_process(b, "injected");
            w.run_until(SimTime::from_millis(400));
            w.crash_process(c, "injected again");
        }
        w.run_until(secs(30));
        (w.output_fingerprint(), w)
    };
    let (clean, _wclean) = run(false);
    let (crashed, wcrashed) = run(true);
    assert!(wcrashed.recorder.manager().stats().completed.get() >= 2);
    assert_eq!(clean, crashed, "recovered run must be externally identical");
}

#[test]
fn recorder_crash_suspends_then_system_resumes() {
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(30, 1000))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(50));
    w.crash_recorder();
    // While the recorder is down no progress happens…
    let before = w.outputs_of(client).len();
    w.run_until(SimTime::from_millis(550));
    let during = w.outputs_of(client).len();
    assert!(
        during <= before + 1,
        "traffic suspended while recorder down"
    );
    // …and once it restarts, everything completes.
    w.restart_recorder();
    w.run_until(secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 31, "{out:?}");
}

#[test]
fn recorder_restart_recovers_processes_that_died_while_it_was_down() {
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(20, 1000))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(50));
    w.crash_recorder();
    w.run_until(SimTime::from_millis(100));
    // The server dies while the recorder is down: nobody records a crash
    // notice. The §3.3.4 state-query protocol must find it.
    w.crash_process(server, "silent while recorder down");
    w.run_until(SimTime::from_millis(200));
    w.restart_recorder();
    w.run_until(secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 21, "{out:?}");
    assert!(w.recorder.manager().stats().completed.get() >= 1);
}

#[test]
fn recursive_crash_during_recovery_still_recovers() {
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(20, 2000))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(60));
    w.crash_process(server, "first");
    // Crash it again shortly after recovery begins (§3.5).
    w.run_until(SimTime::from_millis(75));
    w.crash_process(server, "recursive");
    w.run_until(secs(20));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 21, "{out:?}");
}

#[test]
fn without_publishing_a_crash_loses_work() {
    // The baseline: same workload, no recorder — the crash is fatal to
    // the remaining pings.
    let mut w = WorldBuilder::new(2)
        .registry(slow_ping_registry(20, 1000))
        .without_publishing()
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(50));
    w.crash_process(server, "fatal without publishing");
    w.run_until(secs(5));
    let out = w.outputs_of(client);
    assert!(out.len() < 21, "the run cannot complete: {}", out.len());
    assert_ne!(out.last().map(|s| s.as_str()), Some("done"));
}
