//! Per-process message queues with channel-selective receive (§4.2.2.2).
//!
//! "Instead of returning the next message in the queue, the message kernel
//! returns the next message in the queue which belongs to one of those
//! channels." When that skips the queue head, publishing requires telling
//! the recorder (§4.4.2) — the queue reports the deviation so the kernel
//! can send the read-order notice.

use crate::ids::{ChannelSet, MessageId};
use crate::message::Message;
use std::collections::VecDeque;

/// What a successful selective receive tells the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadInfo {
    /// The message handed to the process.
    pub message: Message,
    /// `Some(head_id)` when the read skipped the queue head — the §4.4.2
    /// notice content: "the id of the message read and the id of the first
    /// message in the queue".
    pub skipped_head: Option<MessageId>,
}

/// A process's queue of unread messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageQueue {
    items: VecDeque<Message>,
}

impl MessageQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MessageQueue::default()
    }

    /// Appends an arriving message.
    pub fn enqueue(&mut self, msg: Message) {
        self.items.push_back(msg);
    }

    /// Removes and returns the first message on one of `channels`, noting
    /// whether the queue head was skipped.
    pub fn receive(&mut self, channels: ChannelSet) -> Option<ReadInfo> {
        let pos = self
            .items
            .iter()
            .position(|m| channels.contains(m.header.channel))?;
        let skipped_head = if pos == 0 {
            None
        } else {
            Some(self.items[0].header.id)
        };
        let message = self.items.remove(pos).expect("position valid");
        Some(ReadInfo {
            message,
            skipped_head,
        })
    }

    /// Like [`MessageQueue::receive`], but DELIVERTOKERNEL process-control
    /// messages match regardless of the channel mask — they are urgent and
    /// executed by the kernel, not delivered to the program (§4.4.3).
    pub fn receive_for_process(&mut self, channels: ChannelSet) -> Option<ReadInfo> {
        let pos = self
            .items
            .iter()
            .position(|m| m.header.deliver_to_kernel || channels.contains(m.header.channel))?;
        let skipped_head = if pos == 0 {
            None
        } else {
            Some(self.items[0].header.id)
        };
        let message = self.items.remove(pos).expect("position valid");
        Some(ReadInfo {
            message,
            skipped_head,
        })
    }

    /// Returns `true` if some queued message matches `channels`.
    pub fn has_match(&self, channels: ChannelSet) -> bool {
        self.items
            .iter()
            .any(|m| channels.contains(m.header.channel))
    }

    /// Returns `true` if [`MessageQueue::receive_for_process`] would
    /// succeed (mask match or urgent control message).
    pub fn has_deliverable(&self, channels: ChannelSet) -> bool {
        self.items
            .iter()
            .any(|m| m.header.deliver_to_kernel || channels.contains(m.header.channel))
    }

    /// Returns the number of unread messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the queued messages front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.items.iter()
    }

    /// Discards every queued message (process destruction, §3.5: "when
    /// the process is terminated, all messages queued for it are also
    /// discarded").
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Channel, MessageId, ProcessId};
    use crate::message::MessageHeader;

    fn msg(seq: u64, channel: u8) -> Message {
        Message {
            header: MessageHeader {
                id: MessageId {
                    sender: ProcessId::new(1, 1),
                    seq,
                },
                to: ProcessId::new(2, 1),
                code: 0,
                channel: Channel(channel),
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: vec![],
        }
    }

    #[test]
    fn fifo_on_single_channel() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0));
        q.enqueue(msg(2, 0));
        let all = ChannelSet::ALL;
        assert_eq!(q.receive(all).unwrap().message.header.id.seq, 1);
        assert_eq!(q.receive(all).unwrap().message.header.id.seq, 2);
        assert!(q.receive(all).is_none());
    }

    #[test]
    fn in_order_read_reports_no_skip() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0));
        let r = q.receive(ChannelSet::ALL).unwrap();
        assert_eq!(r.skipped_head, None);
    }

    #[test]
    fn selective_receive_skips_and_reports_head() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0)); // head, channel 0
        q.enqueue(msg(2, 5)); // urgent, channel 5
        let r = q.receive(ChannelSet::of(&[Channel(5)])).unwrap();
        assert_eq!(r.message.header.id.seq, 2);
        assert_eq!(r.skipped_head.unwrap().seq, 1);
        // The skipped message is still there.
        assert_eq!(q.len(), 1);
        assert_eq!(q.receive(ChannelSet::ALL).unwrap().message.header.id.seq, 1);
    }

    #[test]
    fn no_match_returns_none_without_disturbing_queue() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0));
        assert!(q.receive(ChannelSet::of(&[Channel(9)])).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn has_match_respects_channels() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 3));
        assert!(q.has_match(ChannelSet::of(&[Channel(3)])));
        assert!(!q.has_match(ChannelSet::of(&[Channel(4)])));
        assert!(!q.has_match(ChannelSet::NONE));
    }

    fn control(seq: u64) -> Message {
        let mut m = msg(seq, 0);
        m.header.deliver_to_kernel = true;
        m
    }

    #[test]
    fn control_messages_bypass_mask() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0));
        q.enqueue(control(2));
        // Mask matches nothing, but the control message is urgent.
        let r = q.receive_for_process(ChannelSet::NONE).unwrap();
        assert!(r.message.header.deliver_to_kernel);
        assert_eq!(r.skipped_head.unwrap().seq, 1);
        assert!(!q.has_deliverable(ChannelSet::NONE));
        assert!(q.receive_for_process(ChannelSet::NONE).is_none());
        // The ordinary message is still there for a matching mask.
        assert!(q.has_deliverable(ChannelSet::ALL));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = MessageQueue::new();
        q.enqueue(msg(1, 0));
        q.clear();
        assert!(q.is_empty());
    }
}
