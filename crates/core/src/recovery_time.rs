//! The recovery-time bound of §3.2.3.
//!
//! Recovery replays three serialized steps — reload the checkpoint,
//! replay the published messages, recompute to the pre-crash state — so
//!
//! ```text
//! t_max = t_cfix + t_page·l_check
//!       + t_mfix·(n_τ − n_τ0) + t_byte·Σ l_msg
//!       + (τ − τ0)/f_cpu
//! ```
//!
//! The load-dependent parameters are measured per system; the process-
//! dependent accumulators are updated on every checkpoint and message.
//! "If the system checkpoints a process whenever its t_max exceeds its
//! specified recovery time, the process can always be recovered in that
//! amount of time" — the [`crate::checkpoint`] policy that closes the
//! loop.

use publishing_sim::time::{SimDuration, SimTime};

/// Load-dependent parameters, "determined empirically by measuring the
/// system under various loads".
#[derive(Debug, Clone, Copy)]
pub struct LoadParams {
    /// Fixed time to build system table entries for a process (t_cfix).
    pub t_cfix: SimDuration,
    /// Time to load one page of checkpoint (t_page).
    pub t_page: SimDuration,
    /// Fixed per-message lookup/replay initiation time (t_mfix).
    pub t_mfix: SimDuration,
    /// Per-byte message transmission time (t_byte).
    pub t_byte: SimDuration,
    /// Fraction of the CPU the recovering process obtains (f_cpu).
    pub f_cpu: f64,
}

impl LoadParams {
    /// The worked example of Figure 3.1.
    pub fn figure_3_1() -> Self {
        LoadParams {
            t_cfix: SimDuration::from_millis(100),
            t_page: SimDuration::from_millis(10),
            t_mfix: SimDuration::from_millis(2),
            t_byte: SimDuration::from_micros(10), // 0.01 ms/byte
            f_cpu: 0.5,
        }
    }
}

/// Per-process accumulators, updated "each time a process is checkpointed
/// or receives a message".
#[derive(Debug, Clone, Copy)]
pub struct RecoveryEstimator {
    /// Checkpoint length in pages (l_check).
    pub checkpoint_pages: u64,
    /// Messages received since the checkpoint (n_τ − n_τ0).
    pub messages_since: u64,
    /// Sum of their lengths in bytes (Σ l_msg).
    pub message_bytes_since: u64,
    /// When the checkpoint was taken (τ0).
    pub checkpoint_at: SimTime,
    /// Execution time consumed since the checkpoint (t_since); tracked
    /// directly rather than as wall time so multiprogramming doesn't
    /// inflate it.
    pub cpu_since: SimDuration,
}

impl RecoveryEstimator {
    /// A fresh estimator for a process whose only checkpoint is its
    /// binary image of `checkpoint_pages` pages, at time `now`.
    pub fn new(now: SimTime, checkpoint_pages: u64) -> Self {
        RecoveryEstimator {
            checkpoint_pages,
            messages_since: 0,
            message_bytes_since: 0,
            checkpoint_at: now,
            cpu_since: SimDuration::ZERO,
        }
    }

    /// Notes a published message of `bytes` bytes.
    pub fn on_message(&mut self, bytes: usize) {
        self.messages_since += 1;
        self.message_bytes_since += bytes as u64;
    }

    /// Notes consumed execution time.
    pub fn on_compute(&mut self, cpu: SimDuration) {
        self.cpu_since += cpu;
    }

    /// Notes a new durable checkpoint of `pages` pages at `now`, resetting
    /// the message and compute accumulators.
    pub fn on_checkpoint(&mut self, now: SimTime, pages: u64) {
        self.checkpoint_pages = pages;
        self.messages_since = 0;
        self.message_bytes_since = 0;
        self.checkpoint_at = now;
        self.cpu_since = SimDuration::ZERO;
    }

    /// Reload time: t_cfix + t_page · l_check.
    pub fn t_reload(&self, p: &LoadParams) -> SimDuration {
        p.t_cfix + p.t_page.saturating_mul(self.checkpoint_pages)
    }

    /// Replay time: t_mfix · n + t_byte · Σ l_msg.
    pub fn t_replay(&self, p: &LoadParams) -> SimDuration {
        p.t_mfix.saturating_mul(self.messages_since)
            + p.t_byte.saturating_mul(self.message_bytes_since)
    }

    /// Recompute time: t_since / f_cpu.
    ///
    /// # Panics
    ///
    /// Panics if `f_cpu` is not in (0, 1].
    pub fn t_compute(&self, p: &LoadParams) -> SimDuration {
        assert!(p.f_cpu > 0.0 && p.f_cpu <= 1.0, "invalid f_cpu {}", p.f_cpu);
        self.cpu_since.mul_f64(1.0 / p.f_cpu)
    }

    /// The §3.2.3 upper bound on recovery time.
    pub fn t_max(&self, p: &LoadParams) -> SimDuration {
        self.t_reload(p) + self.t_replay(p) + self.t_compute(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the Figure 3.1 walkthrough exactly.
    #[test]
    fn figure_3_1_example_matches_paper() {
        let p = LoadParams::figure_3_1();
        // Checkpoint of 4 pages at t = 100 ms.
        let mut est = RecoveryEstimator::new(SimTime::from_millis(100), 4);

        // Immediately after the checkpoint: t_max = 100 + 4·10 = 140 ms.
        assert_eq!(est.t_max(&p), SimDuration::from_millis(140));

        // At t = 200 ms, after 100 ms of work at f_cpu = 0.5:
        // t_max = 140 + 100/0.5 = 340 ms.
        est.on_compute(SimDuration::from_millis(100));
        assert_eq!(est.t_max(&p), SimDuration::from_millis(340));

        // Immediately after receiving a 128-byte message:
        // t_max = 340 + 2 + 128·0.01 = 343.28 ms.
        est.on_message(128);
        assert_eq!(est.t_max(&p), SimDuration::from_micros(343_280));
    }

    #[test]
    fn checkpoint_resets_accumulators() {
        let p = LoadParams::figure_3_1();
        let mut est = RecoveryEstimator::new(SimTime::ZERO, 4);
        est.on_compute(SimDuration::from_millis(500));
        for _ in 0..10 {
            est.on_message(1024);
        }
        assert!(est.t_max(&p) > SimDuration::from_millis(1000));
        est.on_checkpoint(SimTime::from_millis(600), 6);
        // Only the (larger) reload term remains.
        assert_eq!(est.t_max(&p), SimDuration::from_millis(160));
    }

    #[test]
    fn t_max_monotone_in_messages_and_compute() {
        let p = LoadParams::figure_3_1();
        let mut est = RecoveryEstimator::new(SimTime::ZERO, 1);
        let t0 = est.t_max(&p);
        est.on_message(100);
        let t1 = est.t_max(&p);
        est.on_compute(SimDuration::from_millis(1));
        let t2 = est.t_max(&p);
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn full_cpu_share_means_no_stretch() {
        let mut p = LoadParams::figure_3_1();
        p.f_cpu = 1.0;
        let mut est = RecoveryEstimator::new(SimTime::ZERO, 0);
        est.on_compute(SimDuration::from_millis(50));
        assert_eq!(est.t_compute(&p), SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "invalid f_cpu")]
    fn zero_cpu_share_rejected() {
        let p = LoadParams {
            f_cpu: 0.0,
            ..LoadParams::figure_3_1()
        };
        RecoveryEstimator::new(SimTime::ZERO, 1).t_compute(&p);
    }
}
