//! The transport layer of §4.3.3.
//!
//! Guarantees for guaranteed messages, provided neither endpoint stays
//! crashed and network failures are temporary: no duplication, eventual
//! arrival, and FIFO order per sender→receiver processor pair. The
//! mechanisms are the thesis': end-to-end acknowledgements with periodic
//! resend, duplicate suppression by sequence, and sender-side ordering.
//! The thesis shipped stop-and-wait ("only one unacknowledged message in
//! transit from each processor … will be replaced in the future by a
//! windowing scheme"); we provide both via a configurable window.
//!
//! Because publishing restarts whole nodes, transport state can vanish on
//! one side of a pair. Every node carries an *incarnation* number, bumped
//! at restart: receivers reset per-sender state when a sender's
//! incarnation changes, and senders renumber their outstanding traffic
//! when told (by the recovery manager's restart broadcast) that a peer
//! restarted, tagging frames with the peer epoch so stale traffic is
//! ignored rather than misordered.

use crate::ids::{MessageId, NodeId, ProcessId};
use crate::message::Message;
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use publishing_sim::ledger::LevelGauge;
use publishing_sim::stats::{Counter, Utilization};
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A transport-layer frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire {
    /// A guaranteed message.
    Data {
        /// Sending node.
        src_node: NodeId,
        /// Sender's incarnation (receiver resets state on change).
        incarnation: u32,
        /// The receiver incarnation this frame targets (0 = initial).
        peer_epoch: u32,
        /// Per (sender node, receiver node, epoch) sequence, from 1.
        tseq: u64,
        /// The message.
        msg: Message,
    },
    /// An end-to-end acknowledgement for a guaranteed message. The
    /// recorder traces these to learn receive order (§4.4.1).
    Ack {
        /// Acknowledging (receiving) node.
        src_node: NodeId,
        /// Acknowledging node's incarnation.
        incarnation: u32,
        /// Epoch echoed from the acknowledged Data frame.
        peer_epoch: u32,
        /// The acknowledged transport sequence.
        tseq: u64,
        /// The acknowledged message id (for the recorder).
        msg_id: MessageId,
        /// The destination process (for the recorder's sequencing).
        dst_pid: ProcessId,
    },
    /// An unguaranteed datagram ("dated or statistical information").
    Datagram {
        /// Sending node.
        src_node: NodeId,
        /// The message.
        msg: Message,
    },
    /// Rejection of a Data frame that targeted a stale incarnation of
    /// the receiver. Tells the sender the receiver's current epoch so it
    /// renumbers and retransmits; without it a node that restarts after
    /// a peer restarted never learns the peer's epoch and its guaranteed
    /// traffic is dropped forever. Never published: it acknowledges
    /// nothing.
    EpochNotice {
        /// Rejecting (receiving) node.
        src_node: NodeId,
        /// Its current incarnation.
        incarnation: u32,
    },
    /// Consensus traffic between the replicas of a recorder quorum
    /// group. Opaque to the transport (the quorum crate owns the payload
    /// codec); never published and never gated on recorder capture —
    /// consensus heartbeats retransmit on their own schedule.
    Quorum {
        /// Sending replica's node.
        src_node: NodeId,
        /// Recorder group the message belongs to.
        group: u32,
        /// Encoded quorum protocol message.
        payload: Vec<u8>,
    },
}

const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_DATAGRAM: u8 = 3;
const TAG_EPOCH: u8 = 4;
const TAG_QUORUM: u8 = 5;

impl Encode for Wire {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Wire::Data {
                src_node,
                incarnation,
                peer_epoch,
                tseq,
                msg,
            } => {
                e.u8(TAG_DATA)
                    .u32(src_node.0)
                    .u32(*incarnation)
                    .u32(*peer_epoch)
                    .u64(*tseq);
                msg.encode(e);
            }
            Wire::Ack {
                src_node,
                incarnation,
                peer_epoch,
                tseq,
                msg_id,
                dst_pid,
            } => {
                e.u8(TAG_ACK)
                    .u32(src_node.0)
                    .u32(*incarnation)
                    .u32(*peer_epoch)
                    .u64(*tseq);
                msg_id.encode(e);
                dst_pid.encode(e);
            }
            Wire::Datagram { src_node, msg } => {
                e.u8(TAG_DATAGRAM).u32(src_node.0);
                msg.encode(e);
            }
            Wire::EpochNotice {
                src_node,
                incarnation,
            } => {
                e.u8(TAG_EPOCH).u32(src_node.0).u32(*incarnation);
            }
            Wire::Quorum {
                src_node,
                group,
                payload,
            } => {
                e.u8(TAG_QUORUM).u32(src_node.0).u32(*group).bytes(payload);
            }
        }
    }
}

impl Decode for Wire {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            TAG_DATA => {
                let src_node = NodeId(d.u32()?);
                let incarnation = d.u32()?;
                let peer_epoch = d.u32()?;
                let tseq = d.u64()?;
                let msg = Message::decode(d)?;
                Ok(Wire::Data {
                    src_node,
                    incarnation,
                    peer_epoch,
                    tseq,
                    msg,
                })
            }
            TAG_ACK => {
                let src_node = NodeId(d.u32()?);
                let incarnation = d.u32()?;
                let peer_epoch = d.u32()?;
                let tseq = d.u64()?;
                let msg_id = MessageId::decode(d)?;
                let dst_pid = ProcessId::decode(d)?;
                Ok(Wire::Ack {
                    src_node,
                    incarnation,
                    peer_epoch,
                    tseq,
                    msg_id,
                    dst_pid,
                })
            }
            TAG_DATAGRAM => {
                let src_node = NodeId(d.u32()?);
                let msg = Message::decode(d)?;
                Ok(Wire::Datagram { src_node, msg })
            }
            TAG_EPOCH => {
                let src_node = NodeId(d.u32()?);
                let incarnation = d.u32()?;
                Ok(Wire::EpochNotice {
                    src_node,
                    incarnation,
                })
            }
            TAG_QUORUM => {
                let src_node = NodeId(d.u32()?);
                let group = d.u32()?;
                let payload = d.bytes()?;
                Ok(Wire::Quorum {
                    src_node,
                    group,
                    payload,
                })
            }
            tag => Err(CodecError::InvalidTag { what: "wire", tag }),
        }
    }
}

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Maximum unacknowledged Data frames per destination node
    /// (1 = the thesis' stop-and-wait).
    pub window: usize,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Backoff cap for the retransmission timeout.
    pub max_rto: SimDuration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            window: 1,
            rto: SimDuration::from_millis(20),
            max_rto: SimDuration::from_millis(500),
        }
    }
}

/// Actions the transport asks its kernel to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TAction {
    /// Put an encoded [`Wire`] payload on the medium addressed to a node.
    Transmit {
        /// Destination node.
        dst_node: NodeId,
        /// Encoded payload.
        payload: Vec<u8>,
    },
    /// Deliver a message up to the kernel's routing layer.
    Deliver(Message),
    /// Call [`Transport::timer`] with `token` at time `at`.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Token to hand back.
        token: u64,
    },
}

/// Counters the transport maintains.
#[derive(Debug, Default, Clone)]
pub struct TransportStats {
    /// Guaranteed messages accepted for sending.
    pub sent: Counter,
    /// Datagrams sent.
    pub datagrams: Counter,
    /// Retransmissions.
    pub retransmits: Counter,
    /// Messages delivered up, in order.
    pub delivered: Counter,
    /// Duplicate Data frames suppressed.
    pub duplicates: Counter,
    /// Acks received that matched an in-flight message.
    pub acked: Counter,
    /// Frames dropped for a stale peer epoch.
    pub stale_epoch: Counter,
}

struct Inflight {
    msg: Message,
    rto: SimDuration,
}

struct OutState {
    /// The receiver incarnation we currently target.
    epoch: u32,
    next_tseq: u64,
    inflight: BTreeMap<u64, Inflight>,
    queue: VecDeque<Message>,
}

impl OutState {
    fn new() -> Self {
        OutState {
            epoch: 0,
            next_tseq: 1,
            inflight: BTreeMap::new(),
            queue: VecDeque::new(),
        }
    }
}

struct InState {
    peer_incarnation: u32,
    expected: u64,
    reorder: BTreeMap<u64, Message>,
}

/// Capacity instrumentation for one sender→receiver channel.
///
/// The channel is *busy* while any guaranteed message is queued or
/// unacknowledged — under the thesis' stop-and-wait window this is the
/// receiving node's ingest budget (one message per round trip per
/// sender), which is the resource that saturates first on the perfect
/// bus. The level gauge integrates queue + in-flight occupancy (Little's
/// `L`) and the sojourn accumulator measures accept→ack time (`W`), so
/// the queueing cross-validation can check `L = λW` from the ledger.
#[derive(Debug, Default)]
pub struct ChannelMeter {
    /// Busy while the channel has queued or unacknowledged messages.
    pub busy: Utilization,
    /// Queue + in-flight occupancy over time.
    pub level: LevelGauge,
    /// Accepted messages whose ack has arrived.
    pub completed: u64,
    /// Total accept→ack sojourn, ns.
    pub sojourn_ns: u128,
    /// Accept times of messages still in the send queue (parallel to
    /// `OutState::queue`).
    enq_queue: VecDeque<SimTime>,
    /// Accept times of messages in flight, by tseq.
    enq_inflight: BTreeMap<u64, SimTime>,
}

impl ChannelMeter {
    /// Mean accept→ack sojourn in milliseconds, 0 if nothing completed.
    pub fn mean_sojourn_ms(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        (self.sojourn_ns as f64 / self.completed as f64) / 1e6
    }

    /// Re-marks busy/idle from the channel's current occupancy.
    fn set_level(&mut self, now: SimTime, level: u64) {
        self.level.set(now, level);
        if level > 0 {
            self.busy.set_busy(now);
        } else {
            self.busy.set_idle(now);
        }
    }
}

/// The per-node transport state machine.
pub struct Transport {
    node: NodeId,
    incarnation: u32,
    cfg: TransportConfig,
    out: BTreeMap<NodeId, OutState>,
    inc: BTreeMap<NodeId, InState>,
    timers: HashMap<u64, (NodeId, u64)>,
    next_token: u64,
    stats: TransportStats,
    meters: BTreeMap<NodeId, ChannelMeter>,
    last_now: SimTime,
}

impl Transport {
    /// Creates a transport for `node` with incarnation 0.
    pub fn new(node: NodeId, cfg: TransportConfig) -> Self {
        Transport {
            node,
            incarnation: 0,
            cfg,
            out: BTreeMap::new(),
            inc: BTreeMap::new(),
            timers: HashMap::new(),
            next_token: 0,
            stats: TransportStats::default(),
            meters: BTreeMap::new(),
            last_now: SimTime::ZERO,
        }
    }

    /// Returns this node's current incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Returns the transport counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Returns the per-destination channel meters (sender side).
    pub fn channel_meters(&self) -> &BTreeMap<NodeId, ChannelMeter> {
        &self.meters
    }

    /// Clears all state and bumps the incarnation — the node restarted.
    /// Meter history survives (capacity, not correctness, state); the
    /// in-progress occupancy drops to zero as of the last observed time.
    pub fn restart(&mut self, incarnation: u32) {
        assert!(incarnation > self.incarnation, "incarnation must increase");
        self.incarnation = incarnation;
        self.out.clear();
        self.inc.clear();
        self.timers.clear();
        let now = self.last_now;
        for meter in self.meters.values_mut() {
            meter.enq_queue.clear();
            meter.enq_inflight.clear();
            meter.set_level(now, 0);
        }
    }

    /// Notes that `peer` restarted with `new_epoch`: outstanding and
    /// queued traffic to it is renumbered from 1 under the new epoch and
    /// retransmitted.
    pub fn reset_peer(&mut self, now: SimTime, peer: NodeId, new_epoch: u32) -> Vec<TAction> {
        self.last_now = now;
        let mut actions = Vec::new();
        let out = self.out.entry(peer).or_insert_with(OutState::new);
        if out.epoch >= new_epoch {
            return actions;
        }
        // Re-queue in sequence order ahead of anything already queued.
        let inflight = std::mem::take(&mut out.inflight);
        for (_, inf) in inflight.into_iter().rev() {
            out.queue.push_front(inf.msg);
        }
        // Re-queue the matching accept timestamps in the same order so
        // sojourn accounting follows the messages through renumbering.
        let meter = self.meters.entry(peer).or_default();
        let stamps = std::mem::take(&mut meter.enq_inflight);
        for (_, t) in stamps.into_iter().rev() {
            meter.enq_queue.push_front(t);
        }
        out.epoch = new_epoch;
        out.next_tseq = 1;
        self.pump(now, peer, &mut actions);
        actions
    }

    /// Sends a guaranteed message to a process on `dst_node`.
    pub fn send_guaranteed(
        &mut self,
        now: SimTime,
        dst_node: NodeId,
        msg: Message,
    ) -> Vec<TAction> {
        self.stats.sent.inc();
        self.last_now = now;
        let mut actions = Vec::new();
        self.out
            .entry(dst_node)
            .or_insert_with(OutState::new)
            .queue
            .push_back(msg);
        self.meters
            .entry(dst_node)
            .or_default()
            .enq_queue
            .push_back(now);
        self.pump(now, dst_node, &mut actions);
        actions
    }

    /// Sends an unguaranteed datagram.
    pub fn send_datagram(&mut self, _now: SimTime, dst_node: NodeId, msg: Message) -> Vec<TAction> {
        self.stats.datagrams.inc();
        let wire = Wire::Datagram {
            src_node: self.node,
            msg,
        };
        vec![TAction::Transmit {
            dst_node,
            payload: wire.encode_to_vec(),
        }]
    }

    fn pump(&mut self, now: SimTime, dst_node: NodeId, actions: &mut Vec<TAction>) {
        let Some(out) = self.out.get_mut(&dst_node) else {
            return;
        };
        let meter = self.meters.entry(dst_node).or_default();
        while out.inflight.len() < self.cfg.window {
            let Some(msg) = out.queue.pop_front() else {
                break;
            };
            let tseq = out.next_tseq;
            out.next_tseq += 1;
            if let Some(t) = meter.enq_queue.pop_front() {
                meter.enq_inflight.insert(tseq, t);
            }
            let wire = Wire::Data {
                src_node: self.node,
                incarnation: self.incarnation,
                peer_epoch: out.epoch,
                tseq,
                msg: msg.clone(),
            };
            actions.push(TAction::Transmit {
                dst_node,
                payload: wire.encode_to_vec(),
            });
            out.inflight.insert(
                tseq,
                Inflight {
                    msg,
                    rto: self.cfg.rto,
                },
            );
            let token = self.next_token;
            self.next_token += 1;
            self.timers.insert(token, (dst_node, tseq));
            actions.push(TAction::SetTimer {
                at: now + self.cfg.rto,
                token,
            });
        }
        let level = (out.inflight.len() + out.queue.len()) as u64;
        meter.set_level(now, level);
    }

    /// Handles a retransmission timer.
    pub fn timer(&mut self, now: SimTime, token: u64) -> Vec<TAction> {
        let mut actions = Vec::new();
        let Some((dst_node, tseq)) = self.timers.remove(&token) else {
            return actions;
        };
        let Some(out) = self.out.get_mut(&dst_node) else {
            return actions;
        };
        let epoch = out.epoch;
        let incarnation = self.incarnation;
        let src_node = self.node;
        let Some(inf) = out.inflight.get_mut(&tseq) else {
            return actions;
        };
        // Still unacknowledged: resend with doubled (capped) timeout.
        self.stats.retransmits.inc();
        inf.rto = (inf.rto.saturating_mul(2)).min(self.cfg.max_rto);
        let wire = Wire::Data {
            src_node,
            incarnation,
            peer_epoch: epoch,
            tseq,
            msg: inf.msg.clone(),
        };
        let rto = inf.rto;
        actions.push(TAction::Transmit {
            dst_node,
            payload: wire.encode_to_vec(),
        });
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, (dst_node, tseq));
        actions.push(TAction::SetTimer {
            at: now + rto,
            token,
        });
        actions
    }

    /// Handles a received, link-layer-clean [`Wire`] payload.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire) -> Vec<TAction> {
        match wire {
            Wire::Data {
                src_node,
                incarnation,
                peer_epoch,
                tseq,
                msg,
            } => self.on_data(src_node, incarnation, peer_epoch, tseq, msg),
            Wire::Ack {
                src_node,
                peer_epoch,
                tseq,
                ..
            } => self.on_ack(now, src_node, peer_epoch, tseq),
            Wire::Datagram { msg, .. } => vec![TAction::Deliver(msg)],
            Wire::EpochNotice {
                src_node,
                incarnation,
            } => self.reset_peer(now, src_node, incarnation),
            // Quorum traffic is consumed by the quorum layer, not the
            // transport endpoint.
            Wire::Quorum { .. } => Vec::new(),
        }
    }

    fn on_data(
        &mut self,
        src_node: NodeId,
        incarnation: u32,
        peer_epoch: u32,
        tseq: u64,
        msg: Message,
    ) -> Vec<TAction> {
        let mut actions = Vec::new();
        // A frame aimed at a previous incarnation of this node is stale:
        // reject it (no ack — nothing was delivered) and tell the sender
        // our current incarnation so it renumbers and retransmits. The
        // sender may have restarted after we did and missed the
        // NODE_RESTARTED broadcast entirely.
        if peer_epoch != self.incarnation {
            self.stats.stale_epoch.inc();
            let notice = Wire::EpochNotice {
                src_node: self.node,
                incarnation: self.incarnation,
            };
            actions.push(TAction::Transmit {
                dst_node: src_node,
                payload: notice.encode_to_vec(),
            });
            return actions;
        }
        let st = self.inc.entry(src_node).or_insert_with(|| InState {
            peer_incarnation: incarnation,
            expected: 1,
            reorder: BTreeMap::new(),
        });
        if st.peer_incarnation != incarnation {
            // The sender restarted: its numbering starts over.
            st.peer_incarnation = incarnation;
            st.expected = 1;
            st.reorder.clear();
        }
        // Always acknowledge receipt (§4.4.1: duplicate suppression keeps
        // the second copy from being passed on, but the ack must repeat or
        // the sender stalls).
        let ack = Wire::Ack {
            src_node: self.node,
            incarnation: self.incarnation,
            peer_epoch,
            tseq,
            msg_id: msg.header.id,
            dst_pid: msg.header.to,
        };
        actions.push(TAction::Transmit {
            dst_node: src_node,
            payload: ack.encode_to_vec(),
        });
        if tseq < st.expected {
            self.stats.duplicates.inc();
            return actions;
        }
        if tseq > st.expected {
            // Out of order (window > 1): hold for in-order delivery.
            st.reorder.insert(tseq, msg);
            return actions;
        }
        st.expected += 1;
        self.stats.delivered.inc();
        actions.push(TAction::Deliver(msg));
        // Drain any consecutively buffered successors.
        while let Some(next) = st.reorder.remove(&st.expected) {
            st.expected += 1;
            self.stats.delivered.inc();
            actions.push(TAction::Deliver(next));
        }
        actions
    }

    fn on_ack(&mut self, now: SimTime, acker: NodeId, peer_epoch: u32, tseq: u64) -> Vec<TAction> {
        let mut actions = Vec::new();
        let Some(out) = self.out.get_mut(&acker) else {
            return actions;
        };
        if out.epoch != peer_epoch {
            self.stats.stale_epoch.inc();
            return actions;
        }
        if out.inflight.remove(&tseq).is_some() {
            self.stats.acked.inc();
            self.last_now = now;
            let meter = self.meters.entry(acker).or_default();
            if let Some(t) = meter.enq_inflight.remove(&tseq) {
                meter.completed += 1;
                meter.sojourn_ns += u128::from(now.saturating_since(t).as_nanos());
            }
            self.pump(now, acker, &mut actions);
        }
        actions
    }

    /// Returns `true` if any guaranteed traffic is outstanding or queued.
    pub fn has_unacked(&self) -> bool {
        self.out
            .values()
            .any(|o| !o.inflight.is_empty() || !o.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Channel, ProcessId};
    use crate::message::MessageHeader;

    fn msg(from: ProcessId, to: ProcessId, seq: u64, body: &[u8]) -> Message {
        Message {
            header: MessageHeader {
                id: MessageId { sender: from, seq },
                to,
                code: 0,
                channel: Channel(0),
                deliver_to_kernel: false,
            },
            passed_link: None,
            body: body.to_vec(),
        }
    }

    fn transports() -> (Transport, Transport) {
        (
            Transport::new(NodeId(1), TransportConfig::default()),
            Transport::new(NodeId(2), TransportConfig::default()),
        )
    }

    fn payload_of(actions: &[TAction]) -> Vec<Vec<u8>> {
        actions
            .iter()
            .filter_map(|a| match a {
                TAction::Transmit { payload, .. } => Some(payload.clone()),
                _ => None,
            })
            .collect()
    }

    fn deliveries_of(actions: &[TAction]) -> Vec<Message> {
        actions
            .iter()
            .filter_map(|a| match a {
                TAction::Deliver(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn wire_codec_roundtrip() {
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 5, b"x");
        for wire in [
            Wire::Data {
                src_node: NodeId(1),
                incarnation: 2,
                peer_epoch: 1,
                tseq: 9,
                msg: m.clone(),
            },
            Wire::Ack {
                src_node: NodeId(2),
                incarnation: 3,
                peer_epoch: 0,
                tseq: 9,
                msg_id: m.header.id,
                dst_pid: m.header.to,
            },
            Wire::Datagram {
                src_node: NodeId(1),
                msg: m.clone(),
            },
            Wire::EpochNotice {
                src_node: NodeId(2),
                incarnation: 4,
            },
            Wire::Quorum {
                src_node: NodeId(3),
                group: 7,
                payload: vec![1, 2, 3, 4],
            },
        ] {
            let buf = wire.encode_to_vec();
            assert_eq!(Wire::decode_all(&buf).unwrap(), wire);
        }
    }

    #[test]
    fn stale_epoch_notice_teaches_a_restarted_sender() {
        // The receiver restarted twice before the sender (re)started, so
        // the sender targets epoch 0 while the receiver is at 2 — the
        // sender was down for every NODE_RESTARTED broadcast. The stale
        // frame must come back as an epoch notice that renumbers the
        // sender's traffic, or the message is dropped forever.
        let (mut a, mut b) = transports();
        b.restart(1);
        b.restart(2);
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"late");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m.clone());
        let stale = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(1), stale);
        // Rejected, not delivered, and not acknowledged.
        assert!(deliveries_of(&back).is_empty());
        assert_eq!(b.stats().stale_epoch.get(), 1);
        let notice = Wire::decode_all(&payload_of(&back)[0]).unwrap();
        assert!(matches!(notice, Wire::EpochNotice { incarnation: 2, .. }));
        // The notice makes the sender renumber and retransmit; the
        // retransmission now lands.
        let resent = a.on_wire(SimTime::from_millis(2), notice);
        let wire = Wire::decode_all(&payload_of(&resent)[0]).unwrap();
        assert!(matches!(wire, Wire::Data { peer_epoch: 2, .. }));
        let delivered = b.on_wire(SimTime::from_millis(3), wire);
        assert_eq!(deliveries_of(&delivered), vec![m]);
        // A duplicate notice is idempotent: nothing to renumber again.
        let dup = Wire::EpochNotice {
            src_node: NodeId(2),
            incarnation: 2,
        };
        let ack = Wire::decode_all(&payload_of(&delivered)[0]).unwrap();
        a.on_wire(SimTime::from_millis(4), ack);
        assert!(payload_of(&a.on_wire(SimTime::from_millis(5), dup)).is_empty());
        assert!(!a.has_unacked());
    }

    #[test]
    fn send_deliver_ack_roundtrip() {
        let (mut a, mut b) = transports();
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"hello");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m.clone());
        let payloads = payload_of(&out);
        assert_eq!(payloads.len(), 1);
        let wire = Wire::decode_all(&payloads[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(1), wire);
        assert_eq!(deliveries_of(&back), vec![m]);
        // The ack releases the sender's in-flight slot.
        let ack = Wire::decode_all(&payload_of(&back)[0]).unwrap();
        a.on_wire(SimTime::from_millis(2), ack);
        assert!(!a.has_unacked());
        assert_eq!(a.stats().acked.get(), 1);
    }

    #[test]
    fn stop_and_wait_serializes() {
        let (mut a, _) = transports();
        let m1 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"1");
        let m2 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 2, b"2");
        let out1 = a.send_guaranteed(SimTime::ZERO, NodeId(2), m1);
        assert_eq!(payload_of(&out1).len(), 1);
        let out2 = a.send_guaranteed(SimTime::ZERO, NodeId(2), m2);
        // Window 1: the second message waits for the first's ack.
        assert!(payload_of(&out2).is_empty());
    }

    #[test]
    fn channel_meter_tracks_occupancy_and_sojourn() {
        let (mut a, mut b) = transports();
        let m1 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"1");
        let m2 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 2, b"2");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m1);
        a.send_guaranteed(SimTime::ZERO, NodeId(2), m2);
        let meter = &a.channel_meters()[&NodeId(2)];
        assert!(meter.busy.is_busy());
        assert_eq!(meter.level.level(), 2);
        // Ack the first at t=10ms: one completes (sojourn 10ms), the
        // second is pumped and stays in flight.
        let wire = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(5), wire);
        let ack = Wire::decode_all(&payload_of(&back)[0]).unwrap();
        let out2 = a.on_wire(SimTime::from_millis(10), ack);
        assert_eq!(payload_of(&out2).len(), 1);
        let meter = &a.channel_meters()[&NodeId(2)];
        assert_eq!(meter.completed, 1);
        assert!((meter.mean_sojourn_ms() - 10.0).abs() < 1e-9);
        assert_eq!(meter.level.level(), 1);
        assert!(meter.busy.is_busy());
        // Ack the second at t=30ms: channel drains and goes idle.
        let wire2 = Wire::decode_all(&payload_of(&out2)[0]).unwrap();
        let back2 = b.on_wire(SimTime::from_millis(20), wire2);
        let ack2 = Wire::decode_all(&payload_of(&back2)[0]).unwrap();
        a.on_wire(SimTime::from_millis(30), ack2);
        let meter = &a.channel_meters()[&NodeId(2)];
        assert_eq!(meter.completed, 2);
        assert!(!meter.busy.is_busy());
        assert_eq!(
            meter.busy.busy_time(SimTime::from_millis(30)),
            SimDuration::from_millis(30)
        );
        // Little's law consistency on this toy run: both messages were
        // accepted at t=0, acked at 10ms and 30ms → W = 20ms mean, and
        // L = λW = (2/30)(20) = 4/3.
        assert!((meter.mean_sojourn_ms() - 20.0).abs() < 1e-9);
        let l = meter
            .level
            .mean_over(SimTime::from_millis(30), SimDuration::from_millis(30));
        let lam = 2.0 / 30.0;
        let w = meter.mean_sojourn_ms();
        assert!((l - lam * w).abs() < 1e-9, "L={l} λW={}", lam * w);
    }

    #[test]
    fn retransmit_until_acked() {
        let (mut a, mut b) = transports();
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"r");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m.clone());
        let timer = out
            .iter()
            .find_map(|t| match t {
                TAction::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .unwrap();
        // First copy "lost": fire the retransmit timer.
        let re = a.timer(timer.0, timer.1);
        assert_eq!(a.stats().retransmits.get(), 1);
        let wire = Wire::decode_all(&payload_of(&re)[0]).unwrap();
        let back = b.on_wire(timer.0, wire);
        assert_eq!(deliveries_of(&back).len(), 1);
    }

    #[test]
    fn duplicate_data_suppressed_but_reacked() {
        let (mut a, mut b) = transports();
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"d");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m);
        let wire = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let first = b.on_wire(SimTime::from_millis(1), wire.clone());
        assert_eq!(deliveries_of(&first).len(), 1);
        let second = b.on_wire(SimTime::from_millis(2), wire);
        assert!(deliveries_of(&second).is_empty());
        // But the ack is repeated so the sender unblocks.
        assert_eq!(payload_of(&second).len(), 1);
        assert_eq!(b.stats().duplicates.get(), 1);
    }

    #[test]
    fn windowed_mode_reorders_at_receiver() {
        let cfg = TransportConfig {
            window: 4,
            ..TransportConfig::default()
        };
        let mut a = Transport::new(NodeId(1), cfg.clone());
        let mut b = Transport::new(NodeId(2), cfg);
        let mut frames = Vec::new();
        for i in 1..=3u64 {
            let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), i, &[i as u8]);
            let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m);
            frames.extend(payload_of(&out));
        }
        assert_eq!(frames.len(), 3, "window 4 admits all three at once");
        // Deliver out of order: 3, 1, 2.
        let w3 = Wire::decode_all(&frames[2]).unwrap();
        let w1 = Wire::decode_all(&frames[0]).unwrap();
        let w2 = Wire::decode_all(&frames[1]).unwrap();
        let d3 = deliveries_of(&b.on_wire(SimTime::from_millis(1), w3));
        assert!(d3.is_empty(), "out-of-order frame held");
        let d1 = deliveries_of(&b.on_wire(SimTime::from_millis(2), w1));
        assert_eq!(d1.len(), 1);
        let d2 = deliveries_of(&b.on_wire(SimTime::from_millis(3), w2));
        assert_eq!(d2.len(), 2, "frame 2 releases buffered frame 3");
        let seqs: Vec<u64> = d1.iter().chain(&d2).map(|m| m.header.id.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn receiver_restart_resets_sender_numbering() {
        let (mut a, mut b) = transports();
        // Deliver one message normally.
        let m1 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"1");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m1);
        let w = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(1), w);
        let ack = Wire::decode_all(&payload_of(&back)[0]).unwrap();
        a.on_wire(SimTime::from_millis(2), ack);
        // Send another; it goes out as tseq 2, then the receiver restarts.
        let m2 = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 2, b"2");
        let out2 = a.send_guaranteed(SimTime::from_millis(3), NodeId(2), m2.clone());
        b.restart(1);
        let w2 = Wire::decode_all(&payload_of(&out2)[0]).unwrap();
        // Stale epoch: the restarted node ignores it.
        let dropped = b.on_wire(SimTime::from_millis(4), w2);
        assert!(deliveries_of(&dropped).is_empty());
        assert_eq!(b.stats().stale_epoch.get(), 1);
        // The recovery manager tells the sender about the restart.
        let resent = a.reset_peer(SimTime::from_millis(5), NodeId(2), 1);
        let w2b = Wire::decode_all(&payload_of(&resent)[0]).unwrap();
        match &w2b {
            Wire::Data {
                tseq, peer_epoch, ..
            } => {
                assert_eq!(*tseq, 1, "renumbered from 1");
                assert_eq!(*peer_epoch, 1);
            }
            _ => panic!(),
        }
        let delivered = deliveries_of(&b.on_wire(SimTime::from_millis(6), w2b));
        assert_eq!(delivered, vec![m2]);
    }

    #[test]
    fn sender_restart_resets_receiver_expectation() {
        let (mut a, mut b) = transports();
        for i in 1..=2u64 {
            let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), i, &[i as u8]);
            let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m);
            for p in payload_of(&out) {
                let w = Wire::decode_all(&p).unwrap();
                let back = b.on_wire(SimTime::from_millis(i), w);
                for p2 in payload_of(&back) {
                    let ack = Wire::decode_all(&p2).unwrap();
                    a.on_wire(SimTime::from_millis(i), ack);
                }
            }
        }
        // Sender restarts; its numbering starts over at tseq 1.
        a.restart(1);
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 3, b"3");
        let out = a.send_guaranteed(SimTime::from_millis(10), NodeId(2), m.clone());
        let w = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let delivered = deliveries_of(&b.on_wire(SimTime::from_millis(11), w));
        assert_eq!(delivered, vec![m], "receiver accepts the fresh incarnation");
    }

    #[test]
    fn datagram_needs_no_ack() {
        let (mut a, mut b) = transports();
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"dg");
        let out = a.send_datagram(SimTime::ZERO, NodeId(2), m.clone());
        assert!(!out.iter().any(|t| matches!(t, TAction::SetTimer { .. })));
        let w = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(1), w);
        assert_eq!(deliveries_of(&back), vec![m]);
        assert!(payload_of(&back).is_empty(), "no ack for datagrams");
        assert!(!a.has_unacked());
    }

    #[test]
    fn stale_timer_after_ack_is_harmless() {
        let (mut a, mut b) = transports();
        let m = msg(ProcessId::new(1, 1), ProcessId::new(2, 1), 1, b"x");
        let out = a.send_guaranteed(SimTime::ZERO, NodeId(2), m);
        let (at, token) = out
            .iter()
            .find_map(|t| match t {
                TAction::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .unwrap();
        let w = Wire::decode_all(&payload_of(&out)[0]).unwrap();
        let back = b.on_wire(SimTime::from_millis(1), w);
        let ack = Wire::decode_all(&payload_of(&back)[0]).unwrap();
        a.on_wire(SimTime::from_millis(2), ack);
        // Timer fires after the ack: nothing should be retransmitted.
        let actions = a.timer(at, token);
        assert!(actions.is_empty());
        assert_eq!(a.stats().retransmits.get(), 0);
    }
}
