//! Transactions over published communications (§6.4).
//!
//! "With publishing, the transaction semantics remain the same. However,
//! there is no need to store intentions and transaction state in stable
//! store. When a crashed process recovers, its intentions and transaction
//! state will be rebuilt along with the rest of the process state."
//!
//! This module provides a two-phase-commit coordinator and a
//! participant (a key/value "account" store) as ordinary deterministic
//! programs. Their intention lists and commit state live in plain program
//! state — the single publishing store is the only reliable storage in
//! the system, exactly the §6.4 claim. The integration tests crash
//! coordinators and participants mid-transaction and verify atomicity.

use publishing_demos::ids::{Channel, LinkId};
use publishing_demos::kernel::{decode_ctl, encode_ctl};
use publishing_demos::program::{Ctx, Program, Received};
use publishing_sim::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use std::collections::BTreeMap;

/// Body codes for the transaction protocol.
pub mod tx_codes {
    /// Client → coordinator: run a transaction (body: [`super::TxRequest`];
    /// passed link: client reply link).
    pub const TX_BEGIN: u32 = 0x4001;
    /// Coordinator → participant: prepare (body: [`super::Prepare`];
    /// passed link: reply link to coordinator).
    pub const TX_PREPARE: u32 = 0x4002;
    /// Participant → coordinator: vote (body: tx id + bool).
    pub const TX_VOTE: u32 = 0x4003;
    /// Coordinator → participant: commit (body: tx id).
    pub const TX_COMMIT: u32 = 0x4004;
    /// Coordinator → participant: abort (body: tx id).
    pub const TX_ABORT: u32 = 0x4005;
    /// Coordinator → client: outcome (body: tx id + bool committed).
    pub const TX_DONE: u32 = 0x4006;
}

/// One operation on one participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOp {
    /// Participant index (the coordinator's initial link of that index).
    pub participant: u32,
    /// Account within the participant.
    pub account: String,
    /// Signed delta to apply.
    pub delta: i64,
}

impl Encode for TxOp {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.participant).str(&self.account).i64(self.delta);
    }
}

impl Decode for TxOp {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(TxOp {
            participant: d.u32()?,
            account: d.str()?,
            delta: d.i64()?,
        })
    }
}

/// A client's transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// Operations, possibly spanning several participants.
    pub ops: Vec<TxOp>,
}

impl Encode for TxRequest {
    fn encode(&self, e: &mut Encoder) {
        e.seq(&self.ops, |e, op| op.encode(e));
    }
}

impl Decode for TxRequest {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(TxRequest {
            ops: d.seq(TxOp::decode)?,
        })
    }
}

/// A prepare message to one participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prepare {
    /// Coordinator-assigned transaction id.
    pub tx: u64,
    /// The ops this participant must stage.
    pub ops: Vec<TxOp>,
}

impl Encode for Prepare {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.tx);
        e.seq(&self.ops, |e, op| op.encode(e));
    }
}

impl Decode for Prepare {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Prepare {
            tx: d.u64()?,
            ops: d.seq(TxOp::decode)?,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxPhase {
    Preparing,
    Committing,
    Aborting,
}

#[derive(Debug, Clone)]
struct TxState {
    ops: Vec<TxOp>,
    participants: Vec<u32>,
    votes_needed: u64,
    votes_yes: u64,
    acks_needed: u64,
    phase: TxPhase,
    client_link: u32,
}

/// The 2PC coordinator program.
///
/// Initial links 0..n-1 point to the n participants. Transaction state
/// lives entirely in program state; recovery rebuilds it by replay.
#[derive(Debug, Default)]
pub struct TxCoordinator {
    next_tx: u64,
    active: BTreeMap<u64, TxState>,
    /// Committed/aborted outcomes (for idempotent client replies).
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
}

impl TxCoordinator {
    /// Creates a coordinator.
    pub fn new() -> Self {
        TxCoordinator::default()
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>, tx: u64, commit: bool) {
        let Some(st) = self.active.get_mut(&tx) else {
            return;
        };
        st.phase = if commit {
            TxPhase::Committing
        } else {
            TxPhase::Aborting
        };
        st.acks_needed = st.participants.len() as u64;
        let code = if commit {
            tx_codes::TX_COMMIT
        } else {
            tx_codes::TX_ABORT
        };
        let mut body = Encoder::new();
        body.u32(code).u64(tx);
        let participants = st.participants.clone();
        let client_link = st.client_link;
        for p in participants {
            let _ = ctx.send(LinkId(p), body.clone().finish());
        }
        // Reply to the client; the outcome is decided (2PC's commit point
        // is the coordinator's state change, which publishing preserves).
        let mut done = Encoder::new();
        done.u32(tx_codes::TX_DONE).u64(tx).bool(commit);
        let _ = ctx.send(LinkId(client_link), done.finish());
        if commit {
            self.committed += 1;
        } else {
            self.aborted += 1;
        }
        self.active.remove(&tx);
    }
}

impl Program for TxCoordinator {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        match code {
            tx_codes::TX_BEGIN => {
                let Ok(req) = TxRequest::decode_all(payload) else {
                    return;
                };
                let Some(client) = msg.link else { return };
                let tx = self.next_tx;
                self.next_tx += 1;
                let mut participants: Vec<u32> = req.ops.iter().map(|o| o.participant).collect();
                participants.sort_unstable();
                participants.dedup();
                let st = TxState {
                    ops: req.ops.clone(),
                    participants: participants.clone(),
                    votes_needed: participants.len() as u64,
                    votes_yes: 0,
                    acks_needed: 0,
                    phase: TxPhase::Preparing,
                    client_link: client.0,
                };
                self.active.insert(tx, st);
                for p in participants {
                    let ops: Vec<TxOp> = req
                        .ops
                        .iter()
                        .filter(|o| o.participant == p)
                        .cloned()
                        .collect();
                    let reply = ctx.create_link(Channel::DEFAULT, tx as u32);
                    let body = encode_ctl(tx_codes::TX_PREPARE, &Prepare { tx, ops });
                    let _ = ctx.send_passing(LinkId(p), body, reply);
                }
            }
            tx_codes::TX_VOTE => {
                let mut d = Decoder::new(payload);
                let (Ok(tx), Ok(yes)) = (d.u64(), d.bool()) else {
                    return;
                };
                let Some(st) = self.active.get_mut(&tx) else {
                    return;
                };
                if st.phase != TxPhase::Preparing {
                    return;
                }
                st.votes_needed -= 1;
                if yes {
                    st.votes_yes += 1;
                }
                if !yes {
                    self.decide(ctx, tx, false);
                } else if st.votes_needed == 0 {
                    self.decide(ctx, tx, true);
                }
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.next_tx).u64(self.committed).u64(self.aborted);
        e.u64(self.active.len() as u64);
        for (tx, st) in &self.active {
            e.u64(*tx);
            e.seq(&st.ops, |e, op| op.encode(e));
            e.seq(&st.participants, |e, p| {
                e.u32(*p);
            });
            e.u64(st.votes_needed).u64(st.votes_yes).u64(st.acks_needed);
            e.u8(match st.phase {
                TxPhase::Preparing => 0,
                TxPhase::Committing => 1,
                TxPhase::Aborting => 2,
            });
            e.u32(st.client_link);
        }
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.next_tx = d.u64()?;
        self.committed = d.u64()?;
        self.aborted = d.u64()?;
        self.active.clear();
        for _ in 0..d.u64()? {
            let tx = d.u64()?;
            let ops = d.seq(TxOp::decode)?;
            let participants = d.seq(|d| d.u32())?;
            let votes_needed = d.u64()?;
            let votes_yes = d.u64()?;
            let acks_needed = d.u64()?;
            let phase = match d.u8()? {
                0 => TxPhase::Preparing,
                1 => TxPhase::Committing,
                2 => TxPhase::Aborting,
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "tx phase",
                        tag,
                    })
                }
            };
            let client_link = d.u32()?;
            self.active.insert(
                tx,
                TxState {
                    ops,
                    participants,
                    votes_needed,
                    votes_yes,
                    acks_needed,
                    phase,
                    client_link,
                },
            );
        }
        d.finish()
    }
}

/// A participant: named accounts plus staged intentions. Accounts refuse
/// to go negative (the business rule that can force an abort), and an
/// account with a staged intention is locked against concurrent
/// transactions (the §6.4 concurrency-control role).
#[derive(Debug, Default)]
pub struct TxParticipant {
    /// Account balances.
    pub accounts: BTreeMap<String, i64>,
    /// Staged intentions by transaction: (ops, reply link id).
    staged: BTreeMap<u64, Vec<TxOp>>,
}

impl TxParticipant {
    /// Creates a participant with the given opening balances.
    pub fn with_accounts(accounts: &[(&str, i64)]) -> Self {
        TxParticipant {
            accounts: accounts.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            staged: BTreeMap::new(),
        }
    }

    /// Sum of all balances (the conservation oracle in tests).
    pub fn total(&self) -> i64 {
        self.accounts.values().sum()
    }

    fn locked(&self, account: &str) -> bool {
        self.staged
            .values()
            .flatten()
            .any(|op| op.account == account)
    }
}

impl Program for TxParticipant {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        match code {
            tx_codes::TX_PREPARE => {
                let Ok(p) = Prepare::decode_all(payload) else {
                    return;
                };
                let Some(reply) = msg.link else { return };
                // Vote yes iff all accounts exist, are unlocked, and the
                // deltas keep them non-negative.
                let ok = p.ops.iter().all(|op| {
                    !self.locked(&op.account)
                        && self
                            .accounts
                            .get(&op.account)
                            .map(|b| b + op.delta >= 0)
                            .unwrap_or(false)
                });
                if ok {
                    self.staged.insert(p.tx, p.ops);
                }
                let mut e = Encoder::new();
                e.u32(tx_codes::TX_VOTE).u64(p.tx).bool(ok);
                let _ = ctx.send(reply, e.finish());
            }
            tx_codes::TX_COMMIT => {
                let mut d = Decoder::new(payload);
                let Ok(tx) = d.u64() else { return };
                if let Some(ops) = self.staged.remove(&tx) {
                    for op in ops {
                        *self.accounts.entry(op.account).or_insert(0) += op.delta;
                    }
                }
            }
            tx_codes::TX_ABORT => {
                let mut d = Decoder::new(payload);
                let Ok(tx) = d.u64() else { return };
                self.staged.remove(&tx);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.accounts.len() as u64);
        for (name, bal) in &self.accounts {
            e.str(name).i64(*bal);
        }
        e.u64(self.staged.len() as u64);
        for (tx, ops) in &self.staged {
            e.u64(*tx);
            e.seq(ops, |e, op| op.encode(e));
        }
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.accounts.clear();
        for _ in 0..d.u64()? {
            let name = d.str()?;
            let bal = d.i64()?;
            self.accounts.insert(name, bal);
        }
        self.staged.clear();
        for _ in 0..d.u64()? {
            let tx = d.u64()?;
            let ops = d.seq(TxOp::decode)?;
            self.staged.insert(tx, ops);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips() {
        let op = TxOp {
            participant: 1,
            account: "alice".into(),
            delta: -50,
        };
        assert_eq!(TxOp::decode_all(&op.encode_to_vec()).unwrap(), op);
        let req = TxRequest {
            ops: vec![op.clone()],
        };
        assert_eq!(TxRequest::decode_all(&req.encode_to_vec()).unwrap(), req);
        let p = Prepare {
            tx: 9,
            ops: vec![op],
        };
        assert_eq!(Prepare::decode_all(&p.encode_to_vec()).unwrap(), p);
    }

    #[test]
    fn coordinator_snapshot_roundtrip_with_active_tx() {
        let mut c = TxCoordinator::new();
        c.next_tx = 3;
        c.committed = 1;
        c.active.insert(
            2,
            TxState {
                ops: vec![TxOp {
                    participant: 0,
                    account: "a".into(),
                    delta: 5,
                }],
                participants: vec![0],
                votes_needed: 1,
                votes_yes: 0,
                acks_needed: 0,
                phase: TxPhase::Preparing,
                client_link: 7,
            },
        );
        let snap = c.snapshot();
        let mut c2 = TxCoordinator::new();
        c2.restore(&snap).unwrap();
        assert_eq!(c2.snapshot(), snap);
    }

    #[test]
    fn participant_votes_and_applies() {
        let mut p = TxParticipant::with_accounts(&[("alice", 100), ("bob", 0)]);
        assert_eq!(p.total(), 100);
        // Stage a valid transfer leg.
        p.staged.insert(
            1,
            vec![TxOp {
                participant: 0,
                account: "alice".into(),
                delta: -40,
            }],
        );
        assert!(p.locked("alice"));
        assert!(!p.locked("bob"));
        // Commit applies and unlocks.
        let ops = p.staged.remove(&1).unwrap();
        for op in ops {
            *p.accounts.get_mut(&op.account).unwrap() += op.delta;
        }
        assert_eq!(p.accounts["alice"], 60);
    }

    #[test]
    fn participant_snapshot_roundtrip() {
        let mut p = TxParticipant::with_accounts(&[("x", 10)]);
        p.staged.insert(
            4,
            vec![TxOp {
                participant: 1,
                account: "x".into(),
                delta: -1,
            }],
        );
        let snap = p.snapshot();
        let mut p2 = TxParticipant::default();
        p2.restore(&snap).unwrap();
        assert_eq!(p2.snapshot(), snap);
        assert_eq!(p2.accounts["x"], 10);
    }
}
