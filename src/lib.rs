//! # publishing — a reproduction of *PUBLISHING: A Reliable Broadcast
//! Communication Mechanism* (Presotto, 1983)
//!
//! Published communications makes recovery in a message-based distributed
//! system *transparent*: a passive recorder on the broadcast network
//! stores every message sent to every process (plus periodic
//! checkpoints), and a crashed process is rebuilt — without disturbing
//! anyone else — by restarting it from a checkpoint and replaying its
//! published messages in the original order, suppressing the messages it
//! re-sends along the way.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event substrate: virtual time, event queue, PRNG, codec, stats, fault plans |
//! | [`net`] | broadcast LAN models: perfect bus, CSMA/CD + Acknowledging Ethernet, token ring, star hub |
//! | [`stable`] | recorder storage: simulated disks, page-buffered message log, checkpoint store, TMR |
//! | [`demos`] | the DEMOS/MP kernel: links, channels, messages, transport, process control |
//! | [`core`] | the contribution: recorder, recovery manager, checkpoint policies, worlds, extensions |
//! | [`queueing`] | the Chapter 5 open queuing model of the recorder |
//!
//! ## Quickstart
//!
//! ```
//! use publishing::core::world::WorldBuilder;
//! use publishing::demos::ids::Channel;
//! use publishing::demos::link::Link;
//! use publishing::demos::programs::{self, PingClient};
//! use publishing::demos::registry::ProgramRegistry;
//! use publishing::sim::time::SimTime;
//!
//! // Two processing nodes plus a recorder on a perfect broadcast bus.
//! let mut reg = ProgramRegistry::new();
//! programs::register_standard(&mut reg);
//! reg.register("ping", || Box::new(PingClient::new(5)));
//! let mut world = WorldBuilder::new(2).registry(reg).build();
//!
//! // An echo server on node 1, a client on node 0.
//! let server = world.spawn(1, "echo", vec![]).unwrap();
//! let client = world
//!     .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
//!     .unwrap();
//!
//! // Crash the server mid-run; recovery is transparent.
//! world.run_until(SimTime::from_millis(20));
//! world.crash_process(server, "cosmic ray");
//! world.run_until(SimTime::from_secs(10));
//!
//! let out = world.outputs_of(client);
//! assert_eq!(out.last().unwrap(), "done");
//! assert_eq!(out.len(), 6); // 5 pongs + done, exactly once each
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use publishing_core as core;
pub use publishing_demos as demos;
pub use publishing_net as net;
pub use publishing_queueing as queueing;
pub use publishing_sim as sim;
pub use publishing_stable as stable;
