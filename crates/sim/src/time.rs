//! Virtual time for the discrete-event simulation.
//!
//! The paper's evaluation mixes very different time scales: a byte on a
//! 10 Mb/s Ethernet takes 0.8 µs, disk latency is 3 ms, watchdog timeouts
//! are seconds. We therefore keep virtual time in integer **nanoseconds**,
//! which represents all of these exactly and keeps arithmetic deterministic
//! (no floating point drift in the event queue ordering).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, mirroring
    /// [`std::time::Instant::saturating_duration_since`].
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration since `earlier`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        let ns = s * 1e9;
        assert!(ns <= u64::MAX as f64, "duration overflow: {s}s");
        SimDuration(ns.round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative, NaN, or too large to represent.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies by an integer count, saturating on overflow.
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Scales by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or NaN.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.0031);
        assert_eq!(d, SimDuration::from_micros(3_100));
        assert!((d.as_millis_f64() - 3.1).abs() < 1e-9);
        assert_eq!(
            SimDuration::from_millis_f64(1.6),
            SimDuration::from_micros(1_600)
        );
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(12);
        assert!((a / b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3ms");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3us");
        assert_eq!(format!("{}", SimDuration::from_nanos(3)), "3ns");
        assert_eq!(format!("{}", SimDuration::ZERO), "0");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "t+1ms");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
