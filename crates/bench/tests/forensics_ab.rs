//! The regression-forensics acceptance pair: a seeded A/B run with
//! protocol CPU doubled must fail the comparator with the protocol-CPU
//! family ranked as the #1 suspect, and any side diffed against itself
//! must produce an empty diagnosis at both granularities.

use publishing_bench::forensics_demo::{
    annotate_remediation, baseline_tuning, injected_tuning, run_side,
};
use publishing_obs::forensics::SuspectKind;
use publishing_perf::forensics::{diff_reports, diff_snapshots, ForensicsOptions};

/// Suspect names that all mean "the protocol-CPU physics got slower":
/// the cost-model profile categories and the ledger kinds the
/// `proto_cpu` knob scales.
const CPU_FAMILY: &[&str] = &[
    "profile_kernel_cpu_ms",
    "profile_publish_cpu_ms",
    "util_cpu_proto_busy_ms",
    "util_cpu_prog_busy_ms",
    "util_recorder_cpu_busy_ms",
];

#[test]
fn doubled_protocol_cpu_is_caught_and_attributed() {
    let baseline = run_side(&baseline_tuning());
    let injected = run_side(&injected_tuning("proto_cpu", 2.0));
    let opts = ForensicsOptions::default();

    let (c, mut diagnosis) =
        diff_snapshots("baseline", &baseline.snapshot, &injected.snapshot, &opts);
    assert_eq!(
        c.exit_code(),
        1,
        "doubling protocol CPU must trip a gated rule:\n{}",
        c.render()
    );
    annotate_remediation(&mut diagnosis);

    // Every violated latency rule's top suspect must sit in the
    // protocol-CPU family and carry the proto_cpu remediation knob.
    let latency_findings: Vec<_> = diagnosis
        .findings
        .iter()
        .filter(|f| {
            f.subject.ends_with("_p50")
                || f.subject.ends_with("_p95")
                || f.subject.ends_with("_p99")
        })
        .collect();
    assert!(
        !latency_findings.is_empty(),
        "a latency rule must be among the violations:\n{}",
        diagnosis.render()
    );
    for f in latency_findings {
        let top = f.suspects.first().expect("a violated rule gets suspects");
        // The #1 suspect must finger the protocol CPU either directly
        // (a CPU-family metric) or via a binding flip onto a CPU
        // resource ("the run is now bottlenecked on cpu2:proto").
        let names_cpu = match top.kind {
            SuspectKind::BindingFlip => top.detail.contains("proto") || top.detail.contains("prog"),
            _ => CPU_FAMILY.contains(&top.name.as_str()) && top.detail.contains("proto_cpu"),
        };
        assert!(
            names_cpu,
            "#1 suspect for {} is {} ({:?}), not protocol CPU:\n{}",
            f.subject,
            top.name,
            top.detail,
            diagnosis.render()
        );
        if top.kind != SuspectKind::BindingFlip {
            // The injected knob scales costs exactly 2x, and virtual
            // time replays exactly, so the top suspect's growth is
            // large — not a marginal threshold crossing.
            assert!(
                top.new > top.prev * 1.5,
                "top suspect should have grown substantially: {} -> {}",
                top.prev,
                top.new
            );
        }
    }

    // The report-level differ must attribute the same physics: the
    // profile finding's top stage suspect is the kernel-CPU category.
    let trial_diag = diff_reports(
        "baseline/trial",
        &baseline.trial_report,
        &injected.trial_report,
        &opts,
    );
    let profile = trial_diag
        .findings
        .iter()
        .find(|f| f.subject == "profile")
        .expect("the profile must shift when CPU costs double");
    assert_eq!(profile.suspects[0].name, "kernel_cpu");
    let util = trial_diag
        .findings
        .iter()
        .find(|f| f.subject == "utilization")
        .expect("the ledger must shift when CPU costs double");
    assert_eq!(util.suspects[0].kind, SuspectKind::Resource);
    assert!(
        util.suspects[0].detail.contains("cpu_proto")
            || util.suspects[0].detail.contains("cpu_prog"),
        "top ledger shift should be a CPU row, got {:?}",
        util.suspects[0]
    );
}

#[test]
fn self_diff_is_empty_at_both_granularities() {
    let side = run_side(&baseline_tuning());
    let opts = ForensicsOptions::default();
    let (c, snap_diag) = diff_snapshots("self", &side.snapshot, &side.snapshot, &opts);
    assert_eq!(c.exit_code(), 0);
    assert!(snap_diag.is_empty(), "{}", snap_diag.render());
    let trial = diff_reports("self", &side.trial_report, &side.trial_report, &opts);
    assert!(trial.is_empty(), "{}", trial.render());
    let crash = diff_reports("self", &side.crash_report, &side.crash_report, &opts);
    assert!(crash.is_empty(), "{}", crash.render());
}

#[test]
fn ab_sides_are_deterministic() {
    // Two runs of the same side must agree byte-for-byte on the
    // deterministic half of the snapshot — the property that makes any
    // surviving diff a real change rather than noise.
    let a1 = run_side(&baseline_tuning());
    let a2 = run_side(&baseline_tuning());
    assert_eq!(a1.snapshot.virtual_json(), a2.snapshot.virtual_json());
}
