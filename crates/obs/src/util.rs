//! Capacity-lens report sections: the resource-utilization ledger and
//! the what-if (virtual-speedup) profiler results (schema v5).
//!
//! A world driver assembles a [`UtilizationReport`] from the typed
//! [`ResourceUsage`] rows every subsystem meter exports (per-node CPU
//! split into protocol vs. program time, the shared medium, per-channel
//! transport occupancy, recorder publishing CPU, stable-store disk).
//! The ranking and binding-resource call live in
//! `publishing_sim::ledger` so the sim layer, the worlds, and this
//! report all agree on what "saturated" means; this module only holds
//! the report-shaped containers and their text/JSON renderings.
//!
//! The cross-validation rows ([`XvalRow`]) compare a measured quantity
//! against an analytic queueing-model prediction (utilization law
//! ρ = λ·S, Little's law L = λ·W) so drift between the simulator and
//! the models in `crates/queueing` is caught by the report itself.

use publishing_sim::ledger::{binding, rank, ResourceUsage};

/// One measured-vs-predicted comparison against an analytic queueing
/// law. Assembled by the workload layer, which knows both the offered
/// load and the service-time constants the prediction needs.
#[derive(Debug, Clone)]
pub struct XvalRow {
    /// Resource label the row validates (e.g. `medium`, `xport 0->2`).
    pub resource: String,
    /// Which law produced the prediction (`utilization` for ρ = λ·S,
    /// `little` for L = λ·W).
    pub law: String,
    /// The analytic prediction.
    pub predicted: f64,
    /// The value measured from the run's meters.
    pub measured: f64,
    /// Accepted relative error (fraction of the larger magnitude).
    pub tolerance: f64,
    /// Whether |predicted − measured| fell within tolerance.
    pub ok: bool,
}

impl XvalRow {
    /// Builds a row, computing `ok` from the relative error against the
    /// larger of the two magnitudes (absolute error when both are tiny,
    /// so near-zero pairs compare cleanly).
    pub fn check(
        resource: impl Into<String>,
        law: impl Into<String>,
        predicted: f64,
        measured: f64,
        tolerance: f64,
    ) -> XvalRow {
        let scale = predicted.abs().max(measured.abs());
        let err = (predicted - measured).abs();
        let ok = if scale < 1e-9 {
            true
        } else if scale < 0.05 {
            err <= tolerance * 0.05
        } else {
            err <= tolerance * scale
        };
        XvalRow {
            resource: resource.into(),
            law: law.into(),
            predicted,
            measured,
            tolerance,
            ok,
        }
    }

    /// One-line terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "{} {}: predicted={:.4} measured={:.4} tol={:.0}% {}",
            self.resource,
            self.law,
            self.predicted,
            self.measured,
            self.tolerance * 100.0,
            if self.ok { "ok" } else { "DIVERGED" }
        )
    }
}

/// The resource-utilization section of the report (schema v5).
#[derive(Debug, Clone, Default)]
pub struct UtilizationReport {
    /// The report window (run start → snapshot) the scalar utilizations
    /// are computed against, ms.
    pub window_ms: f64,
    /// Width of one timeline bin, ms (peak utilization is measured over
    /// a sliding window of such bins).
    pub bin_ms: f64,
    /// Every metered resource, in assembly order.
    pub resources: Vec<ResourceUsage>,
    /// Queueing-model cross-validation rows (empty when the run was not
    /// driven through the workload engine).
    pub xval: Vec<XvalRow>,
}

impl UtilizationReport {
    /// Indices of `resources` ranked most-loaded first (saturated rows
    /// first, then by queue depth, then by peak utilization).
    pub fn ranked(&self) -> Vec<usize> {
        rank(&self.resources)
    }

    /// The binding resource — the top-ranked *saturated* row — or
    /// `None` when nothing is saturated (the system is under-driven).
    pub fn binding(&self) -> Option<&ResourceUsage> {
        binding(&self.resources).map(|i| &self.resources[i])
    }

    /// True when any cross-validation row diverged from its model.
    pub fn xval_diverged(&self) -> bool {
        self.xval.iter().any(|r| !r.ok)
    }

    /// Terminal rendering: the ranked resource table plus any
    /// cross-validation rows.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "  window={:.1}ms bin={:.2}ms binding={}\n",
            self.window_ms,
            self.bin_ms,
            self.binding()
                .map(|r| r.name.as_str())
                .unwrap_or("none (under-driven)")
        ));
        for &i in &self.ranked() {
            let r = &self.resources[i];
            s.push_str(&format!(
                "  {:<24} util={:>5.1}% active={:>5.1}% peak={:>5.1}% queue={:.2} events={}{}{}\n",
                r.name,
                r.util * 100.0,
                r.active_util * 100.0,
                r.peak_util * 100.0,
                r.mean_queue,
                r.events,
                if r.contention > 0 {
                    format!(" contention={}", r.contention)
                } else {
                    String::new()
                },
                if r.saturated() { "  <-- saturated" } else { "" },
            ));
        }
        if !self.xval.is_empty() {
            s.push_str("  queueing cross-validation:\n");
            for row in &self.xval {
                s.push_str("    ");
                s.push_str(&row.render());
                s.push('\n');
            }
        }
        s
    }
}

/// One what-if row: a single virtual-speedup knob applied to the
/// scenario, with the profiler's predicted knee and (optionally) the
/// knee an actual re-search confirmed.
#[derive(Debug, Clone)]
pub struct WhatIfRow {
    /// The knob ("wire", "window", "cpu", "publish").
    pub knob: String,
    /// Multiplier applied to the knob (2.0 = twice as fast / as wide;
    /// 0.5 = half the CPU cost).
    pub multiplier: f64,
    /// Knee (max passing users) the profiler predicts from the
    /// baseline's utilization slopes.
    pub predicted_knee: u32,
    /// Knee an actual capacity re-search measured under the tuned
    /// scenario; `None` when confirmation was not requested.
    pub confirmed_knee: Option<u32>,
    /// Binding resource after the speedup (from the confirming search,
    /// or the profiler's expectation when unconfirmed).
    pub binding_after: String,
}

impl WhatIfRow {
    /// Relative error of the prediction against the confirmed knee,
    /// when both are available.
    pub fn error(&self) -> Option<f64> {
        let confirmed = self.confirmed_knee? as f64;
        if confirmed == 0.0 {
            return None;
        }
        Some((self.predicted_knee as f64 - confirmed).abs() / confirmed)
    }

    /// One-line terminal rendering.
    pub fn render(&self) -> String {
        let confirm = match (self.confirmed_knee, self.error()) {
            (Some(k), Some(e)) => format!(" confirmed={} err={:.1}%", k, e * 100.0),
            (Some(k), None) => format!(" confirmed={}", k),
            (None, _) => String::new(),
        };
        format!(
            "{} x{:.2}: predicted_knee={}{} binding_after={}",
            self.knob, self.multiplier, self.predicted_knee, confirm, self.binding_after
        )
    }
}

/// The what-if profiler section of the report (schema v5): the
/// baseline knee plus one row per virtual-speedup knob.
#[derive(Debug, Clone, Default)]
pub struct WhatIfReport {
    /// Knee (max passing users) of the untuned baseline scenario.
    pub baseline_knee: u32,
    /// One row per knob × multiplier tried.
    pub rows: Vec<WhatIfRow>,
}

impl WhatIfReport {
    /// Terminal rendering.
    pub fn render(&self) -> String {
        let mut s = format!("  baseline_knee={}\n", self.baseline_knee);
        for row in &self.rows {
            s.push_str("  ");
            s.push_str(&row.render());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_sim::ledger::ResourceKind;

    fn usage(kind: ResourceKind, index: u32, peak: f64, queue: f64) -> ResourceUsage {
        ResourceUsage {
            kind,
            name: format!("{}{}", kind.label(), index),
            index,
            peer: 0,
            busy_ms: 10.0,
            window_ms: 100.0,
            util: peak / 2.0,
            active_util: peak,
            peak_util: peak,
            mean_queue: queue,
            peak_queue: queue as u64 + 1,
            events: 100,
            contention: 0,
        }
    }

    #[test]
    fn binding_picks_top_saturated_row() {
        let report = UtilizationReport {
            window_ms: 100.0,
            bin_ms: 16.78,
            resources: vec![
                usage(ResourceKind::NodeCpuProto, 0, 0.4, 0.1),
                usage(ResourceKind::Transport, 1, 0.97, 8.0),
                usage(ResourceKind::Medium, 0, 0.5, 0.0),
            ],
            xval: Vec::new(),
        };
        let b = report.binding().expect("one saturated row");
        assert_eq!(b.kind, ResourceKind::Transport);
        assert_eq!(report.ranked()[0], 1);
        let text = report.render();
        assert!(text.contains("<-- saturated"));
        assert!(text.contains("binding="));
    }

    #[test]
    fn underdriven_report_has_no_binding() {
        let report = UtilizationReport {
            window_ms: 100.0,
            bin_ms: 16.78,
            resources: vec![usage(ResourceKind::NodeCpuProto, 0, 0.3, 0.0)],
            xval: Vec::new(),
        };
        assert!(report.binding().is_none());
        assert!(report.render().contains("none (under-driven)"));
    }

    #[test]
    fn xval_check_applies_relative_tolerance() {
        assert!(XvalRow::check("medium", "utilization", 0.50, 0.55, 0.20).ok);
        assert!(!XvalRow::check("medium", "utilization", 0.50, 0.70, 0.20).ok);
        // Near-zero pairs compare on absolute error.
        assert!(XvalRow::check("medium", "utilization", 0.0, 0.004, 0.20).ok);
        assert!(XvalRow::check("medium", "little", 1e-12, 0.0, 0.10).ok);
        let report = UtilizationReport {
            xval: vec![XvalRow::check("medium", "utilization", 0.5, 0.9, 0.1)],
            ..Default::default()
        };
        assert!(report.xval_diverged());
        assert!(report.render().contains("DIVERGED"));
    }

    #[test]
    fn whatif_rows_report_prediction_error() {
        let row = WhatIfRow {
            knob: "wire".into(),
            multiplier: 2.0,
            predicted_knee: 55,
            confirmed_knee: Some(50),
            binding_after: "medium".into(),
        };
        assert!((row.error().unwrap() - 0.10).abs() < 1e-9);
        let report = WhatIfReport {
            baseline_knee: 28,
            rows: vec![row],
        };
        let text = report.render();
        assert!(text.contains("baseline_knee=28"));
        assert!(text.contains("wire x2.00: predicted_knee=55 confirmed=50 err=10.0%"));
    }
}
