//! Deterministic programs: the process model of §1.1.1.
//!
//! A process is "deterministic upon its input interactions": started from
//! the same state and fed the same messages, it produces the same outputs.
//! Publishing's whole correctness argument rests on this, so the [`Program`]
//! interface is designed to make non-determinism impossible to express:
//! a program sees only its own state and the message being delivered —
//! no clock, no randomness, no shared memory — and interacts with the
//! world only through the recorded effects in [`Ctx`].
//!
//! Programs must also be *checkpointable*: [`Program::snapshot`] and
//! [`Program::restore`] capture and rebuild the program's writable state
//! (the "process address space" component of §4.4.3's state inventory).

use crate::ids::{Channel, ChannelSet, LinkId, ProcessId};
use crate::link::{Link, LinkTable};
use publishing_sim::codec::CodecError;
use publishing_sim::time::SimDuration;

/// A message as seen by the receiving program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received {
    /// The code of the link the sender used (§4.2.2.1: "the kernel returns
    /// not only the message contents, but also the code").
    pub code: u32,
    /// The channel the message arrived on.
    pub channel: Channel,
    /// Message body.
    pub body: Vec<u8>,
    /// If the message carried a link, the id it was installed under in
    /// this process's link table.
    pub link: Option<LinkId>,
}

/// One side effect requested during an activation, applied by the kernel
/// when the activation's CPU time has elapsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Send a message over a link (the link was resolved at call time).
    Send {
        /// The resolved link.
        link: Link,
        /// Message body.
        body: Vec<u8>,
        /// A link to ride in the message (already removed from the table).
        passed: Option<Link>,
    },
    /// Emit externally visible output (a terminal write; the test suite's
    /// oracle for "the process behaved identically").
    Output(Vec<u8>),
}

/// The syscall interface available during one activation.
///
/// Everything a program can do goes through here and is either pure state
/// (link table updates) or an [`Effect`] the kernel applies afterwards.
pub struct Ctx<'a> {
    pid: ProcessId,
    links: &'a mut LinkTable,
    effects: &'a mut Vec<Effect>,
    recv_mask: &'a mut ChannelSet,
    stop: &'a mut bool,
    compute: &'a mut SimDuration,
}

/// Errors a syscall can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallError {
    /// The link id is not in this process's table.
    BadLink(LinkId),
}

impl core::fmt::Display for SyscallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SyscallError::BadLink(id) => write!(f, "no such link: {id:?}"),
        }
    }
}

impl std::error::Error for SyscallError {}

impl<'a> Ctx<'a> {
    /// Assembles a context for one activation.
    ///
    /// Normally only the kernel builds contexts; it is public so offline
    /// harnesses (unit tests, the §6.5 replay debugger) can drive a
    /// [`Program`] outside a kernel.
    pub fn new(
        pid: ProcessId,
        links: &'a mut LinkTable,
        effects: &'a mut Vec<Effect>,
        recv_mask: &'a mut ChannelSet,
        stop: &'a mut bool,
        compute: &'a mut SimDuration,
    ) -> Self {
        Ctx {
            pid,
            links,
            effects,
            recv_mask,
            stop,
            compute,
        }
    }

    /// Returns this process's network-wide id.
    pub fn my_pid(&self) -> ProcessId {
        self.pid
    }

    /// Creates a link to this process on `channel` with `code`, for
    /// passing to other processes so they can send to us.
    pub fn create_link(&mut self, channel: Channel, code: u32) -> LinkId {
        self.links.insert(Link::to(self.pid, channel, code))
    }

    /// Removes a link from the table so it can be passed in a message.
    ///
    /// Returns the removed link, or an error if `id` is unknown.
    pub fn take_link(&mut self, id: LinkId) -> Result<Link, SyscallError> {
        self.links.remove(id).ok_or(SyscallError::BadLink(id))
    }

    /// Looks up a link without removing it.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id)
    }

    /// Installs a link received or constructed elsewhere, returning its id.
    pub fn install_link(&mut self, link: Link) -> LinkId {
        self.links.insert(link)
    }

    /// Sends `body` over the link `id`.
    pub fn send(&mut self, id: LinkId, body: Vec<u8>) -> Result<(), SyscallError> {
        let link = *self.links.get(id).ok_or(SyscallError::BadLink(id))?;
        self.effects.push(Effect::Send {
            link,
            body,
            passed: None,
        });
        Ok(())
    }

    /// Sends `body` over link `id`, passing link `pass` inside the message
    /// (which removes `pass` from this process's table, §4.2.2.3).
    pub fn send_passing(
        &mut self,
        id: LinkId,
        body: Vec<u8>,
        pass: LinkId,
    ) -> Result<(), SyscallError> {
        let link = *self.links.get(id).ok_or(SyscallError::BadLink(id))?;
        let passed = self.links.remove(pass).ok_or(SyscallError::BadLink(pass))?;
        self.effects.push(Effect::Send {
            link,
            body,
            passed: Some(passed),
        });
        Ok(())
    }

    /// Declares which channels the next receive accepts (§4.2.2.2).
    /// Defaults to all channels and persists across activations.
    pub fn set_receive(&mut self, mask: ChannelSet) {
        *self.recv_mask = mask;
    }

    /// Charges `d` of CPU time to this activation — the knob workloads use
    /// to model computation between messages.
    pub fn compute(&mut self, d: SimDuration) {
        *self.compute += d;
    }

    /// Emits externally visible output.
    pub fn output(&mut self, bytes: Vec<u8>) {
        self.effects.push(Effect::Output(bytes));
    }

    /// Terminates this process at the end of the activation.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic, checkpointable program.
///
/// # Determinism contract
///
/// Implementations must compute outputs purely from `self` plus the
/// delivered messages. In particular they must not consult wall-clock
/// time, OS randomness, thread ids, or iteration order of unordered maps.
/// The property tests in this workspace re-execute programs from
/// checkpoints and fail loudly on any divergence.
pub trait Program: Send {
    /// Runs once when the process starts (also re-run during recovery from
    /// the initial state, with output suppression handling duplicates).
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// Handles one delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received);

    /// Serializes the program's writable state.
    fn snapshot(&self) -> Vec<u8>;

    /// Rebuilds the program's state from [`Program::snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the bytes do not decode; recovery
    /// treats this as a recursive crash.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn pid() -> ProcessId {
        ProcessId {
            node: NodeId(1),
            local: 7,
        }
    }

    struct Fixture {
        links: LinkTable,
        effects: Vec<Effect>,
        mask: ChannelSet,
        stop: bool,
        compute: SimDuration,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                links: LinkTable::new(),
                effects: Vec::new(),
                mask: ChannelSet::ALL,
                stop: false,
                compute: SimDuration::ZERO,
            }
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx::new(
                pid(),
                &mut self.links,
                &mut self.effects,
                &mut self.mask,
                &mut self.stop,
                &mut self.compute,
            )
        }
    }

    #[test]
    fn create_link_points_to_self() {
        let mut f = Fixture::new();
        let id = f.ctx().create_link(Channel(2), 9);
        let link = f.links.get(id).unwrap();
        assert_eq!(link.dest, pid());
        assert_eq!(link.channel, Channel(2));
        assert_eq!(link.code, 9);
    }

    #[test]
    fn send_resolves_link_at_call_time() {
        let mut f = Fixture::new();
        {
            let mut ctx = f.ctx();
            let id = ctx.create_link(Channel(0), 1);
            ctx.send(id, b"hi".to_vec()).unwrap();
            // Removing the link afterwards must not affect the queued send.
            ctx.take_link(id).unwrap();
        }
        match &f.effects[0] {
            Effect::Send { link, body, passed } => {
                assert_eq!(link.dest, pid());
                assert_eq!(body, b"hi");
                assert!(passed.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn send_passing_removes_passed_link() {
        let mut f = Fixture::new();
        {
            let mut ctx = f.ctx();
            let target = ctx.create_link(Channel(0), 1);
            let passed = ctx.create_link(Channel(1), 2);
            ctx.send_passing(target, vec![], passed).unwrap();
            assert!(ctx.link(passed).is_none());
        }
        match &f.effects[0] {
            Effect::Send {
                passed: Some(l), ..
            } => assert_eq!(l.code, 2),
            _ => panic!(),
        }
    }

    #[test]
    fn bad_link_errors() {
        let mut f = Fixture::new();
        let mut ctx = f.ctx();
        assert_eq!(
            ctx.send(LinkId(99), vec![]),
            Err(SyscallError::BadLink(LinkId(99)))
        );
        assert!(ctx.take_link(LinkId(99)).is_err());
    }

    #[test]
    fn stop_and_compute_and_mask_recorded() {
        let mut f = Fixture::new();
        {
            let mut ctx = f.ctx();
            ctx.compute(SimDuration::from_millis(5));
            ctx.compute(SimDuration::from_millis(2));
            ctx.set_receive(ChannelSet::of(&[Channel(3)]));
            ctx.stop();
        }
        assert_eq!(f.compute, SimDuration::from_millis(7));
        assert!(f.stop);
        assert!(f.mask.contains(Channel(3)));
        assert!(!f.mask.contains(Channel(0)));
    }

    #[test]
    fn output_is_an_effect() {
        let mut f = Fixture::new();
        f.ctx().output(b"result".to_vec());
        assert_eq!(f.effects, vec![Effect::Output(b"result".to_vec())]);
    }
}
