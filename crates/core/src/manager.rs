//! The recovery manager, watchdogs, and recovery processes (§3.3.2,
//! §3.3.3, §4.6, §4.7).
//!
//! The manager lives on the recording node. Watchdog timers ping every
//! processing node ("it is a good idea for each processor to send a
//! message from time to time, even if it has nothing to say"); a missed
//! reply declares the node crashed. Crash notices from kernels report
//! single-process faults. Either way, a *recovery job* per crashed
//! process drives the §3.3.3 sequence: recreate at the last checkpoint,
//! replay the published messages in read order, then a
//! prepare/straggler/commit handshake that closes the race between the
//! end of replay and newly arriving live traffic.
//!
//! The manager is a pure state machine: it consumes protocol replies and
//! timer callbacks plus read access to the [`Recorder`] database, and
//! emits [`MgrCmd`]s the recorder node executes.

use crate::recorder::{PidFilter, Recorder};
use publishing_demos::ids::{NodeId, ProcessId};
use publishing_demos::kernel::encode_ctl;
use publishing_demos::protocol::{self, codes, ReportedState};
use publishing_sim::codec::{Encode, Encoder};
use publishing_sim::stats::Counter;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// A command for the recorder node to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgrCmd {
    /// Send a guaranteed control message to a node's kernel endpoint.
    SendKernel {
        /// Destination node.
        node: NodeId,
        /// Encoded control body (code + payload).
        body: Vec<u8>,
    },
    /// Send an unguaranteed datagram to a node's kernel endpoint
    /// (watchdog pings; no retransmission toward dead nodes).
    SendKernelDatagram {
        /// Destination node.
        node: NodeId,
        /// Encoded control body.
        body: Vec<u8>,
    },
    /// Physically restart a crashed node (the §4.6 operator action /
    /// spare processor assuming its identity); the world calls back
    /// [`RecoveryManager::on_node_restarted`] once done.
    RestartNode {
        /// Node to restart.
        node: NodeId,
        /// Its new incarnation.
        incarnation: u32,
    },
    /// Arm a manager timer.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Token for [`RecoveryManager::on_timer`].
        token: u64,
    },
    /// A process finished recovering (informational).
    RecoveryDone {
        /// The recovered process.
        pid: ProcessId,
    },
}

/// Watchdog and recovery pacing.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Watchdog ping interval (per node).
    pub ping_interval: SimDuration,
    /// How long to wait for an ALIVE reply before declaring a crash.
    pub ping_timeout: SimDuration,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            ping_interval: SimDuration::from_millis(500),
            ping_timeout: SimDuration::from_millis(400),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// RECREATE sent; waiting for the kernel's confirmation.
    WaitRecreate,
    /// Replays and PREPARE_FINISH sent; waiting for the prepare reply.
    Preparing {
        /// Next read index to replay when stragglers appear.
        next_index: u64,
    },
}

#[derive(Debug)]
struct Job {
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Up,
    /// Declared crashed; restart requested.
    Restarting,
}

#[derive(Debug)]
struct Watch {
    state: NodeState,
    incarnation: u32,
    outstanding: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    Ping(NodeId),
    PingTimeout(NodeId, u64),
}

/// Counters the manager maintains.
#[derive(Debug, Default, Clone)]
pub struct ManagerStats {
    /// Process crashes handled.
    pub process_recoveries: Counter,
    /// Node crashes detected by watchdog timeout.
    pub node_crashes: Counter,
    /// Messages replayed.
    pub replayed: Counter,
    /// Recoveries completed.
    pub completed: Counter,
    /// Recursive crashes (crash during recovery, §3.5).
    pub recursive: Counter,
    /// Stale state replies ignored (§3.4 restart numbers).
    pub stale_replies: Counter,
}

/// The recovery manager.
pub struct RecoveryManager {
    cfg: ManagerConfig,
    nodes: BTreeMap<NodeId, Watch>,
    jobs: BTreeMap<ProcessId, Job>,
    timers: HashMap<u64, TimerKind>,
    next_token: u64,
    next_nonce: u64,
    /// When set, only processes the filter accepts are recovered here.
    /// A sharded tier sets "pid is my shard's responsibility" so exactly
    /// one live shard drives each process's recovery even though crash
    /// notices are broadcast to every recorder.
    recovery_filter: Option<PidFilter>,
    stats: ManagerStats,
}

impl RecoveryManager {
    /// Creates a manager watching no nodes yet.
    pub fn new(cfg: ManagerConfig) -> Self {
        RecoveryManager {
            cfg,
            nodes: BTreeMap::new(),
            jobs: BTreeMap::new(),
            timers: HashMap::new(),
            next_token: 0,
            next_nonce: 0,
            recovery_filter: None,
            stats: ManagerStats::default(),
        }
    }

    /// Installs (or clears) the recovery-responsibility filter.
    pub fn set_recovery_filter(&mut self, filter: Option<PidFilter>) {
        self.recovery_filter = filter;
    }

    /// Returns the manager's counters.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    /// Returns `true` while any recovery job is in flight.
    pub fn busy(&self) -> bool {
        !self.jobs.is_empty()
    }

    /// Returns the processes whose recovery this manager is driving, in
    /// pid order (the recovery-lag probe sums their replay backlogs).
    pub fn job_pids(&self) -> Vec<ProcessId> {
        self.jobs.keys().copied().collect()
    }

    /// Returns the number of nodes currently believed crashed.
    pub fn nodes_restarting(&self) -> usize {
        self.nodes
            .values()
            .filter(|w| w.state == NodeState::Restarting)
            .count()
    }

    fn timer(&mut self, at: SimTime, kind: TimerKind, out: &mut Vec<MgrCmd>) {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        out.push(MgrCmd::SetTimer { at, token });
    }

    /// Starts watching a node: arms its watchdog (§4.6: "creates, on the
    /// recording node, a watch process for each processor").
    pub fn watch_node(&mut self, now: SimTime, node: NodeId) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        self.nodes.insert(
            node,
            Watch {
                state: NodeState::Up,
                incarnation: 0,
                outstanding: None,
            },
        );
        // Offset each node's watchdog phase: nodes are watched in a batch
        // at startup, and un-staggered pings would hit a broadcast medium
        // at the same instant every interval — a guaranteed CSMA/CD
        // collision convoy that persists for the life of the run.
        let phase = SimDuration::from_nanos(
            self.cfg.ping_interval.as_nanos() / 8 * (u64::from(node.0) % 8),
        );
        self.timer(
            now + self.cfg.ping_interval + phase,
            TimerKind::Ping(node),
            &mut out,
        );
        out
    }

    /// Handles a manager timer.
    pub fn on_timer(&mut self, now: SimTime, recorder: &mut Recorder, token: u64) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        let Some(kind) = self.timers.remove(&token) else {
            return out;
        };
        match kind {
            TimerKind::Ping(node) => {
                let Some(w) = self.nodes.get_mut(&node) else {
                    return out;
                };
                if w.state == NodeState::Up {
                    let nonce = self.next_nonce;
                    self.next_nonce += 1;
                    w.outstanding = Some(nonce);
                    let mut e = Encoder::new();
                    e.u32(codes::ARE_YOU_ALIVE).u64(nonce);
                    out.push(MgrCmd::SendKernelDatagram {
                        node,
                        body: e.finish(),
                    });
                    self.timer(
                        now + self.cfg.ping_timeout,
                        TimerKind::PingTimeout(node, nonce),
                        &mut out,
                    );
                }
                self.timer(
                    now + self.cfg.ping_interval,
                    TimerKind::Ping(node),
                    &mut out,
                );
            }
            TimerKind::PingTimeout(node, nonce) => {
                let Some(w) = self.nodes.get_mut(&node) else {
                    return out;
                };
                if w.state == NodeState::Up && w.outstanding == Some(nonce) {
                    // §4.6: no reply within the interval — the node crashed.
                    self.stats.node_crashes.inc();
                    w.state = NodeState::Restarting;
                    w.incarnation += 1;
                    let incarnation = w.incarnation;
                    out.push(MgrCmd::RestartNode { node, incarnation });
                }
                let _ = recorder;
            }
        }
        out
    }

    /// Called by the world after it physically restarted `node`:
    /// broadcasts the restart so peers renumber, then starts recovery for
    /// every process the recorder knows on that node.
    pub fn on_node_restarted(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        node: NodeId,
        incarnation: u32,
    ) -> Vec<MgrCmd> {
        self.on_node_restarted_with(now, recorder, node, incarnation, true)
    }

    /// [`RecoveryManager::on_node_restarted`] with an explicit `announce`
    /// flag. A sharded tier elects one leader shard to broadcast the
    /// NODE_RESTARTED notice; the others pass `announce = false` and only
    /// re-arm their watchdog plus recover the processes they own.
    pub fn on_node_restarted_with(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        node: NodeId,
        incarnation: u32,
        announce: bool,
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        let Some(w) = self.nodes.get_mut(&node) else {
            return out;
        };
        w.state = NodeState::Up;
        w.outstanding = None;
        w.incarnation = incarnation;
        if announce {
            let restarted = protocol::NodeRestarted { node, incarnation };
            let body = encode_ctl(codes::NODE_RESTARTED, &restarted);
            let peers: Vec<NodeId> = self.nodes.keys().copied().filter(|&n| n != node).collect();
            for peer in peers {
                out.push(MgrCmd::SendKernel {
                    node: peer,
                    body: body.clone(),
                });
            }
        }
        // Any recovery jobs that were talking to the node's previous
        // incarnation died with it; forget them so fresh jobs can start.
        self.jobs.retain(|p, _| p.node != node);
        let pids: Vec<ProcessId> = recorder.known_pids().filter(|p| p.node == node).collect();
        for pid in pids {
            out.extend(self.start_recovery(now, recorder, pid));
        }
        out
    }

    /// Starts (or restarts, §3.5) recovery of one process.
    pub fn start_recovery(
        &mut self,
        _now: SimTime,
        recorder: &mut Recorder,
        pid: ProcessId,
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        if !self
            .recovery_filter
            .as_ref()
            .map(|f| f(pid))
            .unwrap_or(true)
        {
            // Another shard's responsibility; its manager will handle it.
            return out;
        }
        if self.jobs.contains_key(&pid) {
            // A recovery is already in flight; a second trigger (e.g. a
            // state-query reply racing a retransmitted crash notice) must
            // not wipe its progress. Genuine recursive crashes remove the
            // job first (§3.5).
            return out;
        }
        let Some(entry) = recorder.entry(pid) else {
            return out;
        };
        if !entry.recoverable {
            // §6.6.1: the process opted out of recovery; its crash is
            // final and nothing was published for it.
            return out;
        }
        let program_name = entry.program_name.clone();
        let initial_links = entry.initial_links.clone();
        if program_name.is_empty() {
            // We never saw a creation notice; nothing to recreate from.
            return out;
        }
        self.stats.process_recoveries.inc();
        recorder.set_recovering(pid, true);
        let req = protocol::Recreate {
            pid,
            program_name,
            checkpoint: recorder.checkpoint_image(pid).map(|b| b.to_vec()),
            suppress: recorder.suppress_vector(pid),
            initial_links,
        };
        self.jobs.insert(
            pid,
            Job {
                phase: Phase::WaitRecreate,
            },
        );
        out.push(MgrCmd::SendKernel {
            node: pid.node,
            body: encode_ctl(codes::RECREATE, &req),
        });
        out
    }

    /// Handles a RECREATE_REPLY: streams the replay and the prepare.
    pub fn on_recreate_reply(
        &mut self,
        _now: SimTime,
        recorder: &Recorder,
        pid: ProcessId,
        ok: bool,
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        let Some(job) = self.jobs.get_mut(&pid) else {
            return out;
        };
        if job.phase != Phase::WaitRecreate || !ok {
            return out;
        }
        // §3.3.3 step 3: send all messages received between the last
        // checkpoint and the crash, in original (read) order. FIFO
        // transport keeps them ordered ahead of the prepare.
        let stream = recorder.replay_stream(pid);
        let mut next_index = recorder.entry(pid).map(|e| e.read_floor).unwrap_or(0);
        for (idx, msg) in stream {
            let rep = protocol::Replay {
                dst: pid,
                read_seq: idx,
                msg,
            };
            out.push(MgrCmd::SendKernel {
                node: pid.node,
                body: encode_ctl(codes::REPLAY, &rep),
            });
            self.stats.replayed.inc();
            next_index = idx + 1;
        }
        let mut e = Encoder::new();
        e.u32(codes::PREPARE_FINISH);
        pid.encode(&mut e);
        out.push(MgrCmd::SendKernel {
            node: pid.node,
            body: e.finish(),
        });
        job.phase = Phase::Preparing { next_index };
        out
    }

    /// Handles a PREPARE_FINISH_REPLY: replays stragglers published since
    /// the first pass, then commits.
    pub fn on_prepare_reply(
        &mut self,
        _now: SimTime,
        recorder: &mut Recorder,
        pid: ProcessId,
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        let Some(job) = self.jobs.get_mut(&pid) else {
            return out;
        };
        let Phase::Preparing { next_index } = job.phase else {
            return out;
        };
        for (idx, msg) in recorder.replay_stream(pid) {
            if idx < next_index {
                continue;
            }
            let rep = protocol::Replay {
                dst: pid,
                read_seq: idx,
                msg,
            };
            out.push(MgrCmd::SendKernel {
                node: pid.node,
                body: encode_ctl(codes::REPLAY, &rep),
            });
            self.stats.replayed.inc();
        }
        let mut e = Encoder::new();
        e.u32(codes::COMMIT_FINISH);
        pid.encode(&mut e);
        out.push(MgrCmd::SendKernel {
            node: pid.node,
            body: e.finish(),
        });
        self.jobs.remove(&pid);
        recorder.set_recovering(pid, false);
        self.stats.completed.inc();
        out.push(MgrCmd::RecoveryDone { pid });
        out
    }

    /// Handles a §3.3.2 crash notice from a kernel.
    pub fn on_crash_notice(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        pid: ProcessId,
    ) -> Vec<MgrCmd> {
        // A crash of a recovering process is the §3.5 recursive case:
        // terminate the old job and start over.
        if self.jobs.remove(&pid).is_some() {
            self.stats.recursive.inc();
        }
        self.start_recovery(now, recorder, pid)
    }

    /// Declines a restart this manager proposed (another recorder of
    /// higher priority is responsible, §6.3). The watchdog keeps pinging;
    /// if the node stays dead — say the responsible recorder failed during
    /// recovery — the timeout fires again and responsibility is
    /// re-evaluated, which is exactly §6.3's periodic re-query.
    pub fn cancel_restart(&mut self, node: NodeId) {
        if let Some(w) = self.nodes.get_mut(&node) {
            if w.state == NodeState::Restarting {
                w.state = NodeState::Up;
                w.outstanding = None;
                w.incarnation = w.incarnation.saturating_sub(1);
            }
        }
    }

    /// The nodes this manager watches.
    pub fn watched_nodes(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Handles a watchdog ALIVE reply.
    pub fn on_alive_reply(&mut self, node: NodeId, nonce: u64) {
        if let Some(w) = self.nodes.get_mut(&node) {
            if w.outstanding == Some(nonce) {
                w.outstanding = None;
            }
        }
    }

    /// Drives the §3.3.4 recorder-restart protocol: queries every known
    /// process's state.
    pub fn on_recorder_restart(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        known: &[ProcessId],
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        self.jobs.clear();
        for &pid in known {
            let q = protocol::StateQuery {
                pid,
                restart_number: recorder.restart_number(),
            };
            out.push(MgrCmd::SendKernel {
                node: pid.node,
                body: encode_ctl(codes::STATE_QUERY, &q),
            });
        }
        // Re-arm watchdogs.
        let nodes: Vec<NodeId> = self.nodes.keys().copied().collect();
        for node in nodes {
            if let Some(w) = self.nodes.get_mut(&node) {
                w.outstanding = None;
                w.state = NodeState::Up;
            }
            self.timer(
                now + self.cfg.ping_interval,
                TimerKind::Ping(node),
                &mut out,
            );
        }
        out
    }

    /// Queries the state of specific processes without disturbing
    /// in-flight jobs or watchdogs — the targeted variant of
    /// [`RecoveryManager::on_recorder_restart`]. A shard that inherits
    /// responsibility for processes mid-flight (its predecessor died)
    /// uses this to learn which of them need recovery: a Crashed,
    /// Unknown, or Recovering reply triggers [`Self::start_recovery`],
    /// which is safe mid-replay because RECREATE destroys the half-built
    /// process and starts clean.
    pub fn query_states(
        &mut self,
        _now: SimTime,
        recorder: &Recorder,
        pids: &[ProcessId],
    ) -> Vec<MgrCmd> {
        let mut out = Vec::new();
        for &pid in pids {
            let q = protocol::StateQuery {
                pid,
                restart_number: recorder.restart_number(),
            };
            out.push(MgrCmd::SendKernel {
                node: pid.node,
                body: encode_ctl(codes::STATE_QUERY, &q),
            });
        }
        out
    }

    /// Handles a STATE_REPLY during recorder restart (§3.3.4's four
    /// cases; stale restart numbers are ignored per §3.4).
    pub fn on_state_reply(
        &mut self,
        now: SimTime,
        recorder: &mut Recorder,
        reply: &protocol::StateReply,
    ) -> Vec<MgrCmd> {
        if reply.restart_number != recorder.restart_number() {
            self.stats.stale_replies.inc();
            return Vec::new();
        }
        match reply.state {
            ReportedState::Functioning => Vec::new(),
            ReportedState::Crashed | ReportedState::Unknown | ReportedState::Recovering => {
                // Crashed while (or before) we were down — or an orphaned
                // half-recovery; recreate destroys and starts clean.
                self.start_recovery(now, recorder, reply.pid)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::PublishCost;
    use publishing_stable::disk::DiskParams;

    fn recorder() -> Recorder {
        Recorder::new(NodeId(9), DiskParams::default(), 1, PublishCost::MediaLayer)
    }

    fn setup_process(r: &mut Recorder) -> ProcessId {
        let pid = ProcessId::new(1, 1);
        let ios = r.on_created(SimTime::ZERO, pid, "echo", vec![], true);
        for io in ios {
            r.on_disk(io.at, io);
        }
        pid
    }

    #[test]
    fn watchdog_pings_periodically() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let cmds = m.watch_node(SimTime::ZERO, NodeId(1));
        let (at, token) = match &cmds[0] {
            MgrCmd::SetTimer { at, token } => (*at, *token),
            other => panic!("unexpected {other:?}"),
        };
        let cmds = m.on_timer(at, &mut r, token);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, MgrCmd::SendKernelDatagram { node, .. } if *node == NodeId(1))));
        // Both a timeout and the next ping are armed.
        assert_eq!(
            cmds.iter()
                .filter(|c| matches!(c, MgrCmd::SetTimer { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn missed_ping_declares_node_crashed() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let cmds = m.watch_node(SimTime::ZERO, NodeId(1));
        let (at, token) = match &cmds[0] {
            MgrCmd::SetTimer { at, token } => (*at, *token),
            _ => panic!(),
        };
        let cmds = m.on_timer(at, &mut r, token);
        // Find the timeout timer (first SetTimer after the ping).
        let timeout = cmds
            .iter()
            .filter_map(|c| match c {
                MgrCmd::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .next()
            .unwrap();
        let cmds = m.on_timer(timeout.0, &mut r, timeout.1);
        assert!(cmds.iter().any(
            |c| matches!(c, MgrCmd::RestartNode { node, incarnation: 1 } if *node == NodeId(1))
        ));
        assert_eq!(m.stats().node_crashes.get(), 1);
        assert_eq!(m.nodes_restarting(), 1);
    }

    #[test]
    fn alive_reply_cancels_timeout() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let cmds = m.watch_node(SimTime::ZERO, NodeId(1));
        let (at, token) = match &cmds[0] {
            MgrCmd::SetTimer { at, token } => (*at, *token),
            _ => panic!(),
        };
        let cmds = m.on_timer(at, &mut r, token);
        // Extract the ping nonce from the datagram body.
        let nonce = cmds
            .iter()
            .find_map(|c| match c {
                MgrCmd::SendKernelDatagram { body, .. } => {
                    Some(u64::from_le_bytes(body[4..12].try_into().unwrap()))
                }
                _ => None,
            })
            .unwrap();
        m.on_alive_reply(NodeId(1), nonce);
        let timeout = cmds
            .iter()
            .filter_map(|c| match c {
                MgrCmd::SetTimer { at, token } => Some((*at, *token)),
                _ => None,
            })
            .next()
            .unwrap();
        let cmds = m.on_timer(timeout.0, &mut r, timeout.1);
        assert!(!cmds.iter().any(|c| matches!(c, MgrCmd::RestartNode { .. })));
        assert_eq!(m.stats().node_crashes.get(), 0);
    }

    #[test]
    fn process_recovery_walks_phases() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        let cmds = m.start_recovery(SimTime::ZERO, &mut r, pid);
        assert!(matches!(&cmds[0], MgrCmd::SendKernel { node, .. } if *node == pid.node));
        assert!(r.entry(pid).unwrap().recovering);
        assert!(m.busy());

        let cmds = m.on_recreate_reply(SimTime::ZERO, &r, pid, true);
        // No messages published yet: just the prepare.
        assert_eq!(cmds.len(), 1);

        let cmds = m.on_prepare_reply(SimTime::ZERO, &mut r, pid);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, MgrCmd::RecoveryDone { .. })));
        assert!(!m.busy());
        assert!(!r.entry(pid).unwrap().recovering);
        assert_eq!(m.stats().completed.get(), 1);
    }

    #[test]
    fn recovery_replays_published_messages() {
        use publishing_demos::ids::{Channel, MessageId};
        use publishing_demos::message::{Message, MessageHeader};
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        for i in 1..=3u64 {
            let msg = Message {
                header: MessageHeader {
                    id: MessageId {
                        sender: ProcessId::new(2, 1),
                        seq: i,
                    },
                    to: pid,
                    code: 0,
                    channel: Channel(0),
                    deliver_to_kernel: false,
                },
                passed_link: None,
                body: vec![i as u8],
            };
            r.on_data(SimTime::ZERO, &msg);
            let ios = r.on_ack(SimTime::ZERO, msg.header.id, pid);
            for io in ios {
                r.on_disk(io.at, io);
            }
        }
        m.start_recovery(SimTime::ZERO, &mut r, pid);
        let cmds = m.on_recreate_reply(SimTime::ZERO, &r, pid, true);
        // 3 replays + 1 prepare.
        assert_eq!(cmds.len(), 4);
        assert_eq!(m.stats().replayed.get(), 3);
    }

    #[test]
    fn unknown_process_cannot_recover() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let cmds = m.start_recovery(SimTime::ZERO, &mut r, ProcessId::new(5, 5));
        assert!(cmds.is_empty());
    }

    #[test]
    fn recursive_crash_restarts_job() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        m.start_recovery(SimTime::ZERO, &mut r, pid);
        // The recovering process crashes again (§3.5).
        let cmds = m.on_crash_notice(SimTime::ZERO, &mut r, pid);
        assert!(cmds.iter().any(|c| matches!(c, MgrCmd::SendKernel { .. })));
        assert_eq!(m.stats().recursive.get(), 1);
    }

    #[test]
    fn recovery_filter_defers_to_responsible_shard() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        m.set_recovery_filter(Some(std::sync::Arc::new(|_| false)));
        let cmds = m.start_recovery(SimTime::ZERO, &mut r, pid);
        assert!(cmds.is_empty());
        assert!(!m.busy());
        m.set_recovery_filter(None);
        let cmds = m.start_recovery(SimTime::ZERO, &mut r, pid);
        assert!(!cmds.is_empty());
    }

    #[test]
    fn query_states_targets_only_requested_pids() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        let other = ProcessId::new(3, 1);
        let cmds = m.query_states(SimTime::ZERO, &r, &[pid, other]);
        assert_eq!(cmds.len(), 2);
        assert!(cmds.iter().all(|c| matches!(c, MgrCmd::SendKernel { .. })));
        assert!(!m.busy(), "queries alone start no jobs");
    }

    #[test]
    fn quiet_node_restart_skips_announcement() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        m.watch_node(SimTime::ZERO, pid.node);
        m.watch_node(SimTime::ZERO, NodeId(7));
        let cmds = m.on_node_restarted_with(SimTime::ZERO, &mut r, pid.node, 1, false);
        // Recovery of the node's process starts, but no NODE_RESTARTED
        // broadcast goes to node 7: the only kernel send is the RECREATE
        // to the restarted node itself.
        assert!(m.busy());
        assert!(cmds
            .iter()
            .all(|c| matches!(c, MgrCmd::SendKernel { node, .. } if *node == pid.node)));
    }

    #[test]
    fn stale_state_replies_ignored() {
        let mut m = RecoveryManager::new(ManagerConfig::default());
        let mut r = recorder();
        let pid = setup_process(&mut r);
        r.restart(SimTime::from_millis(1)); // restart_number = 1
        let reply = protocol::StateReply {
            pid,
            state: ReportedState::Crashed,
            restart_number: 0,
        };
        let cmds = m.on_state_reply(SimTime::from_millis(2), &mut r, &reply);
        assert!(cmds.is_empty());
        assert_eq!(m.stats().stale_replies.get(), 1);
    }
}
