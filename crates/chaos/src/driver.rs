//! Drives a target world through a fault schedule via the sim
//! scheduler's fault clock.
//!
//! The schedule's instants (discrete faults plus burst boundaries) are
//! loaded into a [`FaultClock`]; the world runs normally and
//! `run_until_or_fault` pauses it exactly at each instant, where the
//! driver injects the discrete faults due and recomputes the medium and
//! disk fault regimes from the bursts active at that time. At the
//! horizon the world is healed (everything still down restarts, all
//! regimes clear) and run through a grace period so the oracle judges
//! recovery, not an ongoing outage.

use crate::oracle::{self, Baseline, OracleOptions};
use crate::scenario::{ChaosWorld, Scenario};
use crate::schedule::{Fault, FaultSchedule};
use publishing_sim::event::FaultClock;
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::SimTime;
use publishing_stable::disk::DiskFaults;

/// Virtual time after the horizon for recovery to converge and the
/// workload to finish before the oracle runs.
pub const GRACE_MS: u64 = 35_000;

/// The medium fault plan implied by the bursts active at `t_ms`.
/// Overlapping bursts of one kind combine by maximum probability.
fn medium_plan_at(s: &FaultSchedule, t_ms: u64) -> FaultPlan {
    let (mut loss, mut corrupt, mut dup) = (0u32, 0u32, 0u32);
    for f in &s.faults {
        match *f {
            Fault::Loss {
                at_ms,
                dur_ms,
                p_pct,
            } if at_ms <= t_ms && t_ms < at_ms + dur_ms => loss = loss.max(p_pct),
            Fault::Corrupt {
                at_ms,
                dur_ms,
                p_pct,
            } if at_ms <= t_ms && t_ms < at_ms + dur_ms => corrupt = corrupt.max(p_pct),
            Fault::Duplicate {
                at_ms,
                dur_ms,
                p_pct,
            } if at_ms <= t_ms && t_ms < at_ms + dur_ms => dup = dup.max(p_pct),
            _ => {}
        }
    }
    FaultPlan::new()
        .with_frame_loss(f64::from(loss) / 100.0)
        .with_frame_corruption(f64::from(corrupt) / 100.0)
        .with_frame_duplication(f64::from(dup) / 100.0)
}

/// The disk fault regime implied by the windows active at `t_ms`.
/// Torn-writes activations are level-triggered: on from their instant
/// until the heal.
fn disk_faults_at(s: &FaultSchedule, t_ms: u64) -> DiskFaults {
    let mut out = DiskFaults {
        seed: s.workload_seed,
        ..DiskFaults::default()
    };
    for f in &s.faults {
        match *f {
            Fault::DiskTransient {
                at_ms,
                dur_ms,
                p_pct,
            } if at_ms <= t_ms && t_ms < at_ms + dur_ms => {
                out.transient_error = out.transient_error.max(f64::from(p_pct) / 100.0);
            }
            Fault::TornWrites { at_ms } if at_ms <= t_ms => out.torn_writes = true,
            _ => {}
        }
    }
    out
}

/// All instants (ms) at which the driver must pause the world: discrete
/// fault times, burst starts, and burst ends, clamped to the horizon.
fn instants(s: &FaultSchedule) -> Vec<u64> {
    let mut ts = Vec::new();
    for f in &s.faults {
        if f.at_ms() <= s.horizon_ms {
            ts.push(f.at_ms());
        }
        if let Some(d) = f.dur_ms() {
            let end = f.at_ms() + d;
            if end <= s.horizon_ms {
                ts.push(end);
            }
        }
    }
    ts.sort_unstable();
    ts.dedup();
    ts
}

/// Replays `schedule` against a fresh `target` (injection, heal, grace
/// period). On return the world is quiescent and ready for the oracle.
pub fn run_schedule(target: &mut dyn ChaosWorld, schedule: &FaultSchedule) {
    let instants = instants(schedule);
    target.set_fault_clock(FaultClock::new(
        instants.iter().map(|&t| SimTime::from_millis(t)).collect(),
    ));
    let horizon = SimTime::from_millis(schedule.horizon_ms);
    while let Some(t) = target.run_until_or_fault(horizon) {
        let t_ms = (t.as_millis_f64()).round() as u64;
        for f in &schedule.faults {
            if f.at_ms() == t_ms {
                target.inject(f);
            }
        }
        target.set_medium_faults(medium_plan_at(schedule, t_ms));
        target.set_disk_faults(disk_faults_at(schedule, t_ms));
    }
    target.heal();
    let end = SimTime::from_millis(schedule.horizon_ms + GRACE_MS);
    let paused = target.run_until_or_fault(end);
    debug_assert!(paused.is_none(), "fault clock drained before the heal");
}

/// A scenario bound to its fault-free baseline: the reusable harness
/// for running many schedules against one workload.
pub struct Engine {
    scenario: Scenario,
    baseline: Baseline,
    opts: OracleOptions,
}

impl Engine {
    /// Builds the engine: runs the fault-free baseline twice and checks
    /// the two runs are bit-identical (the workload itself must be
    /// deterministic before chaos results mean anything).
    ///
    /// # Errors
    ///
    /// Returns a description if the baseline is nondeterministic or the
    /// workload does not complete within the horizon + grace period.
    pub fn new(scenario: Scenario, opts: OracleOptions) -> Result<Engine, String> {
        let empty = FaultSchedule {
            workload_seed: scenario.workload_seed,
            horizon_ms: 0,
            faults: Vec::new(),
        };
        let baseline = {
            let mut t = scenario.build();
            run_schedule(t.as_mut(), &empty);
            Baseline {
                output_fp: t.output_fingerprint(),
                obs_fp: t.obs_fingerprint(),
                client_outputs: t.client_outputs(),
                span_events: t.span_events(),
            }
        };
        let again = {
            let mut t = scenario.build();
            run_schedule(t.as_mut(), &empty);
            t.obs_fingerprint()
        };
        if baseline.obs_fp != again {
            return Err(format!(
                "baseline nondeterminism: obs fingerprints {:#x} vs {again:#x}",
                baseline.obs_fp
            ));
        }
        for (pid, lines) in &baseline.client_outputs {
            if lines.last().map(String::as_str) != Some("done") {
                return Err(format!(
                    "baseline incomplete: client {pid} ended with {:?}",
                    lines.last()
                ));
            }
        }
        Ok(Engine {
            scenario,
            baseline,
            opts,
        })
    }

    /// The fault-free baseline this engine judges schedules against.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Runs one schedule on a fresh world and returns the oracle's
    /// failures (empty = the schedule passed).
    pub fn run(&self, schedule: &FaultSchedule) -> Vec<String> {
        let mut t = self.scenario.build();
        run_schedule(t.as_mut(), schedule);
        oracle::check(t.as_ref(), &self.baseline, &self.opts)
    }

    /// Shrinks a failing schedule to a minimal reproducer (see
    /// [`crate::shrink::shrink`]).
    pub fn shrink(&self, schedule: &FaultSchedule) -> FaultSchedule {
        crate::shrink::shrink(schedule, &mut |s| !self.run(s).is_empty())
    }
}
