//! Observability collection: projecting component instruments into the
//! `publishing-obs` registry/probe model.
//!
//! The world drivers (single-recorder [`crate::World`], sharded tier in
//! `publishing-shard`) own every component and therefore are the only
//! places a whole-run picture can be assembled. This module keeps that
//! assembly in one place so both drivers file the same metric paths and
//! the `obs_report` artifact looks identical regardless of topology.
//!
//! Everything here is read-only over component state and derived from
//! virtual time, so collecting a snapshot never perturbs a simulation:
//! runs with and without observation produce identical fingerprints.

use std::collections::BTreeMap;

use publishing_demos::kernel::Kernel;
use publishing_obs::probe::RecoveryLag;
use publishing_obs::registry::MetricsRegistry;
use publishing_obs::span::SpanLog;
use publishing_sim::time::SimTime;

use crate::manager::RecoveryManager;
use crate::node::RecorderNode;
use crate::recorder::Recorder;

/// Files one kernel's instruments under `node/<n>/...`.
pub fn kernel_metrics(reg: &mut MetricsRegistry, k: &Kernel) {
    let p = format!("node/{}/kernel", k.node().0);
    let s = k.stats();
    reg.counter(format!("{p}/activations"), s.activations.get());
    reg.counter(format!("{p}/msgs_sent"), s.msgs_sent.get());
    reg.counter(format!("{p}/msgs_received"), s.msgs_received.get());
    reg.counter(format!("{p}/dups_dropped"), s.dups_dropped.get());
    reg.counter(
        format!("{p}/read_order_notices"),
        s.read_order_notices.get(),
    );
    reg.counter(format!("{p}/recorder_blocked"), s.recorder_blocked.get());
    reg.counter(format!("{p}/bad_frames"), s.bad_frames.get());
    reg.counter(format!("{p}/creates"), s.creates.get());
    reg.counter(format!("{p}/destroys"), s.destroys.get());
    reg.counter(format!("{p}/checkpoints_taken"), s.checkpoints_taken.get());
    reg.counter(format!("{p}/recovery_deferred"), s.recovery_deferred.get());
    reg.gauge(format!("{p}/cpu_used_ms"), s.cpu_used.as_millis_f64());
    reg.counter(format!("{p}/span_events"), k.spans().total());

    let t = k.transport_stats();
    let p = format!("node/{}/transport", k.node().0);
    reg.counter(format!("{p}/sent"), t.sent.get());
    reg.counter(format!("{p}/datagrams"), t.datagrams.get());
    reg.counter(format!("{p}/retransmits"), t.retransmits.get());
    reg.counter(format!("{p}/delivered"), t.delivered.get());
    reg.counter(format!("{p}/duplicates"), t.duplicates.get());
    reg.counter(format!("{p}/acked"), t.acked.get());
    reg.counter(format!("{p}/stale_epoch"), t.stale_epoch.get());
}

/// Files a recorder node's instruments (recorder, manager, store, disks)
/// under `<prefix>/...`. The sharded tier passes `shard/<i>`, the single
/// recorder world passes `recorder`.
pub fn recorder_node_metrics(
    reg: &mut MetricsRegistry,
    prefix: &str,
    rn: &RecorderNode,
    now: SimTime,
) {
    let rec = rn.recorder();
    let s = rec.stats();
    reg.counter(format!("{prefix}/captured"), s.captured.get());
    reg.counter(format!("{prefix}/published"), s.published.get());
    reg.counter(format!("{prefix}/bytes_published"), s.bytes_published.get());
    reg.counter(format!("{prefix}/duplicates"), s.duplicates.get());
    reg.counter(format!("{prefix}/orphan_acks"), s.orphan_acks.get());
    reg.counter(format!("{prefix}/notices"), s.notices.get());
    reg.counter(format!("{prefix}/checkpoints"), s.checkpoints.get());
    reg.gauge(format!("{prefix}/cpu_used_ms"), s.cpu_used.as_millis_f64());
    reg.counter(
        format!("{prefix}/pending_depth"),
        rec.pending_depth() as u64,
    );
    reg.linear_histogram(&format!("{prefix}/queue_depth"), &s.depth_hist);
    reg.counter(format!("{prefix}/span_events"), rec.spans().total());

    let m = rn.manager().stats();
    reg.counter(
        format!("{prefix}/mgr/process_recoveries"),
        m.process_recoveries.get(),
    );
    reg.counter(format!("{prefix}/mgr/node_crashes"), m.node_crashes.get());
    reg.counter(format!("{prefix}/mgr/replayed"), m.replayed.get());
    reg.counter(format!("{prefix}/mgr/completed"), m.completed.get());
    reg.counter(format!("{prefix}/mgr/recursive"), m.recursive.get());
    reg.counter(format!("{prefix}/mgr/stale_replies"), m.stale_replies.get());

    let store = rec.store();
    let st = store.stats();
    reg.counter(format!("{prefix}/store/appended"), st.appended.get());
    reg.counter(
        format!("{prefix}/store/pages_written"),
        st.pages_written.get(),
    );
    reg.counter(format!("{prefix}/store/pages_freed"), st.pages_freed.get());
    reg.counter(format!("{prefix}/store/compactions"), st.compactions.get());
    reg.counter(
        format!("{prefix}/store/records_compacted"),
        st.records_compacted.get(),
    );
    reg.counter(format!("{prefix}/store/checkpoints"), st.checkpoints.get());
    for i in 0..store.n_disks() {
        let d = store.disk_stats(i);
        let p = format!("{prefix}/disk/{i}");
        reg.counter(format!("{p}/writes"), d.writes.get());
        reg.counter(format!("{p}/reads"), d.reads.get());
        reg.counter(format!("{p}/bytes_written"), d.bytes_written.get());
        reg.counter(format!("{p}/bytes_read"), d.bytes_read.get());
        reg.gauge(format!("{p}/utilization"), d.busy.utilization(now));
        reg.summary(&format!("{p}/response_ms"), &d.response_ms);
    }
}

/// Counts §4.7 suppressions per *sending* process from kernel span logs.
///
/// Suppress events carry the suppressed message's id, so the sender half
/// of the key attributes the suppression to the recovering process whose
/// resends were cut off. Bounded by span-ring retention, which is fine
/// for a point-in-time probe.
pub fn suppressed_by_sender<'a>(logs: impl IntoIterator<Item = &'a SpanLog>) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for log in logs {
        for ev in log.events_in(publishing_obs::span::Stage::Suppress) {
            *out.entry(ev.key.sender).or_insert(0) += 1;
        }
    }
    out
}

/// Builds recovery-lag probes for every process in a recorder's database.
///
/// `suppressed` maps packed sender pid → suppression count (from
/// [`suppressed_by_sender`] over the kernels' span logs).
pub fn recovery_lags(
    rec: &Recorder,
    now: SimTime,
    suppressed: &BTreeMap<u64, u64>,
) -> Vec<RecoveryLag> {
    let mut out = Vec::new();
    for pid in rec.known_pids() {
        let Some(entry) = rec.entry(pid) else {
            continue;
        };
        out.push(RecoveryLag {
            subject: pid.as_u64(),
            recovering: entry.recovering,
            messages_behind: entry.arrivals.len() as u64,
            checkpoint_age_ms: now
                .saturating_since(entry.estimator.checkpoint_at)
                .as_millis_f64(),
            suppressed: suppressed.get(&pid.as_u64()).copied().unwrap_or(0),
            recovery_ms: 0.0,
            critical_path_ms: 0.0,
        });
    }
    out
}

/// Messages the manager's in-flight recoveries still have to replay:
/// the replay streams of every live job, summed. Zero once every job
/// has committed (the job set empties).
pub fn replay_lag(rec: &Recorder, mgr: &RecoveryManager) -> u64 {
    mgr.job_pids()
        .iter()
        .map(|pid| rec.replay_stream(*pid).len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_obs::span::{MsgKey, Stage};

    #[test]
    fn suppression_attribution_is_per_sender() {
        let mut a = SpanLog::default();
        let mut b = SpanLog::default();
        let k1 = MsgKey { sender: 7, seq: 1 };
        let k2 = MsgKey { sender: 9, seq: 4 };
        a.record(SimTime::ZERO, k1, Stage::Suppress, 3, 0);
        a.record(SimTime::ZERO, k1, Stage::Publish, 3, 0); // not a suppression
        b.record(SimTime::ZERO, k1, Stage::Suppress, 5, 1);
        b.record(SimTime::ZERO, k2, Stage::Suppress, 5, 2);
        let by = suppressed_by_sender([&a, &b]);
        assert_eq!(by.get(&7), Some(&2));
        assert_eq!(by.get(&9), Some(&1));
    }
}
