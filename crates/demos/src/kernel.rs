//! The per-node message kernel (§4.2, §4.4).
//!
//! Each processing node runs one kernel. It owns the node's processes,
//! the transport layer, and the kernel-process logic (creation, process
//! control, recovery commands). Publishing hooks are woven in exactly
//! where §4.4 and §4.5 put them:
//!
//! - with publishing on, **every** process-destined message — including
//!   intranode ones — is transmitted on the network so the recorder sees
//!   it, and a frame a required recorder missed is discarded at the link
//!   layer (§4.4.1);
//! - a selective receive that skips the queue head sends the recorder a
//!   read-order notice (§4.4.2);
//! - process-control requests travel as DELIVERTOKERNEL messages
//!   addressed to the *controlled* process, consumed from its queue in
//!   read order and executed by the kernel while it assumes the
//!   controlled process's identity (§4.4.3) — which is what makes control
//!   effects land at the same point in the replayed stream as they did
//!   originally;
//! - process creation/destruction is reported to the recorder (§4.5).
//!
//! The kernel is a sans-IO state machine: the world feeds it frames and
//! timers; it emits [`KernelAction`]s.

use crate::costs::CostModel;
use crate::ids::{Channel, MessageId, NodeId, ProcessId, KERNEL_LOCAL};
use crate::link::Link;
use crate::message::{Message, MessageHeader};
use crate::process::{Process, ProcessImage, RunState};
use crate::program::Effect;
use crate::program::{Ctx, Received};
use crate::protocol::{self, codes};
use crate::registry::{ProgramRegistry, UnknownProgram};
use crate::transport::{TAction, Transport, TransportConfig, Wire};
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_obs::span::{SpanLog, Stage};
use publishing_sim::codec::{Decode, Encode, Encoder};
use publishing_sim::ledger::{LevelGauge, Timeline};
use publishing_sim::stats::Counter;
use publishing_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Encodes a control payload with its leading code tag.
pub fn encode_ctl<T: Encode>(code: u32, payload: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(code);
    payload.encode(&mut e);
    e.finish()
}

/// Splits a control body into its code and remaining payload bytes.
pub fn decode_ctl(body: &[u8]) -> Option<(u32, &[u8])> {
    if body.len() < 4 {
        return None;
    }
    let code = u32::from_le_bytes(body[..4].try_into().expect("len checked"));
    Some((code, &body[4..]))
}

/// An action the kernel asks the world to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelAction {
    /// Put a frame on the medium.
    Transmit(Frame),
    /// Call [`Kernel::on_timer`] with `token` at `at`.
    SetTimer {
        /// Callback time.
        at: SimTime,
        /// Token to hand back.
        token: u64,
    },
    /// Externally visible output from a process (the test oracle).
    ///
    /// `seq` is the process's output sequence number; it is part of the
    /// checkpointed state, so a recovering process regenerates identical
    /// sequence numbers and consoles can deduplicate replayed output.
    Output {
        /// Producing process.
        pid: ProcessId,
        /// Per-process output sequence, from 1.
        seq: u64,
        /// Output bytes.
        bytes: Vec<u8>,
    },
}

/// Counters a kernel maintains.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// Total CPU time charged (the `Get_Run_Time` of Figure 5.6).
    pub cpu_used: SimDuration,
    /// Program activations run.
    pub activations: Counter,
    /// Process-destined messages sent.
    pub msgs_sent: Counter,
    /// Process-destined messages accepted.
    pub msgs_received: Counter,
    /// Duplicates dropped at the process watermark.
    pub dups_dropped: Counter,
    /// Read-order notices sent (§4.4.2).
    pub read_order_notices: Counter,
    /// Frames discarded because a required recorder missed them.
    pub recorder_blocked: Counter,
    /// Frames discarded with bad checksums.
    pub bad_frames: Counter,
    /// Processes created.
    pub creates: Counter,
    /// Processes destroyed.
    pub destroys: Counter,
    /// Checkpoints captured.
    pub checkpoints_taken: Counter,
    /// Live messages discarded or held during recovery.
    pub recovery_deferred: Counter,
}

#[derive(Debug)]
enum TimerKind {
    Transport(u64),
    Done(u64),
    Dispatch,
}

enum DoneWork {
    App { effects: Vec<Effect>, stop: bool },
    Control(Message),
}

struct DoneRec {
    local: u32,
    epoch: u32,
    cost: SimDuration,
    work: DoneWork,
}

/// The per-node message kernel.
pub struct Kernel {
    node: NodeId,
    registry: ProgramRegistry,
    costs: CostModel,
    publishing: bool,
    recorders: Vec<NodeId>,
    procs: BTreeMap<u32, Process>,
    proc_epochs: BTreeMap<u32, u32>,
    next_local: u32,
    next_epoch: u32,
    transport: Transport,
    kernel_seq: u64,
    cpu_busy_until: SimTime,
    active: Option<u32>,
    run_queue: VecDeque<u32>,
    on_run_queue: BTreeMap<u32, bool>,
    pending_checkpoints: Vec<u32>,
    timers: HashMap<u64, TimerKind>,
    dones: HashMap<u64, DoneRec>,
    next_token: u64,
    next_done: u64,
    route_overrides: BTreeMap<ProcessId, NodeId>,
    dispatch_armed: bool,
    up: bool,
    stats: KernelStats,
    spans: SpanLog,
    proto_cpu: Timeline,
    prog_cpu: Timeline,
    run_gauge: LevelGauge,
}

impl Kernel {
    /// Creates a kernel for `node`.
    pub fn new(
        node: NodeId,
        registry: ProgramRegistry,
        costs: CostModel,
        transport: TransportConfig,
        publishing: bool,
    ) -> Self {
        Kernel {
            node,
            registry,
            costs,
            publishing,
            recorders: Vec::new(),
            procs: BTreeMap::new(),
            proc_epochs: BTreeMap::new(),
            next_local: KERNEL_LOCAL + 1,
            next_epoch: 0,
            transport: Transport::new(node, transport),
            kernel_seq: 0,
            cpu_busy_until: SimTime::ZERO,
            active: None,
            run_queue: VecDeque::new(),
            on_run_queue: BTreeMap::new(),
            pending_checkpoints: Vec::new(),
            timers: HashMap::new(),
            dones: HashMap::new(),
            next_token: 0,
            next_done: 0,
            route_overrides: BTreeMap::new(),
            dispatch_armed: false,
            up: true,
            stats: KernelStats::default(),
            spans: SpanLog::default(),
            proto_cpu: Timeline::new(),
            prog_cpu: Timeline::new(),
            run_gauge: LevelGauge::new(),
        }
    }

    /// Returns this kernel's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Returns the station this node answers to (station ids mirror node
    /// ids throughout the workspace).
    pub fn station(&self) -> StationId {
        StationId(self.node.0)
    }

    /// Points publishing notices at the recorder's node (replacing any
    /// previous set).
    pub fn set_recorder(&mut self, recorder: NodeId) {
        self.recorders = vec![recorder];
    }

    /// Adds a recorder node; with multiple recorders (§6.3), notices,
    /// deposits, and crash reports go to all of them.
    pub fn add_recorder(&mut self, recorder: NodeId) {
        if !self.recorders.contains(&recorder) {
            self.recorders.push(recorder);
        }
    }

    /// Returns whether publishing hooks are active.
    pub fn publishing(&self) -> bool {
        self.publishing
    }

    /// Returns the kernel's counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Returns the kernel's message-lifecycle span log. Span events
    /// survive node crashes — the log models an external observer, not
    /// state on the machine — which is what lets tests compare a replayed
    /// read prefix against the pre-crash one.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Re-bounds the kernel's span ring (0 = fingerprint-only mode;
    /// spans never influence behavior, so output fingerprints are
    /// unchanged — the `obs_overhead` bench asserts exactly that).
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.spans.set_capacity(capacity);
    }

    /// Returns the transport's counters.
    pub fn transport_stats(&self) -> &crate::transport::TransportStats {
        self.transport.stats()
    }

    /// Busy timeline of this node's *protocol* CPU: the serially
    /// occupying network send/receive charges of [`CostModel`].
    pub fn cpu_proto_timeline(&self) -> &Timeline {
        &self.proto_cpu
    }

    /// Busy timeline of this node's *program* CPU: process activations
    /// (activation base plus modeled compute).
    pub fn cpu_prog_timeline(&self) -> &Timeline {
        &self.prog_cpu
    }

    /// Occupancy gauge over the dispatcher's run queue — processes ready
    /// but waiting for the CPU.
    pub fn run_queue_gauge(&self) -> &LevelGauge {
        &self.run_gauge
    }

    /// Per-destination guaranteed-transport channel meters (sender side).
    pub fn channel_meters(
        &self,
    ) -> &std::collections::BTreeMap<NodeId, crate::transport::ChannelMeter> {
        self.transport.channel_meters()
    }

    /// Returns this node's transport incarnation.
    pub fn incarnation(&self) -> u32 {
        self.transport.incarnation()
    }

    /// Returns `true` while the node is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Looks up a process by local id.
    pub fn process(&self, local: u32) -> Option<&Process> {
        self.procs.get(&local)
    }

    /// Iterates the node's processes.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }

    /// Overrides routing for a process recovered on a different node
    /// (§3.3.3's migration case).
    pub fn set_route_override(&mut self, pid: ProcessId, node: NodeId) {
        self.route_overrides.insert(pid, node);
    }

    fn route(&self, pid: ProcessId) -> NodeId {
        self.route_overrides.get(&pid).copied().unwrap_or(pid.node)
    }

    fn recorder_kernels(&self) -> Vec<ProcessId> {
        self.recorders
            .iter()
            .map(|r| ProcessId::kernel_of(*r))
            .collect()
    }

    fn new_timer(&mut self, kind: TimerKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        token
    }

    fn charge(&mut self, d: SimDuration) {
        self.stats.cpu_used += d;
    }

    /// Charges CPU that also occupies the processor serially (network
    /// protocol processing), delaying subsequent dispatch — this is what
    /// makes Figure 5.7's real time track its CPU time.
    fn charge_busy(&mut self, now: SimTime, d: SimDuration) {
        self.stats.cpu_used += d;
        let start = self.cpu_busy_until.max(now);
        self.cpu_busy_until = start + d;
        self.proto_cpu.add_busy(start, self.cpu_busy_until);
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    fn next_kernel_id(&mut self) -> MessageId {
        self.kernel_seq += 1;
        // Partition the kernel endpoint's sequence space by incarnation so
        // it stays monotone across node restarts.
        let seq = ((self.transport.incarnation() as u64) << 40) | self.kernel_seq;
        MessageId {
            sender: ProcessId::kernel_of(self.node),
            seq,
        }
    }

    /// Sends a control payload from this node's kernel endpoint.
    fn kernel_send(
        &mut self,
        now: SimTime,
        to: ProcessId,
        code: u32,
        body: Vec<u8>,
        passed: Option<Link>,
        out: &mut Vec<KernelAction>,
    ) {
        let id = self.next_kernel_id();
        let header = MessageHeader {
            id,
            to,
            code,
            channel: Channel::DEFAULT,
            deliver_to_kernel: false,
        };
        let msg = Message {
            header,
            passed_link: passed,
            body,
        };
        self.route_and_send(now, msg, out);
    }

    /// Sends a control payload from the kernel endpoint over a link
    /// (assumed to carry the right destination; code from the link).
    fn kernel_send_over(
        &mut self,
        now: SimTime,
        link: Link,
        body: Vec<u8>,
        passed: Option<Link>,
        out: &mut Vec<KernelAction>,
    ) {
        let id = self.next_kernel_id();
        let header = MessageHeader {
            id,
            to: link.dest,
            code: link.code,
            channel: link.channel,
            deliver_to_kernel: link.deliver_to_kernel,
        };
        let msg = Message {
            header,
            passed_link: passed,
            body,
        };
        self.route_and_send(now, msg, out);
    }

    /// Sends a message *as* process `local` (program sends and §4.4.3
    /// kernel-as-identity control sends share this path, and the
    /// process's sequence counter).
    fn send_as(
        &mut self,
        now: SimTime,
        local: u32,
        link: Link,
        body: Vec<u8>,
        passed: Option<Link>,
        out: &mut Vec<KernelAction>,
    ) {
        let Some(proc) = self.procs.get_mut(&local) else {
            return;
        };
        let seq = proc.next_seq();
        let id = MessageId {
            sender: proc.pid,
            seq,
        };
        // §4.7: a recovering process's regenerated messages already known
        // delivered are suppressed, not retransmitted.
        if let Some(book) = &proc.recovery {
            if let Some(&watermark) = book.suppress.get(&link.dest) {
                if seq <= watermark {
                    self.spans.record(
                        now,
                        id.into(),
                        Stage::Suppress,
                        link.dest.as_u64(),
                        watermark,
                    );
                    return;
                }
            }
        }
        let header = MessageHeader {
            id,
            to: link.dest,
            code: link.code,
            channel: link.channel,
            deliver_to_kernel: link.deliver_to_kernel,
        };
        let msg = Message {
            header,
            passed_link: passed,
            body,
        };
        self.route_and_send(now, msg, out);
    }

    fn route_and_send(&mut self, now: SimTime, msg: Message, out: &mut Vec<KernelAction>) {
        let dst_node = self.route(msg.header.to);
        self.stats.msgs_sent.inc();
        // Kernel-to-kernel control traffic is never published; only
        // process-destined messages get lifecycle spans.
        if !msg.header.to.is_kernel() {
            self.spans.record(
                now,
                msg.header.id.into(),
                Stage::Publish,
                msg.header.to.as_u64(),
                msg.body.len() as u64,
            );
        }
        if !self.publishing && dst_node == self.node {
            // Non-published fast path: direct intranode delivery.
            self.charge_busy(now, self.costs.local_delivery);
            self.accept_message(now, msg, out);
            return;
        }
        // Published (or remote) path: onto the wire via the transport.
        self.charge_busy(now, self.costs.send_cost(msg.wire_len()));
        let actions = self.transport.send_guaranteed(now, dst_node, msg);
        self.apply_transport(now, actions, out);
    }

    fn apply_transport(
        &mut self,
        now: SimTime,
        actions: Vec<TAction>,
        out: &mut Vec<KernelAction>,
    ) {
        for a in actions {
            match a {
                TAction::Transmit { dst_node, payload } => {
                    let frame = Frame::new(
                        self.station(),
                        Destination::Station(StationId(dst_node.0)),
                        payload,
                    );
                    out.push(KernelAction::Transmit(frame));
                }
                TAction::Deliver(msg) => self.deliver_up(now, msg, out),
                TAction::SetTimer { at, token } => {
                    let t = self.new_timer(TimerKind::Transport(token));
                    out.push(KernelAction::SetTimer { at, token: t });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Receiving
    // ------------------------------------------------------------------

    /// Handles a frame delivered to this station by the medium.
    pub fn on_frame(
        &mut self,
        now: SimTime,
        frame: &Frame,
        recorder_ok: bool,
    ) -> Vec<KernelAction> {
        let mut out = Vec::new();
        if !self.up || !frame.dst.accepts(self.station()) {
            return out;
        }
        // Link layer (§4.3.3): only error-free messages go up.
        if !frame.is_intact() {
            self.stats.bad_frames.inc();
            return out;
        }
        // §4.4.1: a message the recorder missed must not be used.
        if self.publishing && !recorder_ok {
            self.stats.recorder_blocked.inc();
            return out;
        }
        let Ok(wire) = Wire::decode_all(&frame.payload) else {
            self.stats.bad_frames.inc();
            return out;
        };
        let actions = self.transport.on_wire(now, wire);
        self.apply_transport(now, actions, &mut out);
        self.try_dispatch(now, &mut out);
        out
    }

    fn deliver_up(&mut self, now: SimTime, msg: Message, out: &mut Vec<KernelAction>) {
        // Receive-side network protocol CPU: charged only for messages
        // that actually crossed the wire (this path), never for the
        // non-published local fast path.
        self.charge_busy(now, self.costs.receive_cost(msg.wire_len()));
        self.accept_message(now, msg, out);
    }

    fn accept_message(&mut self, now: SimTime, msg: Message, out: &mut Vec<KernelAction>) {
        let to = msg.header.to;
        if self.route(to) != self.node {
            // Routed here by an out-of-date sender; forward along.
            let actions = self.transport.send_guaranteed(now, self.route(to), msg);
            self.apply_transport(now, actions, out);
            return;
        }
        if to.is_kernel() {
            self.kernel_ctl(now, msg, out);
            return;
        }
        let Some(proc) = self.procs.get_mut(&to.local) else {
            return;
        };
        match proc.run {
            RunState::Crashed => {}
            RunState::Recovering => {
                // Live traffic during recovery is published by the recorder
                // and replayed later; it must not short-circuit the replay
                // stream (§3.2.1). During the finish window it is held and
                // merged instead.
                self.stats.recovery_deferred.inc();
                let book = proc.recovery.as_mut().expect("recovering has book");
                if book.holding {
                    book.side_buffer.push(msg);
                }
            }
            RunState::Ready | RunState::Waiting => {
                if proc.is_duplicate(msg.header.id) {
                    self.stats.dups_dropped.inc();
                    return;
                }
                proc.queue.enqueue(msg);
                self.stats.msgs_received.inc();
                self.wake(to.local);
            }
        }
    }

    fn wake(&mut self, local: u32) {
        let Some(proc) = self.procs.get(&local) else {
            return;
        };
        if matches!(proc.run, RunState::Crashed) {
            return;
        }
        let runnable = !proc.started || proc.queue.has_deliverable(proc.recv_mask);
        let queued = self.on_run_queue.get(&local).copied().unwrap_or(false);
        if runnable && !queued {
            self.run_queue.push_back(local);
            self.on_run_queue.insert(local, true);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch and activations
    // ------------------------------------------------------------------

    fn try_dispatch(&mut self, now: SimTime, out: &mut Vec<KernelAction>) {
        self.run_gauge.set(now, self.run_queue.len() as u64);
        if !self.up || self.active.is_some() {
            return;
        }
        if now < self.cpu_busy_until {
            // The CPU is mid protocol processing; retry when it frees.
            if !self.dispatch_armed && !self.run_queue.is_empty() {
                self.dispatch_armed = true;
                let token = self.new_timer(TimerKind::Dispatch);
                out.push(KernelAction::SetTimer {
                    at: self.cpu_busy_until,
                    token,
                });
            }
            return;
        }
        while let Some(local) = self.run_queue.pop_front() {
            self.on_run_queue.insert(local, false);
            let Some(proc) = self.procs.get(&local) else {
                continue;
            };
            if matches!(proc.run, RunState::Crashed) {
                continue;
            }
            if !proc.started {
                self.run_start(now, local, out);
                return;
            }
            if !proc.queue.has_deliverable(proc.recv_mask) {
                continue;
            }
            self.run_activation(now, local, out);
            self.run_gauge.set(now, self.run_queue.len() as u64);
            return;
        }
        self.run_gauge.set(now, self.run_queue.len() as u64);
    }

    fn schedule_done(
        &mut self,
        now: SimTime,
        local: u32,
        cost: SimDuration,
        work: DoneWork,
        out: &mut Vec<KernelAction>,
    ) {
        let epoch = self.proc_epochs.get(&local).copied().unwrap_or(0);
        let done_id = self.next_done;
        self.next_done += 1;
        self.dones.insert(
            done_id,
            DoneRec {
                local,
                epoch,
                cost,
                work,
            },
        );
        self.active = Some(local);
        self.cpu_busy_until = now + cost;
        self.prog_cpu.add_busy(now, self.cpu_busy_until);
        let token = self.new_timer(TimerKind::Done(done_id));
        out.push(KernelAction::SetTimer {
            at: now + cost,
            token,
        });
    }

    fn run_start(&mut self, now: SimTime, local: u32, out: &mut Vec<KernelAction>) {
        let Some(mut proc) = self.procs.remove(&local) else {
            return;
        };
        proc.started = true;
        let pid = proc.pid;
        let mut effects = Vec::new();
        let mut stop = false;
        let mut compute = SimDuration::ZERO;
        {
            let Process {
                program,
                links,
                recv_mask,
                ..
            } = &mut proc;
            let mut ctx = Ctx::new(pid, links, &mut effects, recv_mask, &mut stop, &mut compute);
            program.on_start(&mut ctx);
        }
        self.stats.activations.inc();
        self.procs.insert(local, proc);
        let cost = self.costs.activation_base + compute;
        self.schedule_done(now, local, cost, DoneWork::App { effects, stop }, out);
    }

    fn run_activation(&mut self, now: SimTime, local: u32, out: &mut Vec<KernelAction>) {
        let Some(mut proc) = self.procs.remove(&local) else {
            return;
        };
        let pid = proc.pid;
        let Some(read) = proc.queue.receive_for_process(proc.recv_mask) else {
            self.procs.insert(local, proc);
            return;
        };
        let read_index = proc.read_count;
        proc.read_count += 1;
        proc.note_read(read.message.header.id);
        self.spans.record(
            now,
            read.message.header.id.into(),
            Stage::Deliver,
            pid.as_u64(),
            read_index,
        );
        if let Some(book) = proc.recovery.as_mut() {
            book.replayed.insert(read.message.header.id);
        }
        // §4.4.2: tell the recorder when channels reordered the reads.
        if let Some(head_id) = read.skipped_head {
            if self.publishing && !self.recorders.is_empty() {
                let notice = protocol::ReadOrderNotice {
                    pid,
                    read_index,
                    read_id: read.message.header.id,
                    head_id,
                };
                self.stats.read_order_notices.inc();
                let body = encode_ctl(codes::READ_ORDER_NOTICE, &notice);
                // Re-insert the process before sending from the kernel.
                self.procs.insert(local, proc);
                for rk in self.recorder_kernels() {
                    self.kernel_send(now, rk, codes::READ_ORDER_NOTICE, body.clone(), None, out);
                }
                proc = self.procs.remove(&local).expect("just inserted");
            }
        }
        let mut msg = read.message;
        if msg.header.deliver_to_kernel {
            // Process-control: the kernel executes it (§4.4.3).
            self.procs.insert(local, proc);
            let cost = self.costs.kernel_call;
            self.schedule_done(now, local, cost, DoneWork::Control(msg), out);
            return;
        }
        let link = msg.passed_link.take().map(|l| proc.links.insert(l));
        let received = Received {
            code: msg.header.code,
            channel: msg.header.channel,
            body: msg.body,
            link,
        };
        let mut effects = Vec::new();
        let mut stop = false;
        let mut compute = SimDuration::ZERO;
        {
            let Process {
                program,
                links,
                recv_mask,
                ..
            } = &mut proc;
            let mut ctx = Ctx::new(pid, links, &mut effects, recv_mask, &mut stop, &mut compute);
            program.on_message(&mut ctx, received);
        }
        self.stats.activations.inc();
        proc.cpu_since_checkpoint += compute;
        self.procs.insert(local, proc);
        let cost = self.costs.activation_base + compute;
        self.schedule_done(now, local, cost, DoneWork::App { effects, stop }, out);
    }

    /// Handles a kernel timer.
    pub fn on_timer(&mut self, now: SimTime, token: u64) -> Vec<KernelAction> {
        let mut out = Vec::new();
        if !self.up {
            return out;
        }
        match self.timers.remove(&token) {
            None => {}
            Some(TimerKind::Transport(t)) => {
                let actions = self.transport.timer(now, t);
                self.apply_transport(now, actions, &mut out);
            }
            Some(TimerKind::Done(id)) => {
                if let Some(rec) = self.dones.remove(&id) {
                    self.finish_activation(now, rec, &mut out);
                }
            }
            Some(TimerKind::Dispatch) => {
                self.dispatch_armed = false;
            }
        }
        self.try_dispatch(now, &mut out);
        out
    }

    fn finish_activation(&mut self, now: SimTime, rec: DoneRec, out: &mut Vec<KernelAction>) {
        self.active = None;
        self.charge(rec.cost);
        let local = rec.local;
        let current_epoch = self.proc_epochs.get(&local).copied().unwrap_or(u32::MAX);
        if current_epoch != rec.epoch || !self.procs.contains_key(&local) {
            // The process crashed or was recreated mid-activation; its
            // effects die with it (§1.1.2 rounds faults up to crashes).
            return;
        }
        match rec.work {
            DoneWork::App { effects, stop } => {
                let pid = self.procs[&local].pid;
                for effect in effects {
                    match effect {
                        Effect::Send { link, body, passed } => {
                            self.send_as(now, local, link, body, passed, out);
                        }
                        Effect::Output(bytes) => {
                            let proc = self.procs.get_mut(&local).expect("checked");
                            proc.outputs_emitted += 1;
                            let seq = proc.outputs_emitted;
                            out.push(KernelAction::Output { pid, seq, bytes });
                        }
                    }
                }
                if stop {
                    self.destroy_process(now, local, out);
                }
            }
            DoneWork::Control(msg) => self.apply_control(now, local, msg, out),
        }
        // Deferred checkpoint requests run between activations.
        if let Some(pos) = self.pending_checkpoints.iter().position(|&l| l == local) {
            self.pending_checkpoints.remove(pos);
            self.capture_checkpoint(now, local, out);
        }
        if self.procs.contains_key(&local) {
            self.wake(local);
        }
    }

    // ------------------------------------------------------------------
    // Process control (§4.4.3)
    // ------------------------------------------------------------------

    fn apply_control(
        &mut self,
        now: SimTime,
        local: u32,
        msg: Message,
        out: &mut Vec<KernelAction>,
    ) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        let requester = msg.header.from();
        match code {
            codes::MOVELINK_GIVE => {
                // Figure 4.5: ask the giver (the requester) for the link,
                // speaking as the controlled process.
                let Ok(give) = protocol::MoveLinkGive::decode_all(payload) else {
                    return;
                };
                let fetch = protocol::MoveLinkFetch {
                    link_id: give.link_id,
                };
                let body = encode_ctl(codes::MOVELINK_FETCH, &fetch);
                self.send_as(now, local, Link::control(requester, 0), body, None, out);
            }
            codes::MOVELINK_FETCH => {
                // We are the giver's kernel: extract the link and send it
                // to the requester (the destination process).
                let Ok(fetch) = protocol::MoveLinkFetch::decode_all(payload) else {
                    return;
                };
                let link = self
                    .procs
                    .get_mut(&local)
                    .and_then(|p| p.links.remove(crate::ids::LinkId(fetch.link_id)));
                let Some(link) = link else { return };
                let mut e = Encoder::new();
                e.u32(codes::MOVELINK_PUT);
                self.send_as(
                    now,
                    local,
                    Link::control(requester, 0),
                    e.finish(),
                    Some(link),
                    out,
                );
            }
            codes::MOVELINK_PUT => {
                // Install the passed link into the controlled process and
                // tell its program where it landed (an ordinary, published
                // message — so replay re-learns the same id).
                let Some(passed) = msg.passed_link else {
                    return;
                };
                let Some(proc) = self.procs.get_mut(&local) else {
                    return;
                };
                let id = proc.links.insert(passed);
                let pid = proc.pid;
                let done_link = Link::to(pid, Channel::DEFAULT, 0);
                let mut e = Encoder::new();
                e.u32(codes::MOVELINK_DONE).u32(id.0);
                self.send_as(now, local, done_link, e.finish(), None, out);
            }
            codes::STOP_PROCESS => {
                self.destroy_process(now, local, out);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Kernel endpoint (kernel process) requests
    // ------------------------------------------------------------------

    fn kernel_ctl(&mut self, now: SimTime, msg: Message, out: &mut Vec<KernelAction>) {
        let Some((code, payload)) = decode_ctl(&msg.body) else {
            return;
        };
        let requester = msg.header.from();
        self.charge(self.costs.kernel_call);
        match code {
            codes::CREATE_PROCESS => {
                let Ok(req) = protocol::CreateProcess::decode_all(payload) else {
                    return;
                };
                let created =
                    self.spawn_inner(now, &req.program_name, req.initial_links, true, out);
                if let Some(reply_to) = req.reply_to {
                    let reply = protocol::CreateReply { pid: created };
                    let body = encode_ctl(codes::CREATE_REPLY, &reply);
                    let control = created.map(|pid| Link::control(pid, 0));
                    self.kernel_send_over(now, reply_to, body, control, out);
                }
            }
            codes::ARE_YOU_ALIVE => {
                let nonce = payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("len checked")))
                    .unwrap_or(0);
                let reply = protocol::AliveReply {
                    node: self.node,
                    incarnation: self.transport.incarnation(),
                    nonce,
                };
                let body = encode_ctl(codes::ALIVE_REPLY, &reply);
                // Watchdog traffic is unguaranteed (§4.3.3: "dated or
                // statistical information … often out of date if
                // retransmission were necessary").
                let id = self.next_kernel_id();
                let header = MessageHeader {
                    id,
                    to: requester,
                    code: codes::ALIVE_REPLY,
                    channel: Channel::DEFAULT,
                    deliver_to_kernel: false,
                };
                let msg = Message {
                    header,
                    passed_link: None,
                    body,
                };
                let actions = self.transport.send_datagram(now, requester.node, msg);
                self.apply_transport(now, actions, out);
            }
            codes::RECREATE => {
                let Ok(req) = protocol::Recreate::decode_all(payload) else {
                    return;
                };
                let ok = self.recreate(now, &req);
                let mut e = Encoder::new();
                e.u32(codes::RECREATE_REPLY);
                req.pid.encode(&mut e);
                e.bool(ok);
                self.kernel_send(now, requester, codes::RECREATE_REPLY, e.finish(), None, out);
            }
            codes::REPLAY => {
                let Ok(rep) = protocol::Replay::decode_all(payload) else {
                    return;
                };
                self.inject_replay(now, rep, out);
            }
            codes::PREPARE_FINISH => {
                let Ok(pid) = ProcessId::decode_all(payload) else {
                    return;
                };
                if let Some(proc) = self.procs.get_mut(&pid.local) {
                    if let Some(book) = proc.recovery.as_mut() {
                        book.holding = true;
                    }
                }
                let mut e = Encoder::new();
                e.u32(codes::PREPARE_FINISH_REPLY);
                pid.encode(&mut e);
                self.kernel_send(
                    now,
                    requester,
                    codes::PREPARE_FINISH_REPLY,
                    e.finish(),
                    None,
                    out,
                );
            }
            codes::COMMIT_FINISH => {
                let Ok(pid) = ProcessId::decode_all(payload) else {
                    return;
                };
                self.commit_finish(now, pid, out);
            }
            codes::STATE_QUERY => {
                let Ok(q) = protocol::StateQuery::decode_all(payload) else {
                    return;
                };
                let state = match self.procs.get(&q.pid.local) {
                    _ if self.route(q.pid) != self.node || q.pid.node != self.node => {
                        protocol::ReportedState::Unknown
                    }
                    None => protocol::ReportedState::Unknown,
                    Some(p) => match p.run {
                        RunState::Crashed => protocol::ReportedState::Crashed,
                        RunState::Recovering => protocol::ReportedState::Recovering,
                        _ => protocol::ReportedState::Functioning,
                    },
                };
                let reply = protocol::StateReply {
                    pid: q.pid,
                    state,
                    restart_number: q.restart_number,
                };
                let body = encode_ctl(codes::STATE_REPLY, &reply);
                self.kernel_send(now, requester, codes::STATE_REPLY, body, None, out);
            }
            codes::NODE_RESTARTED => {
                let Ok(n) = protocol::NodeRestarted::decode_all(payload) else {
                    return;
                };
                let actions = self.transport.reset_peer(now, n.node, n.incarnation);
                self.apply_transport(now, actions, out);
            }
            codes::REQUEST_CHECKPOINT => {
                let Ok(pid) = ProcessId::decode_all(payload) else {
                    return;
                };
                if self.active == Some(pid.local) {
                    self.pending_checkpoints.push(pid.local);
                } else {
                    self.capture_checkpoint(now, pid.local, out);
                }
            }
            _ => {}
        }
        self.try_dispatch(now, out);
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Creates a process directly (boot-time and test path; running
    /// systems go through the §4.2.3 process-control chain, which ends
    /// here too).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownProgram`] if the image name is not registered.
    pub fn spawn(
        &mut self,
        now: SimTime,
        program_name: &str,
        initial_links: Vec<Link>,
    ) -> Result<(ProcessId, Vec<KernelAction>), UnknownProgram> {
        self.spawn_opts(now, program_name, initial_links, true)
    }

    /// Like [`Kernel::spawn`] but with `recoverable = false`: the §6.6.1
    /// optimization for processes nobody would want restarted (status
    /// commands, backups). The recorder publishes nothing for them and a
    /// crash is final.
    pub fn spawn_unrecoverable(
        &mut self,
        now: SimTime,
        program_name: &str,
        initial_links: Vec<Link>,
    ) -> Result<(ProcessId, Vec<KernelAction>), UnknownProgram> {
        self.spawn_opts(now, program_name, initial_links, false)
    }

    fn spawn_opts(
        &mut self,
        now: SimTime,
        program_name: &str,
        initial_links: Vec<Link>,
        recoverable: bool,
    ) -> Result<(ProcessId, Vec<KernelAction>), UnknownProgram> {
        if !self.registry.contains(program_name) {
            return Err(UnknownProgram(program_name.to_string()));
        }
        let mut out = Vec::new();
        let pid = self
            .spawn_inner(now, program_name, initial_links, recoverable, &mut out)
            .expect("registry checked");
        self.try_dispatch(now, &mut out);
        Ok((pid, out))
    }

    fn spawn_inner(
        &mut self,
        now: SimTime,
        program_name: &str,
        initial_links: Vec<Link>,
        recoverable: bool,
        out: &mut Vec<KernelAction>,
    ) -> Option<ProcessId> {
        let program = self.registry.instantiate(program_name).ok()?;
        let local = self.next_local;
        self.next_local += 1;
        let pid = ProcessId {
            node: self.node,
            local,
        };
        let mut proc = Process::new(pid, program_name, program);
        for link in &initial_links {
            proc.links.insert(*link);
        }
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.proc_epochs.insert(local, epoch);
        self.procs.insert(local, proc);
        self.stats.creates.inc();
        self.charge(self.costs.process_create);
        // §4.5: "send a message whenever a process is created".
        if self.publishing {
            let notice = protocol::CreatedNotice {
                pid,
                program_name: program_name.to_string(),
                initial_links,
                recoverable,
            };
            let body = encode_ctl(codes::PROCESS_CREATED_NOTICE, &notice);
            for rk in self.recorder_kernels() {
                self.kernel_send(
                    now,
                    rk,
                    codes::PROCESS_CREATED_NOTICE,
                    body.clone(),
                    None,
                    out,
                );
            }
        }
        self.wake(local);
        Some(pid)
    }

    fn destroy_process(&mut self, now: SimTime, local: u32, out: &mut Vec<KernelAction>) {
        let Some(proc) = self.procs.remove(&local) else {
            return;
        };
        let pid = proc.pid;
        self.proc_epochs.remove(&local);
        self.stats.destroys.inc();
        self.charge(self.costs.process_create);
        if self.publishing {
            let notice = protocol::CreatedNotice {
                pid,
                program_name: proc.program_name,
                initial_links: Vec::new(),
                recoverable: true,
            };
            let body = encode_ctl(codes::PROCESS_DESTROYED_NOTICE, &notice);
            for rk in self.recorder_kernels() {
                self.kernel_send(
                    now,
                    rk,
                    codes::PROCESS_DESTROYED_NOTICE,
                    body.clone(),
                    None,
                    out,
                );
            }
        }
    }

    /// Crashes one process (a detected, non-deterministic fault §3.3.2):
    /// it halts and a crash notice goes to the recovery manager.
    pub fn crash_process(&mut self, now: SimTime, local: u32, reason: &str) -> Vec<KernelAction> {
        let mut out = Vec::new();
        let Some(proc) = self.procs.get_mut(&local) else {
            return out;
        };
        proc.run = RunState::Crashed;
        proc.queue.clear();
        let pid = proc.pid;
        // Invalidate any in-flight activation.
        let epoch = self.proc_epochs.entry(local).or_insert(0);
        *epoch = epoch.wrapping_add(1);
        if self.active == Some(local) {
            self.active = None;
        }
        let notice = protocol::CrashNotice {
            pid,
            reason: reason.to_string(),
        };
        let body = encode_ctl(codes::PROCESS_CRASH_NOTICE, &notice);
        for rk in self.recorder_kernels() {
            self.kernel_send(
                now,
                rk,
                codes::PROCESS_CRASH_NOTICE,
                body.clone(),
                None,
                &mut out,
            );
        }
        out
    }

    /// Takes the whole node down (§1.1.2: the crash of all its processes).
    pub fn crash_node(&mut self) {
        self.up = false;
        self.procs.clear();
        self.proc_epochs.clear();
        self.run_queue.clear();
        self.on_run_queue.clear();
        self.dones.clear();
        self.timers.clear();
        self.pending_checkpoints.clear();
        self.active = None;
        self.dispatch_armed = false;
    }

    /// Restarts a crashed node with a fresh transport incarnation.
    pub fn restart_node(&mut self, now: SimTime, incarnation: u32) {
        self.up = true;
        self.cpu_busy_until = now;
        self.transport.restart(incarnation);
        self.next_local = self.next_local.max(KERNEL_LOCAL + 1);
    }

    fn recreate(&mut self, _now: SimTime, req: &protocol::Recreate) -> bool {
        // Processes are recovered on their home node (or on a spare that
        // assumed the whole node's identity, §4.6); a foreign pid would
        // collide with the local id space.
        if req.pid.node != self.node {
            return false;
        }
        let local = req.pid.local;
        // §4.7: "If the process already exists, it is destroyed."
        self.procs.remove(&local);
        let Ok(fresh) = self.registry.instantiate(&req.program_name) else {
            return false;
        };
        let mut proc = match &req.checkpoint {
            Some(bytes) => {
                let Ok(image) = ProcessImage::decode_all(bytes) else {
                    return false;
                };
                let Ok(p) = Process::restore_from(req.pid, &image, fresh) else {
                    return false;
                };
                p
            }
            None => {
                // Restarting from the initial state: reinstall the
                // creation-time links (§3.3.1's "other parameters").
                let mut p = Process::new(req.pid, req.program_name.clone(), fresh);
                for link in &req.initial_links {
                    p.links.insert(*link);
                }
                p.run = RunState::Recovering;
                p
            }
        };
        let mut book = proc.recovery.take().unwrap_or_default();
        book.suppress = req.suppress.iter().copied().collect();
        proc.recovery = Some(book);
        proc.run = RunState::Recovering;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.proc_epochs.insert(local, epoch);
        self.next_local = self.next_local.max(local + 1);
        self.procs.insert(local, proc);
        self.charge(self.costs.process_create);
        self.wake(local);
        true
    }

    fn inject_replay(&mut self, now: SimTime, rep: protocol::Replay, out: &mut Vec<KernelAction>) {
        let Some(proc) = self.procs.get_mut(&rep.dst.local) else {
            return;
        };
        if !matches!(proc.run, RunState::Recovering) {
            return;
        }
        // A replayed message that is below the restored read watermark was
        // consumed before the checkpoint (a stale re-sequencing after the
        // recorder itself lost state); skip it rather than deliver twice.
        if proc.is_duplicate(rep.msg.header.id) {
            self.stats.dups_dropped.inc();
            return;
        }
        self.spans.record(
            now,
            rep.msg.header.id.into(),
            Stage::Replay,
            rep.dst.as_u64(),
            rep.read_seq,
        );
        proc.queue.enqueue(rep.msg);
        self.wake(rep.dst.local);
        self.try_dispatch(now, out);
    }

    fn commit_finish(&mut self, now: SimTime, pid: ProcessId, out: &mut Vec<KernelAction>) {
        let Some(proc) = self.procs.get_mut(&pid.local) else {
            return;
        };
        let Some(book) = proc.recovery.take() else {
            return;
        };
        // Merge held live traffic, dropping anything the replay already
        // covered.
        for msg in book.side_buffer {
            if book.replayed.contains(&msg.header.id) || proc.is_duplicate(msg.header.id) {
                self.stats.dups_dropped.inc();
                continue;
            }
            proc.queue.enqueue(msg);
        }
        proc.run = RunState::Waiting;
        self.wake(pid.local);
        self.try_dispatch(now, out);
    }

    fn capture_checkpoint(&mut self, now: SimTime, local: u32, out: &mut Vec<KernelAction>) {
        let Some(proc) = self.procs.get_mut(&local) else {
            return;
        };
        if matches!(proc.run, RunState::Crashed | RunState::Recovering) {
            return;
        }
        let image = proc.image();
        let read_count = proc.read_count;
        let pid = proc.pid;
        proc.cpu_since_checkpoint = SimDuration::ZERO;
        let bytes = image.encode_to_vec();
        self.charge(self.costs.checkpoint_cost(bytes.len()));
        self.stats.checkpoints_taken.inc();
        let deposit = protocol::CheckpointDeposit {
            pid,
            read_count,
            image: bytes,
        };
        let body = encode_ctl(codes::CHECKPOINT_DEPOSIT, &deposit);
        for rk in self.recorder_kernels() {
            self.kernel_send(now, rk, codes::CHECKPOINT_DEPOSIT, body.clone(), None, out);
        }
    }

    /// Requests a checkpoint of a local process (world/test entry point;
    /// the recorder's policy normally sends [`codes::REQUEST_CHECKPOINT`]).
    pub fn checkpoint_now(&mut self, now: SimTime, local: u32) -> Vec<KernelAction> {
        let mut out = Vec::new();
        if self.active == Some(local) {
            self.pending_checkpoints.push(local);
        } else {
            self.capture_checkpoint(now, local, &mut out);
        }
        out
    }
}

impl core::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Kernel")
            .field("node", &self.node)
            .field("up", &self.up)
            .field("procs", &self.procs.len())
            .field("publishing", &self.publishing)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::EchoServer;
    use crate::registry::ProgramRegistry;
    use crate::transport::TransportConfig;

    fn kernel(publishing: bool) -> Kernel {
        let mut reg = ProgramRegistry::new();
        reg.register("echo", || Box::new(EchoServer::default()));
        Kernel::new(
            NodeId(1),
            reg,
            CostModel::zero(),
            TransportConfig::default(),
            publishing,
        )
    }

    #[test]
    fn ctl_codec_roundtrip() {
        let notice = protocol::CrashNotice {
            pid: ProcessId::new(1, 2),
            reason: "x".into(),
        };
        let body = encode_ctl(codes::PROCESS_CRASH_NOTICE, &notice);
        let (code, payload) = decode_ctl(&body).unwrap();
        assert_eq!(code, codes::PROCESS_CRASH_NOTICE);
        assert_eq!(protocol::CrashNotice::decode_all(payload).unwrap(), notice);
        assert!(decode_ctl(&[1, 2]).is_none(), "short bodies rejected");
    }

    #[test]
    fn spawn_assigns_fresh_local_ids() {
        let mut k = kernel(false);
        let (a, _) = k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        let (b, _) = k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.node, NodeId(1));
        assert!(a.local >= 1, "local 0 is the kernel endpoint");
        assert!(k.process(a.local).is_some());
    }

    #[test]
    fn unknown_program_rejected() {
        let mut k = kernel(false);
        assert!(k.spawn(SimTime::ZERO, "ghost", vec![]).is_err());
    }

    #[test]
    fn publishing_spawn_emits_created_notice() {
        let mut k = kernel(true);
        k.set_recorder(NodeId(9));
        let (_, actions) = k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        let transmits = actions
            .iter()
            .filter(|a| matches!(a, KernelAction::Transmit(_)))
            .count();
        assert!(transmits >= 1, "created notice must go on the wire");
    }

    #[test]
    fn non_publishing_spawn_is_silent() {
        let mut k = kernel(false);
        k.set_recorder(NodeId(9));
        let (_, actions) = k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        assert!(actions
            .iter()
            .all(|a| !matches!(a, KernelAction::Transmit(_))));
    }

    #[test]
    fn crash_marks_process_and_notifies_manager() {
        let mut k = kernel(true);
        k.set_recorder(NodeId(9));
        let (pid, _) = k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        let sent_before = k.transport_stats().sent.get();
        let actions = k.crash_process(SimTime::ZERO, pid.local, "test");
        assert_eq!(k.process(pid.local).unwrap().run, RunState::Crashed);
        // The crash notice was handed to the transport (it may queue
        // behind the unacked creation notice under stop-and-wait).
        assert_eq!(k.transport_stats().sent.get(), sent_before + 1);
        let _ = actions;
    }

    #[test]
    fn node_crash_wipes_processes_and_restart_bumps_incarnation() {
        let mut k = kernel(false);
        k.spawn(SimTime::ZERO, "echo", vec![]).unwrap();
        assert_eq!(k.processes().count(), 1);
        k.crash_node();
        assert!(!k.is_up());
        assert_eq!(k.processes().count(), 0);
        k.restart_node(SimTime::from_millis(5), 1);
        assert!(k.is_up());
        assert_eq!(k.incarnation(), 1);
    }

    #[test]
    fn frames_for_other_stations_are_ignored() {
        let mut k = kernel(true);
        let frame = Frame::new(
            StationId(7),
            Destination::Station(StationId(3)), // not us
            vec![1, 2, 3],
        );
        assert!(k.on_frame(SimTime::ZERO, &frame, true).is_empty());
    }

    #[test]
    fn recorder_blocked_frames_are_dropped() {
        let mut k = kernel(true);
        let frame = Frame::new(StationId(7), Destination::Station(StationId(1)), vec![1]);
        let out = k.on_frame(SimTime::ZERO, &frame, false);
        assert!(out.is_empty());
        assert_eq!(k.stats().recorder_blocked.get(), 1);
    }

    #[test]
    fn corrupt_frames_are_dropped_at_link_layer() {
        let mut k = kernel(false);
        let mut frame = Frame::new(StationId(7), Destination::Station(StationId(1)), vec![1]);
        frame.corrupt_in_flight();
        let out = k.on_frame(SimTime::ZERO, &frame, true);
        assert!(out.is_empty());
        assert_eq!(k.stats().bad_frames.get(), 1);
    }
}
