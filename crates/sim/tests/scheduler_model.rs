//! Model-based property test: the event scheduler against a reference
//! implementation (a sorted map with explicit FIFO tie-breaking).

use proptest::prelude::*;
use publishing_sim::event::{EventId, Scheduler};
use publishing_sim::time::SimTime;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta_ns` with payload = op index.
    Schedule(u64),
    /// Cancel the k-th oldest still-live event (if any).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Schedule),
        (0usize..8).prop_map(Op::Cancel),
        Just(Op::Pop),
        Just(Op::Pop), // bias toward popping so queues drain
    ]
}

proptest! {
    #[test]
    fn scheduler_matches_reference(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut sched: Scheduler<usize> = Scheduler::new();
        // Reference: (time, insertion counter) → payload.
        let mut model: BTreeMap<(SimTime, u64), usize> = BTreeMap::new();
        let mut live: Vec<((SimTime, u64), EventId)> = Vec::new();
        let mut counter = 0u64;

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Schedule(delta) => {
                    let at = SimTime::from_nanos(sched.now().as_nanos() + delta);
                    let id = sched.schedule_at(at, i);
                    model.insert((at, counter), i);
                    live.push(((at, counter), id));
                    counter += 1;
                }
                Op::Cancel(k) => {
                    if !live.is_empty() {
                        let k = k % live.len();
                        let (key, id) = live.remove(k);
                        prop_assert!(sched.cancel(id));
                        model.remove(&key);
                        // Double cancel must fail.
                        prop_assert!(!sched.cancel(id));
                    }
                }
                Op::Pop => {
                    let expected = model.iter().next().map(|(k, v)| (*k, *v));
                    match (expected, sched.pop()) {
                        (None, None) => {}
                        (Some(((at, key_ctr), payload)), Some((t, got))) => {
                            prop_assert_eq!(t, at);
                            prop_assert_eq!(got, payload);
                            model.remove(&(at, key_ctr));
                            live.retain(|(k, _)| *k != (at, key_ctr));
                        }
                        (e, g) => {
                            prop_assert!(false, "model {:?} vs sched {:?}", e, g.map(|x| x.0));
                        }
                    }
                }
            }
            prop_assert_eq!(sched.pending(), model.len());
        }
    }
}
