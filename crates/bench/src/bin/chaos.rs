//! Chaos gate: seeded fault schedules against the single, sharded, and
//! quorum recorder topologies, with automatic shrinking of any failure
//! to a replayable minimal reproducer.
//!
//! Usage: `chaos [--seed N] [--schedules K] [--smoke] [--schedule S]`
//!
//! - `--seed N` — base seed for schedule generation (default 1);
//! - `--schedules K` — schedules per topology (default 25);
//! - `--smoke` — small CI run (5 schedules per topology);
//! - `--schedule S` — replay one schedule literal (as printed for a
//!   minimized reproducer) instead of generating; runs on the single
//!   world unless the literal contains sharded or replica faults.
//!
//! Exit status is non-zero if any schedule fails its oracle; the
//! failing schedule is shrunk first and the minimal reproducer printed
//! as a `--schedule` literal.

use publishing_chaos::driver::Engine;
use publishing_chaos::oracle::OracleOptions;
use publishing_chaos::scenario::{Scenario, Topology, NODES, REPLICAS, SHARDS};
use publishing_chaos::schedule::{self, ChaosConfig, Fault, FaultSchedule};

fn usage() -> ! {
    eprintln!("usage: chaos [--seed N] [--schedules K] [--smoke] [--schedule S]");
    std::process::exit(2);
}

fn run_suite(topology: Topology, seed: u64, schedules: u64) -> Result<(), String> {
    let name = match topology {
        Topology::Single => "single",
        Topology::Sharded => "sharded",
        Topology::Quorum => "quorum",
    };
    let eng = Engine::new(Scenario::new(topology, seed), OracleOptions::default())
        .map_err(|e| format!("[{name}] baseline: {e}"))?;
    for k in 0..schedules {
        let sched = schedule::generate(&ChaosConfig {
            seed: seed.wrapping_mul(1000).wrapping_add(k),
            nodes: NODES,
            shards: match topology {
                Topology::Sharded => SHARDS,
                _ => 0,
            },
            replicas: match topology {
                Topology::Quorum => REPLICAS,
                _ => 0,
            },
            procs: 4,
            horizon_ms: 1500,
            max_faults: 7,
        });
        let failures = eng.run(&sched);
        if failures.is_empty() {
            println!("[{name}] schedule {k}: ok ({} faults)", sched.faults.len());
            continue;
        }
        println!("[{name}] schedule {k}: FAILED");
        for f in &failures {
            println!("  - {f}");
        }
        println!("[{name}] shrinking...");
        let min = eng.shrink(&sched);
        return Err(format!(
            "[{name}] minimal reproducer ({} faults), replay with:\n  \
             chaos --schedule '{min}'",
            min.faults.len()
        ));
    }
    println!("[{name}] {schedules} schedules passed");
    Ok(())
}

fn replay(lit: &str) -> Result<(), String> {
    let sched: FaultSchedule = lit.parse()?;
    let quorum = sched
        .faults
        .iter()
        .any(|f| matches!(f, Fault::CrashReplica { .. } | Fault::RestartReplica { .. }));
    let sharded = sched.faults.iter().any(|f| {
        matches!(f, Fault::AddShard { .. })
            || matches!(f, Fault::CrashRecorder { shard, .. } | Fault::RestartRecorder { shard, .. } if *shard > 0)
    });
    let topology = if quorum {
        Topology::Quorum
    } else if sharded {
        Topology::Sharded
    } else {
        Topology::Single
    };
    let eng = Engine::new(
        Scenario::new(topology, sched.workload_seed),
        OracleOptions::default(),
    )
    .map_err(|e| format!("baseline: {e}"))?;
    let failures = eng.run(&sched);
    if failures.is_empty() {
        println!("schedule passed: {sched}");
        Ok(())
    } else {
        println!("schedule FAILED: {sched}");
        for f in &failures {
            println!("  - {f}");
        }
        Err("schedule failed its oracle".into())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut schedules = 25u64;
    let mut literal = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => usage(),
            },
            "--schedules" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => schedules = v,
                _ => usage(),
            },
            "--smoke" => schedules = 5,
            "--schedule" => match it.next() {
                Some(v) => literal = Some(v.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let result = if let Some(lit) = literal {
        replay(&lit)
    } else {
        run_suite(Topology::Single, seed, schedules)
            .and_then(|()| run_suite(Topology::Sharded, seed, schedules))
            .and_then(|()| run_suite(Topology::Quorum, seed, schedules))
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
