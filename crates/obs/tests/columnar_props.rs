//! Property tests pinning the columnar span store against the retained
//! row-oriented reference implementation ([`RowSpanLog`]).
//!
//! Identical record streams must yield identical fingerprints, totals,
//! retained event sequences, and happens-before DAGs — across packed
//! rows, escaped rows (overflowing deltas and fields), eviction under
//! a tiny capacity, and mid-run capacity shrinks. Sampling must thin
//! retention without touching the fingerprint.

use proptest::prelude::*;
use publishing_obs::causal::CausalGraph;
use publishing_obs::span::{MsgKey, SpanEvent, SpanLog, Stage};
use publishing_obs::RowSpanLog;
use publishing_sim::time::SimTime;

const STAGES: [Stage; 8] = [
    Stage::Publish,
    Stage::Capture,
    Stage::Sequence,
    Stage::Deliver,
    Stage::Replay,
    Stage::Suppress,
    Stage::Checkpoint,
    Stage::Elect,
];

/// One record call: a time delta (occasionally enormous, to force a
/// timestamp escape) plus identity/payload fields (occasionally wide,
/// to force field escapes).
#[derive(Debug, Clone)]
struct Rec {
    dt: u64,
    sender: u64,
    kseq: u64,
    stage: Stage,
    subject: u64,
    aux: u64,
}

fn arb_rec() -> impl Strategy<Value = Rec> {
    let dt = prop_oneof![
        4 => 0u64..5_000_000,
        1 => (u32::MAX as u64)..(u32::MAX as u64 + 10_000),
    ];
    let kseq = prop_oneof![4 => 0u64..500, 1 => (1u64 << 40)..(1u64 << 40) + 8];
    let aux = prop_oneof![4 => 0u64..1000, 1 => (1u64 << 20)..(1u64 << 20) + 8];
    (dt, 0u64..6, kseq, 0usize..STAGES.len(), 0u64..6, aux).prop_map(
        |(dt, sender, kseq, stage, subject, aux)| Rec {
            dt,
            sender: (sender + 1) << 32,
            kseq,
            stage: STAGES[stage],
            subject: (subject + 1) << 32,
            aux,
        },
    )
}

/// Replays `recs` into both implementations at the same capacity.
fn record_both(recs: &[Rec], capacity: usize) -> (RowSpanLog, SpanLog) {
    let mut row = RowSpanLog::new(capacity);
    let mut col = SpanLog::new(capacity);
    let mut at = 0u64;
    for r in recs {
        at += r.dt;
        let t = SimTime::from_nanos(at);
        let key = MsgKey {
            sender: r.sender,
            seq: r.kseq,
        };
        row.record(t, key, r.stage, r.subject, r.aux);
        col.record(t, key, r.stage, r.subject, r.aux);
    }
    (row, col)
}

fn events_of_row(row: &RowSpanLog) -> Vec<SpanEvent> {
    row.events().collect()
}

fn events_of_col(col: &SpanLog) -> Vec<SpanEvent> {
    col.events().collect()
}

proptest! {
    /// Full-capacity equivalence: every event is retained, so the two
    /// stores must agree on everything, including the causal DAG built
    /// from their streams.
    #[test]
    fn columnar_matches_row_reference(recs in proptest::collection::vec(arb_rec(), 1..300)) {
        let (row, col) = record_both(&recs, recs.len());
        prop_assert_eq!(row.total(), col.total());
        prop_assert_eq!(row.fingerprint(), col.fingerprint());
        prop_assert_eq!(col.dropped(), 0);
        let re = events_of_row(&row);
        let ce = events_of_col(&col);
        prop_assert_eq!(&re, &ce);
        let rg = CausalGraph::from_event_lists(&[re]);
        let cg = CausalGraph::from_event_lists(&[ce]);
        prop_assert_eq!(rg.to_dot(), cg.to_dot());
    }

    /// Eviction under pressure: a tiny ring forces most rows (packed
    /// and escaped alike) out the front; the retained tails must still
    /// be identical and fingerprints still cover the evicted prefix.
    #[test]
    fn eviction_keeps_the_stores_in_lockstep(
        recs in proptest::collection::vec(arb_rec(), 1..300),
        capacity in 1usize..24,
    ) {
        let (row, col) = record_both(&recs, capacity);
        prop_assert_eq!(row.fingerprint(), col.fingerprint());
        prop_assert_eq!(col.retained(), recs.len().min(capacity));
        prop_assert_eq!(col.dropped(), recs.len().saturating_sub(capacity) as u64);
        prop_assert_eq!(events_of_row(&row), events_of_col(&col));
    }

    /// A mid-run capacity shrink drops the oldest rows only, and the
    /// fingerprint (hashed at record time) never notices.
    #[test]
    fn capacity_shrink_drops_oldest_rows_only(
        recs in proptest::collection::vec(arb_rec(), 2..200),
        keep in 1usize..16,
    ) {
        let (row, mut col) = record_both(&recs, recs.len());
        let before = col.fingerprint();
        col.set_capacity(keep);
        prop_assert_eq!(col.fingerprint(), before);
        let tail: Vec<SpanEvent> = events_of_row(&row)
            .into_iter()
            .skip(recs.len().saturating_sub(keep))
            .collect();
        prop_assert_eq!(events_of_col(&col), tail);
    }

    /// Per-stage sampling thins retention to every n-th event of the
    /// stage but leaves the fingerprint identical to the keep-all log.
    #[test]
    fn sampling_thins_retention_without_touching_the_fingerprint(
        recs in proptest::collection::vec(arb_rec(), 1..200),
        n in 2u32..6,
    ) {
        let (_, full) = record_both(&recs, recs.len());
        let mut sampled = SpanLog::new(recs.len());
        sampled.set_sampling(Stage::Publish, n);
        let mut at = 0u64;
        for r in &recs {
            at += r.dt;
            sampled.record(
                SimTime::from_nanos(at),
                MsgKey { sender: r.sender, seq: r.kseq },
                r.stage,
                r.subject,
                r.aux,
            );
        }
        prop_assert_eq!(sampled.fingerprint(), full.fingerprint());
        prop_assert_eq!(sampled.total(), full.total());
        let expected: Vec<SpanEvent> = events_of_col(&full)
            .into_iter()
            .enumerate()
            .scan(0u32, |publishes, (_, e)| {
                if e.stage == Stage::Publish {
                    let keep = *publishes % n == 0;
                    *publishes += 1;
                    Some(keep.then_some(e))
                } else {
                    Some(Some(e))
                }
            })
            .flatten()
            .collect();
        prop_assert_eq!(events_of_col(&sampled), expected);
    }
}
