//! The perf observatory for the PUBLISHING reproduction.
//!
//! Three pieces, all machine-readable and all deterministic over virtual
//! time:
//!
//! - [`snapshot`]: the versioned `BENCH_<n>.json` artifact — one entry
//!   per canonical bench scenario, with the deterministic virtual-time
//!   metrics (events/sec, stage-latency percentiles, peak queue depths,
//!   bytes published, fingerprints) kept separate from noisy host-side
//!   readings (wall clock, allocations), so two runs at the same seed
//!   compare byte-for-byte on the virtual half;
//! - [`compare`]: the regression comparator that diffs two snapshots
//!   under per-metric direction and noise thresholds, and backs the CI
//!   perf gate (nonzero exit on regression);
//! - [`forensics`]: the regression-forensics engine that explains a
//!   comparator verdict — ranked suspects per violated rule from the
//!   snapshot's attribution families (profile categories, ledger busy
//!   times, critical-path stages, what-if knees, allocation meters) and
//!   a report-level differ over histograms, ledgers, and aligned
//!   critical paths;
//! - [`trace`]: the Chrome-trace (Perfetto JSON) exporter that turns
//!   `publishing-obs` lifecycle span logs into per-component timelines
//!   with per-message lifecycle slices, loadable in `chrome://tracing`
//!   or <https://ui.perfetto.dev>;
//! - [`alloc`]: a counting global allocator the `bench` binary installs
//!   to report allocation counts/bytes per scenario (host-side metrics);
//! - [`json`]: the minimal JSON document model the other modules parse
//!   and emit with (the workspace has no serde — artifacts round-trip
//!   through this model instead).
//!
//! Dependency discipline: like `publishing-obs`, this crate sits below
//! the world drivers. The `bench` binary (in `publishing-bench`) builds
//! the worlds and hands their reports to this crate's builders.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod compare;
pub mod forensics;
pub mod json;
pub mod snapshot;
pub mod trace;
