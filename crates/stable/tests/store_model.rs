//! Model-based property tests for the stable store: random
//! append/flush/checkpoint/compact/purge sequences, checked against a
//! simple reference map, including full index rebuilds (the recorder-
//! crash path) at arbitrary points.

use proptest::prelude::*;
use publishing_sim::time::SimTime;
use publishing_stable::disk::{DiskFaults, DiskParams};
use publishing_stable::store::{Checkpoint, RecordKey, StableStore, StoreEvent, StoreIo};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Clone)]
enum Op {
    Append { pid: u64, payload_len: usize },
    Flush,
    Checkpoint { pid: u64, consume: u64 },
    Compact,
    Purge { pid: u64 },
    Rebuild,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..4, 1usize..300).prop_map(|(pid, payload_len)| Op::Append { pid, payload_len }),
        1 => Just(Op::Flush),
        1 => (1u64..4, 0u64..6).prop_map(|(pid, consume)| Op::Checkpoint { pid, consume }),
        1 => Just(Op::Compact),
        1 => (1u64..4).prop_map(|pid| Op::Purge { pid }),
        1 => Just(Op::Rebuild),
    ]
}

/// Drains all outstanding IO, including follow-up erases the store
/// starts while completing other IO.
fn drain(store: &mut StableStore, ios: Vec<StoreIo>) {
    let mut queue = ios;
    while let Some(io) = queue.pop() {
        for ev in store.on_disk_complete(io.at, io) {
            if let publishing_stable::store::StoreEvent::FollowUpIo(next) = ev {
                queue.push(next);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_reference(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut store = StableStore::new(DiskParams::default(), 2);
        // Reference: pid → (next_seq, floor, map seq → payload).
        let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
        let mut floor: BTreeMap<u64, u64> = BTreeMap::new();
        let mut data: BTreeMap<u64, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            let now = SimTime::from_millis((i as u64 + 1) * 100);
            match op {
                Op::Append { pid, payload_len } => {
                    let seq = *next_seq.get(&pid).unwrap_or(&0);
                    next_seq.insert(pid, seq + 1);
                    let payload = vec![(seq % 251) as u8; payload_len];
                    data.entry(pid).or_default().insert(seq, payload.clone());
                    let ios = store.append_message(now, RecordKey { pid, seq }, payload);
                    drain(&mut store, ios);
                }
                Op::Flush => {
                    let ios = store.flush(now);
                    drain(&mut store, ios);
                }
                Op::Checkpoint { pid, consume } => {
                    let lo = *floor.get(&pid).unwrap_or(&0);
                    let hi = (*next_seq.get(&pid).unwrap_or(&0)).min(lo + consume);
                    floor.insert(pid, hi);
                    if let Some(map) = data.get_mut(&pid) {
                        map.retain(|&s, _| s >= hi);
                    }
                    let cp = Checkpoint { pid, upto_seq: hi, blob: vec![pid as u8; 64] };
                    let ios = store.write_checkpoint(now, cp);
                    drain(&mut store, ios);
                }
                Op::Compact => {
                    let ios = store.compact_one(now);
                    drain(&mut store, ios);
                }
                Op::Purge { pid } => {
                    data.remove(&pid);
                    next_seq.remove(&pid);
                    floor.remove(&pid);
                    let ios = store.purge_process(now, pid);
                    drain(&mut store, ios);
                }
                Op::Rebuild => {
                    store.rebuild_index();
                }
            }
            // Invariant: surviving messages per pid match the reference.
            for pid in 1u64..4 {
                let expect: Vec<(u64, Vec<u8>)> = data
                    .get(&pid)
                    .map(|m| m.iter().map(|(s, p)| (*s, p.clone())).collect())
                    .unwrap_or_default();
                let got: Vec<(u64, Vec<u8>)> = store
                    .messages_from(pid, 0)
                    .into_iter()
                    .map(|r| (r.key.seq, r.payload))
                    .collect();
                prop_assert_eq!(&got, &expect, "pid {} after op {}", pid, i);
            }
        }

        // Final rebuild must preserve everything once more.
        let before: Vec<_> = (1u64..4).map(|p| store.messages_from(p, 0)).collect();
        store.rebuild_index();
        let after: Vec<_> = (1u64..4).map(|p| store.messages_from(p, 0)).collect();
        prop_assert_eq!(before, after);
    }
}

/// Ops for the crash-interleaving model: IO completions are delivered one
/// at a time (so compactions, flushes, and checkpoints can be caught
/// mid-flight), and a crash drops all undelivered completions, tears
/// in-flight writes (when enabled), and rebuilds the index.
#[derive(Debug, Clone)]
enum ChaosOp {
    Append { pid: u64, payload_len: usize },
    Flush,
    Checkpoint { pid: u64, consume: u64 },
    Compact,
    Deliver,
    Crash,
}

fn arb_chaos_op() -> impl Strategy<Value = ChaosOp> {
    prop_oneof![
        5 => (1u64..4, 1usize..300)
            .prop_map(|(pid, payload_len)| ChaosOp::Append { pid, payload_len }),
        2 => Just(ChaosOp::Flush),
        2 => (1u64..4, 0u64..6).prop_map(|(pid, consume)| ChaosOp::Checkpoint { pid, consume }),
        3 => Just(ChaosOp::Compact),
        5 => Just(ChaosOp::Deliver),
        2 => Just(ChaosOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Crash-during-compaction (and during flush/checkpoint) never loses
    /// a record the store accepted: every appended record whose sequence
    /// is at or above the durable checkpoint floor survives every
    /// crash + rebuild, byte for byte — the recorder acks a publication
    /// to its sender as soon as the store holds it, so a lost record here
    /// would be a broken promise to a sender.
    ///
    /// The same run also checks checkpoint-image round-tripping under
    /// torn writes: `latest_checkpoint` must always return exactly one
    /// blob that was submitted for that process — never a torn prefix,
    /// never a splice of two checkpoints — because the quorum snapshot
    /// path ships these images verbatim to catching-up replicas, and a
    /// replica installing a torn image would import garbage process
    /// state. Blobs are multi-page and pairwise distinct so a splice or
    /// truncation cannot masquerade as a valid image.
    #[test]
    fn crash_during_compaction_loses_no_acked_record(
        ops in proptest::collection::vec(arb_chaos_op(), 1..80),
        torn_writes in any::<bool>(),
        transient in any::<bool>(),
    ) {
        let mut store = StableStore::new(DiskParams::default(), 2);
        store.set_disk_faults(DiskFaults {
            transient_error: if transient { 0.3 } else { 0.0 },
            torn_writes,
            seed: 42,
        });
        // Undelivered IO completions, FIFO. A crash drops them all: they
        // belong to the crashed host.
        let mut outstanding: VecDeque<StoreIo> = VecDeque::new();
        // Reference: pid → seq → payload, pruned at *observed* checkpoint
        // completions only (a checkpoint interrupted by a crash never
        // happened).
        let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
        let mut data: BTreeMap<u64, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        // Every checkpoint image ever submitted, per pid. The store's
        // latest checkpoint must always be one of these, bytes and
        // floor both — whole-image atomicity under torn page writes.
        let mut submitted: BTreeMap<u64, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
        let mut blob_counter = 0u64;
        let mut now = SimTime::ZERO;
        let mut crashes = 0u32;
        for (i, op) in ops.into_iter().enumerate() {
            now = now.max(SimTime::from_millis((i as u64 + 1) * 50));
            match op {
                ChaosOp::Append { pid, payload_len } => {
                    let seq = *next_seq.get(&pid).unwrap_or(&0);
                    next_seq.insert(pid, seq + 1);
                    let payload = vec![(seq % 251) as u8; payload_len];
                    data.entry(pid).or_default().insert(seq, payload.clone());
                    outstanding.extend(store.append_message(now, RecordKey { pid, seq }, payload));
                }
                ChaosOp::Flush => outstanding.extend(store.flush(now)),
                ChaosOp::Checkpoint { pid, consume } => {
                    // Floor advances only when the checkpoint durably
                    // completes (observed below as CheckpointDurable).
                    let lo = data
                        .get(&pid)
                        .and_then(|m| m.keys().next().copied())
                        .unwrap_or(0);
                    let hi = (*next_seq.get(&pid).unwrap_or(&0)).min(lo + consume);
                    // Multi-page, pairwise-distinct image: a torn
                    // prefix or a splice of two images can never equal
                    // a submitted blob.
                    blob_counter += 1;
                    let len = 200 + ((blob_counter * 977) % 2800) as usize;
                    let blob: Vec<u8> = (0..len)
                        .map(|j| (blob_counter as u8).wrapping_add(j as u8))
                        .collect();
                    submitted
                        .entry(pid)
                        .or_default()
                        .push((hi, blob.clone()));
                    let cp = Checkpoint { pid, upto_seq: hi, blob };
                    outstanding.extend(store.write_checkpoint(now, cp));
                }
                ChaosOp::Compact => outstanding.extend(store.compact_one(now)),
                ChaosOp::Deliver => {
                    if let Some(io) = outstanding.pop_front() {
                        for ev in store.on_disk_complete(io.at, io) {
                            match ev {
                                StoreEvent::CheckpointDurable { pid, upto_seq } => {
                                    if let Some(m) = data.get_mut(&pid) {
                                        m.retain(|&s, _| s >= upto_seq);
                                    }
                                }
                                StoreEvent::FollowUpIo(next) => outstanding.push_back(next),
                                _ => {}
                            }
                        }
                    }
                }
                ChaosOp::Crash => {
                    crashes += 1;
                    outstanding.clear();
                    store.crash_volatile_state();
                    store.rebuild_index();
                }
            }
            // Invariant: every reference record is present, byte for byte.
            // (The store may hold *more* — e.g. a record whose superseding
            // checkpoint died with the crash — never less.)
            for (&pid, m) in &data {
                let got: BTreeMap<u64, Vec<u8>> = store
                    .messages_from(pid, 0)
                    .into_iter()
                    .map(|r| (r.key.seq, r.payload))
                    .collect();
                for (&seq, payload) in m {
                    prop_assert_eq!(
                        got.get(&seq),
                        Some(payload),
                        "pid {} seq {} lost after op {} (crashes so far: {})",
                        pid, seq, i, crashes
                    );
                }
            }
            // Invariant: the latest checkpoint, if any, is EXACTLY one
            // submitted image — floor and bytes — regardless of crashes
            // and torn in-flight chunk writes.
            for pid in 1u64..4 {
                if let Some(cp) = store.latest_checkpoint(pid) {
                    let known = submitted
                        .get(&pid)
                        .is_some_and(|v| v.iter().any(|(hi, b)| *hi == cp.upto_seq && *b == cp.blob));
                    prop_assert!(
                        known,
                        "pid {}: latest checkpoint (floor {}, {} bytes) is not a \
                         submitted image after op {} (crashes: {})",
                        pid, cp.upto_seq, cp.blob.len(), i, crashes
                    );
                }
            }
        }

        // One final crash + rebuild, whatever was in flight.
        outstanding.clear();
        store.crash_volatile_state();
        store.rebuild_index();
        for (&pid, m) in &data {
            let got: BTreeMap<u64, Vec<u8>> = store
                .messages_from(pid, 0)
                .into_iter()
                .map(|r| (r.key.seq, r.payload))
                .collect();
            for (&seq, payload) in m {
                prop_assert_eq!(got.get(&seq), Some(payload), "pid {} seq {} lost at end", pid, seq);
            }
        }
        for pid in 1u64..4 {
            if let Some(cp) = store.latest_checkpoint(pid) {
                let known = submitted
                    .get(&pid)
                    .is_some_and(|v| v.iter().any(|(hi, b)| *hi == cp.upto_seq && *b == cp.blob));
                prop_assert!(
                    known,
                    "pid {}: surviving checkpoint (floor {}, {} bytes) is torn or spliced",
                    pid, cp.upto_seq, cp.blob.len()
                );
            }
        }
    }
}
