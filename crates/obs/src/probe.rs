//! Derived health probes.
//!
//! A probe is a point-in-time reading computed from a component's
//! existing state and instruments: how far behind a recovering process
//! is, how loaded a recorder shard is, how busy the shared medium is.
//! The world drivers construct probes (they can see every component);
//! this module only defines the shapes, their registry projection, and
//! their text rendering, so the `obs_report` artifact has one format.

use crate::registry::MetricsRegistry;
use publishing_net::lan::LanStats;
use publishing_sim::time::SimTime;

/// Recovery lag for one process the recorder tier knows about.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryLag {
    /// Packed process id.
    pub subject: u64,
    /// Whether a recovery is in progress for this process.
    pub recovering: bool,
    /// Unconsumed published messages that a (re)play would have to feed —
    /// zero right after a durable checkpoint, growing until the next one.
    pub messages_behind: u64,
    /// Virtual time since the last durable checkpoint, in milliseconds.
    pub checkpoint_age_ms: f64,
    /// §4.7 resends suppressed at the delivered watermark so far (as
    /// counted by the sender's kernel).
    pub suppressed: u64,
    /// Measured crash→recovery-complete window for this process, in
    /// milliseconds of virtual time. Zero when it never recovered.
    pub recovery_ms: f64,
    /// Total of the causal critical path attributed across that window
    /// ([`crate::causal::CriticalPath::total`]). Zero when no recovery
    /// happened; otherwise equals `recovery_ms` up to rounding, since
    /// critical-path segments telescope over the measured window.
    pub critical_path_ms: f64,
}

impl RecoveryLag {
    /// Files the probe under `recovery/<pid>/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        let p = format!("recovery/{}", self.subject);
        reg.counter(format!("{p}/messages_behind"), self.messages_behind);
        reg.gauge(format!("{p}/checkpoint_age_ms"), self.checkpoint_age_ms);
        reg.counter(format!("{p}/suppressed"), self.suppressed);
        reg.gauge(
            format!("{p}/recovering"),
            if self.recovering { 1.0 } else { 0.0 },
        );
        if self.recovery_ms > 0.0 {
            reg.gauge(format!("{p}/recovery_ms"), self.recovery_ms);
            reg.gauge(format!("{p}/critical_path_ms"), self.critical_path_ms);
        }
    }

    /// One text line for the run report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "pid {} behind={} ckpt_age={:.3}ms suppressed={} {}",
            self.subject,
            self.messages_behind,
            self.checkpoint_age_ms,
            self.suppressed,
            if self.recovering { "RECOVERING" } else { "ok" }
        );
        if self.recovery_ms > 0.0 {
            s.push_str(&format!(
                " recovered_in={:.3}ms critical_path={:.3}ms",
                self.recovery_ms, self.critical_path_ms
            ));
        }
        s
    }
}

/// Health of one recorder shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Shard index in the tier.
    pub shard: u32,
    /// Whether the shard is up.
    pub live: bool,
    /// Whether the shard is rejoining (restarted, still catching up).
    pub catching_up: bool,
    /// Captured-but-unsequenced messages in the battery-backed buffer.
    pub queue_depth: u64,
    /// Processes in the shard's database.
    pub known_processes: u64,
    /// Recovery jobs this shard's manager is driving right now.
    pub recoveries_in_flight: u64,
    /// Messages the in-flight recoveries still have to replay. Reaches
    /// zero when every job completes.
    pub replay_lag: u64,
    /// Frames whose delivery was gated off because *this* shard, as a
    /// required recorder, failed to capture them intact.
    pub gating_stalls: u64,
    /// Messages this shard has published (sequenced) in total.
    pub published: u64,
}

impl ShardHealth {
    /// Files the probe under `shard/<i>/health/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        let p = format!("shard/{}/health", self.shard);
        reg.gauge(format!("{p}/live"), if self.live { 1.0 } else { 0.0 });
        reg.gauge(
            format!("{p}/catching_up"),
            if self.catching_up { 1.0 } else { 0.0 },
        );
        reg.counter(format!("{p}/queue_depth"), self.queue_depth);
        reg.counter(format!("{p}/known_processes"), self.known_processes);
        reg.counter(
            format!("{p}/recoveries_in_flight"),
            self.recoveries_in_flight,
        );
        reg.counter(format!("{p}/replay_lag"), self.replay_lag);
        reg.counter(format!("{p}/gating_stalls"), self.gating_stalls);
        reg.counter(format!("{p}/published"), self.published);
    }

    /// One text line for the run report.
    pub fn render(&self) -> String {
        format!(
            "shard {} {} queue={} procs={} jobs={} replay_lag={} stalls={} published={}{}",
            self.shard,
            if self.live { "up" } else { "DOWN" },
            self.queue_depth,
            self.known_processes,
            self.recoveries_in_flight,
            self.replay_lag,
            self.gating_stalls,
            self.published,
            if self.catching_up { " CATCHING-UP" } else { "" }
        )
    }
}

/// Utilization and loss picture of the shared broadcast medium.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumHealth {
    /// Busy fraction of the medium over the run window.
    pub utilization: f64,
    /// Frames submitted by stations.
    pub submitted: u64,
    /// Frame deliveries (per receiving station).
    pub delivered: u64,
    /// Collisions observed.
    pub collisions: u64,
    /// Frames dropped by fault injection.
    pub lost: u64,
    /// Frames blocked because a required recorder missed them.
    pub gating_stalls: u64,
    /// Transmissions abandoned after excessive collisions.
    pub aborted: u64,
}

impl MediumHealth {
    /// Reads the probe off a medium's counters at virtual time `now`.
    pub fn from_lan(stats: &LanStats, now: SimTime) -> Self {
        MediumHealth {
            utilization: stats.busy.utilization(now),
            submitted: stats.submitted.get(),
            delivered: stats.delivered.get(),
            collisions: stats.collisions.get(),
            lost: stats.lost.get(),
            gating_stalls: stats.recorder_blocked.get(),
            aborted: stats.aborted.get(),
        }
    }

    /// Files the probe under `medium/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        reg.gauge("medium/utilization", self.utilization);
        reg.counter("medium/submitted", self.submitted);
        reg.counter("medium/delivered", self.delivered);
        reg.counter("medium/collisions", self.collisions);
        reg.counter("medium/lost", self.lost);
        reg.counter("medium/gating_stalls", self.gating_stalls);
        reg.counter("medium/aborted", self.aborted);
    }

    /// One text line for the run report.
    pub fn render(&self) -> String {
        format!(
            "utilization={:.1}% submitted={} delivered={} collisions={} lost={} stalls={} aborted={}",
            self.utilization * 100.0,
            self.submitted,
            self.delivered,
            self.collisions,
            self.lost,
            self.gating_stalls,
            self.aborted
        )
    }
}

/// Consensus picture of one recorder-quorum replica: role, term, and
/// how far its log and state machine trail the group's commit point.
/// `replication_lag` on the leader is the worst follower's log lag —
/// the election-to-replication health signal the quorum observatory
/// charts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuorumHealth {
    /// Replica index within the group.
    pub replica: u32,
    /// Whether the replica's host is up.
    pub live: bool,
    /// Whether the replica currently leads the group.
    pub leader: bool,
    /// Current consensus term.
    pub term: u64,
    /// Elections this replica has started (candidacies).
    pub elections: u64,
    /// Highest committed log index.
    pub commit_index: u64,
    /// Highest log index applied to the recorder.
    pub applied_index: u64,
    /// Entries the slowest follower trails the leader by (leader only;
    /// zero elsewhere).
    pub replication_lag: u64,
    /// Log entries compacted into the snapshot floor.
    pub compacted: u64,
}

impl QuorumHealth {
    /// Files the probe under `quorum/<i>/health/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        let p = format!("quorum/{}/health", self.replica);
        reg.gauge(format!("{p}/live"), if self.live { 1.0 } else { 0.0 });
        reg.gauge(format!("{p}/leader"), if self.leader { 1.0 } else { 0.0 });
        reg.counter(format!("{p}/term"), self.term);
        reg.counter(format!("{p}/elections"), self.elections);
        reg.counter(format!("{p}/commit_index"), self.commit_index);
        reg.counter(format!("{p}/applied_index"), self.applied_index);
        reg.counter(format!("{p}/replication_lag"), self.replication_lag);
        reg.counter(format!("{p}/compacted"), self.compacted);
    }

    /// One text line for the run report.
    pub fn render(&self) -> String {
        format!(
            "replica {} {}{} term={} elections={} commit={} applied={} lag={} compacted={}",
            self.replica,
            if self.live { "up" } else { "DOWN" },
            if self.leader { " LEADER" } else { "" },
            self.term,
            self.elections,
            self.commit_index,
            self.applied_index,
            self.replication_lag,
            self.compacted
        )
    }
}

/// Event-queue picture of the world's discrete-event scheduler: how
/// much work flowed through the queue and how deep it ever got. The
/// high-water mark is the "peak queue depth" the perf observatory
/// snapshots, so saturation shows up even when the snapshot instant is
/// quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerProbe {
    /// Events delivered over the run.
    pub delivered: u64,
    /// Events ever scheduled (fired, cancelled, or pending).
    pub scheduled: u64,
    /// Events still pending at the snapshot instant.
    pub pending: u64,
    /// Largest number of simultaneously pending events ever seen.
    pub peak_pending: u64,
}

impl SchedulerProbe {
    /// Files the probe under `sched/...`.
    pub fn into_registry(&self, reg: &mut MetricsRegistry) {
        reg.counter("sched/delivered", self.delivered);
        reg.counter("sched/scheduled", self.scheduled);
        reg.counter("sched/pending", self.pending);
        reg.counter("sched/peak_pending", self.peak_pending);
    }

    /// One text line for the run report.
    pub fn render(&self) -> String {
        format!(
            "delivered={} scheduled={} pending={} peak_pending={}",
            self.delivered, self.scheduled, self.pending, self.peak_pending
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_probe_registry_paths() {
        let p = SchedulerProbe {
            delivered: 10,
            scheduled: 12,
            pending: 1,
            peak_pending: 5,
        };
        let mut reg = MetricsRegistry::new();
        p.into_registry(&mut reg);
        assert_eq!(reg.counter_value("sched/peak_pending"), Some(5));
        assert!(p.render().contains("peak_pending=5"));
    }

    #[test]
    fn recovery_lag_registry_paths() {
        let lag = RecoveryLag {
            subject: 4294967298, // node 1, local 2
            recovering: true,
            messages_behind: 7,
            checkpoint_age_ms: 12.5,
            suppressed: 3,
            recovery_ms: 0.0,
            critical_path_ms: 0.0,
        };
        let mut reg = MetricsRegistry::new();
        lag.into_registry(&mut reg);
        assert_eq!(
            reg.counter_value("recovery/4294967298/messages_behind"),
            Some(7)
        );
        assert_eq!(reg.gauge_value("recovery/4294967298/recovering"), Some(1.0));
        assert!(lag.render().contains("RECOVERING"));
        // Never-recovered probes file no recovery window gauges.
        assert_eq!(reg.gauge_value("recovery/4294967298/recovery_ms"), None);
        assert!(!lag.render().contains("recovered_in"));
    }

    #[test]
    fn recovery_lag_window_fields_render_and_file() {
        let lag = RecoveryLag {
            subject: 17,
            recovering: false,
            messages_behind: 0,
            checkpoint_age_ms: 1.0,
            suppressed: 2,
            recovery_ms: 42.5,
            critical_path_ms: 42.5,
        };
        let mut reg = MetricsRegistry::new();
        lag.into_registry(&mut reg);
        assert_eq!(reg.gauge_value("recovery/17/recovery_ms"), Some(42.5));
        assert_eq!(reg.gauge_value("recovery/17/critical_path_ms"), Some(42.5));
        assert!(lag.render().contains("recovered_in=42.500ms"));
    }

    #[test]
    fn shard_health_registry_paths() {
        let h = ShardHealth {
            shard: 2,
            live: true,
            catching_up: false,
            queue_depth: 1,
            known_processes: 9,
            recoveries_in_flight: 0,
            replay_lag: 0,
            gating_stalls: 4,
            published: 100,
        };
        let mut reg = MetricsRegistry::new();
        h.into_registry(&mut reg);
        assert_eq!(reg.counter_value("shard/2/health/replay_lag"), Some(0));
        assert_eq!(reg.gauge_value("shard/2/health/live"), Some(1.0));
        assert!(h.render().contains("shard 2 up"));
    }

    #[test]
    fn quorum_health_registry_paths() {
        let h = QuorumHealth {
            replica: 1,
            live: true,
            leader: true,
            term: 3,
            elections: 2,
            commit_index: 40,
            applied_index: 38,
            replication_lag: 5,
            compacted: 16,
        };
        let mut reg = MetricsRegistry::new();
        h.into_registry(&mut reg);
        assert_eq!(reg.counter_value("quorum/1/health/term"), Some(3));
        assert_eq!(
            reg.counter_value("quorum/1/health/replication_lag"),
            Some(5)
        );
        assert_eq!(reg.gauge_value("quorum/1/health/leader"), Some(1.0));
        assert!(h.render().contains("LEADER"));
        assert!(h.render().contains("commit=40"));
    }

    #[test]
    fn medium_health_from_lan_stats() {
        let mut stats = LanStats::default();
        stats.submitted.add(10);
        stats.busy.set_busy(SimTime::ZERO);
        stats.busy.set_idle(SimTime::from_millis(5));
        let m = MediumHealth::from_lan(&stats, SimTime::from_millis(10));
        assert_eq!(m.submitted, 10);
        assert!((m.utilization - 0.5).abs() < 1e-12);
        let mut reg = MetricsRegistry::new();
        m.into_registry(&mut reg);
        assert_eq!(reg.counter_value("medium/submitted"), Some(10));
    }
}
