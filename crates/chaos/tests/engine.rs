//! End-to-end chaos engine tests: generated schedules pass the oracle
//! on both topologies, literals replay deterministically, and the
//! shrinker reduces a real failing run to a minimal reproducer.

use publishing_chaos::driver::Engine;
use publishing_chaos::oracle::OracleOptions;
use publishing_chaos::scenario::{Scenario, Topology, NODES, REPLICAS, SHARDS};
use publishing_chaos::schedule::{self, ChaosConfig, Fault, FaultSchedule};
use publishing_sim::time::SimTime;

fn engine(topology: Topology, seed: u64, opts: OracleOptions) -> Engine {
    Engine::new(Scenario::new(topology, seed), opts).expect("deterministic baseline")
}

fn config(topology: Topology, seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        nodes: NODES,
        shards: match topology {
            Topology::Sharded => SHARDS,
            _ => 0,
        },
        replicas: match topology {
            Topology::Quorum => REPLICAS,
            _ => 0,
        },
        procs: 4,
        horizon_ms: 1000,
        max_faults: 6,
    }
}

#[test]
fn generated_schedules_pass_the_oracle_on_the_single_world() {
    let eng = engine(Topology::Single, 11, OracleOptions::default());
    for k in 0..2u64 {
        let sched = schedule::generate(&ChaosConfig {
            seed: 11 * 100 + k,
            ..config(Topology::Single, 11)
        });
        let failures = eng.run(&sched);
        assert!(
            failures.is_empty(),
            "schedule {sched}\nfailures: {failures:#?}"
        );
    }
}

#[test]
fn generated_schedules_pass_the_oracle_on_the_sharded_world() {
    let eng = engine(Topology::Sharded, 12, OracleOptions::default());
    for k in 0..2u64 {
        let sched = schedule::generate(&ChaosConfig {
            seed: 12 * 100 + k,
            ..config(Topology::Sharded, 12)
        });
        let failures = eng.run(&sched);
        assert!(
            failures.is_empty(),
            "schedule {sched}\nfailures: {failures:#?}"
        );
    }
}

#[test]
fn generated_schedules_pass_the_oracle_on_the_quorum_world() {
    let eng = engine(Topology::Quorum, 16, OracleOptions::default());
    for k in 0..2u64 {
        let sched = schedule::generate(&ChaosConfig {
            seed: 16 * 100 + k,
            ..config(Topology::Quorum, 16)
        });
        let failures = eng.run(&sched);
        assert!(
            failures.is_empty(),
            "schedule {sched}\nfailures: {failures:#?}"
        );
    }
}

/// The acceptance regression for replicated capture: a seeded schedule
/// kills the quorum leader while the workload's commits are in flight,
/// then kills a processing node. The surviving replicas must elect a
/// new leader, the arrival sequence must continue with no gap or
/// duplicate (the quorum safety oracles run inside the recovery
/// oracle), and the crashed node's processes must replay to completion
/// from a replica that was *not* the original leader.
#[test]
fn leader_crash_mid_commit_fails_over_and_a_former_follower_serves_replay() {
    let seed = 17;
    let scenario = Scenario::new(Topology::Quorum, seed);
    // Deterministic probe: with this seed, which replica leads while
    // the workload is still being sequenced?
    let crash_at = 250;
    let old_leader = {
        let mut t = scenario.build();
        t.run_until_or_fault(SimTime::from_millis(crash_at));
        t.quorum_leader().expect("a leader by the crash instant") as u32
    };
    let sched = FaultSchedule {
        workload_seed: seed,
        horizon_ms: 1200,
        faults: vec![
            Fault::CrashReplica {
                at_ms: crash_at,
                group: 0,
                idx: old_leader,
            },
            Fault::CrashNode {
                at_ms: 300,
                node: 2,
            },
        ],
    };
    let eng = engine(Topology::Quorum, seed, OracleOptions::default());
    let failures = eng.run(&sched);
    assert!(
        failures.is_empty(),
        "schedule {sched}\nfailures: {failures:#?}"
    );
    // Re-run outside the engine to inspect the world directly.
    let mut t = scenario.build();
    publishing_chaos::driver::run_schedule(t.as_mut(), &sched);
    let new_leader = t.quorum_leader().expect("post-failover leader") as u32;
    assert_ne!(
        new_leader, old_leader,
        "a former follower must lead after the crash"
    );
    assert!(
        t.recoveries_completed() >= 1,
        "the node crash must be recovered by the surviving replicas"
    );
}

#[test]
fn schedule_replay_is_deterministic() {
    // The same literal replayed twice produces bit-identical span logs.
    let eng = engine(Topology::Single, 13, OracleOptions::default());
    let sched = schedule::generate(&ChaosConfig {
        seed: 1303,
        ..config(Topology::Single, 13)
    });
    let lit = sched.to_string();
    let replayed: FaultSchedule = lit.parse().expect("own literal parses");
    assert_eq!(sched, replayed);
    let run = |s: &FaultSchedule| {
        let mut t = Scenario::new(Topology::Single, 13).build();
        publishing_chaos::driver::run_schedule(t.as_mut(), s);
        (t.obs_fingerprint(), t.output_fingerprint())
    };
    assert_eq!(run(&sched), run(&replayed));
    // And the run still satisfies the oracle.
    assert!(eng.run(&replayed).is_empty());
}

#[test]
fn fault_injections_surface_as_metrics_counters() {
    let sched = FaultSchedule {
        workload_seed: 15,
        horizon_ms: 800,
        faults: vec![
            Fault::CrashRecorder {
                at_ms: 120,
                shard: 0,
            },
            Fault::RestartRecorder {
                at_ms: 260,
                shard: 0,
            },
            Fault::Loss {
                at_ms: 60,
                dur_ms: 120,
                p_pct: 10,
            },
            Fault::TornWrites { at_ms: 300 },
            Fault::DiskTransient {
                at_ms: 350,
                dur_ms: 150,
                p_pct: 40,
            },
        ],
    };
    for topology in [Topology::Single, Topology::Sharded] {
        let mut t = Scenario::new(topology, 15).build();
        publishing_chaos::driver::run_schedule(t.as_mut(), &sched);
        let reg = t.metrics();
        assert_eq!(
            reg.counter_value("chaos/injected/crash_recorder"),
            Some(1),
            "{topology:?}"
        );
        assert_eq!(
            reg.counter_value("chaos/injected/restart_recorder"),
            Some(1)
        );
        assert_eq!(reg.counter_value("chaos/injected/loss"), Some(1));
        assert_eq!(reg.counter_value("chaos/injected/torn_writes"), Some(1));
        assert_eq!(reg.counter_value("chaos/injected/disk_transient"), Some(1));
        // The disk-fault regimes feed the consumption counters; they are
        // filed even when the window happened to claim no I/O.
        assert!(reg.counter_value("chaos/disk/io_retries").is_some());
        assert!(reg.counter_value("chaos/disk/transient_errors").is_some());
        assert!(reg.counter_value("chaos/disk/torn_writes").is_some());
    }
}

#[test]
fn injected_bug_shrinks_to_a_minimal_deterministic_reproducer() {
    // Self-test flag: the oracle treats any completed recovery as a
    // bug. A noisy multi-fault schedule must shrink to a reproducer of
    // at most 3 faults (in practice: the one crash that forces a
    // recovery), and the reproducer's literal must replay the failure.
    let opts = OracleOptions {
        fail_on_recovery: true,
    };
    let eng = engine(Topology::Single, 14, opts);
    let noisy = FaultSchedule {
        workload_seed: 14,
        horizon_ms: 800,
        faults: vec![
            Fault::Loss {
                at_ms: 60,
                dur_ms: 120,
                p_pct: 10,
            },
            Fault::Duplicate {
                at_ms: 100,
                dur_ms: 80,
                p_pct: 30,
            },
            Fault::CrashProcess {
                at_ms: 200,
                victim: 1,
            },
            Fault::TornWrites { at_ms: 300 },
            Fault::DiskTransient {
                at_ms: 350,
                dur_ms: 100,
                p_pct: 20,
            },
        ],
    };
    assert!(!eng.run(&noisy).is_empty(), "noisy schedule must fail");
    let min = eng.shrink(&noisy);
    assert!(
        min.faults.len() <= 3,
        "reproducer not minimal: {} faults in {min}",
        min.faults.len()
    );
    // The minimal reproducer replays deterministically from its literal.
    let lit = min.to_string();
    let replayed: FaultSchedule = lit.parse().expect("literal parses");
    let f1 = eng.run(&replayed);
    let f2 = eng.run(&replayed);
    assert!(!f1.is_empty(), "reproducer must still fail: {lit}");
    assert_eq!(f1, f2, "reproducer must fail identically on replay");
}

#[test]
fn quorum_fault_schedule_shrinks_to_a_minimal_reproducer() {
    // Same self-test oracle, on the quorum world, with replica faults
    // as noise: leader churn alone completes no recovery, so the
    // shrinker must strip the replica crash/restart pairs and keep the
    // one fault that forces a recovery (the node crash).
    let opts = OracleOptions {
        fail_on_recovery: true,
    };
    let eng = engine(Topology::Quorum, 18, opts);
    let noisy = FaultSchedule {
        workload_seed: 18,
        horizon_ms: 900,
        faults: vec![
            Fault::CrashReplica {
                at_ms: 120,
                group: 0,
                idx: 0,
            },
            Fault::RestartReplica {
                at_ms: 260,
                group: 0,
                idx: 0,
            },
            Fault::Loss {
                at_ms: 80,
                dur_ms: 100,
                p_pct: 10,
            },
            Fault::CrashNode {
                at_ms: 350,
                node: 1,
            },
            Fault::CrashReplica {
                at_ms: 400,
                group: 0,
                idx: 2,
            },
            Fault::RestartReplica {
                at_ms: 520,
                group: 0,
                idx: 2,
            },
        ],
    };
    assert!(!eng.run(&noisy).is_empty(), "noisy schedule must fail");
    let min = eng.shrink(&noisy);
    assert!(
        min.faults.len() <= 3,
        "reproducer not minimal: {} faults in {min}",
        min.faults.len()
    );
    assert!(
        min.faults
            .iter()
            .any(|f| matches!(f, Fault::CrashNode { .. } | Fault::CrashProcess { .. })),
        "the recovery-forcing crash must survive shrinking: {min}"
    );
    let lit = min.to_string();
    let replayed: FaultSchedule = lit.parse().expect("literal parses");
    assert!(!eng.run(&replayed).is_empty(), "reproducer replays: {lit}");
}
