//! DEMOS/MP: the message-based operating system substrate (Chapter 4).
//!
//! DEMOS is "made up of cooperating processes and a message kernel"; this
//! crate reproduces the pieces publishing needs:
//!
//! - [`ids`], [`link`], [`message`], [`queue`]: links (capabilities),
//!   channels, messages, and per-process queues with selective receive;
//! - [`program`], [`process`]: the deterministic, checkpointable process
//!   model of §1.1.1;
//! - [`transport`]: guaranteed/unguaranteed messages, end-to-end acks,
//!   duplicate suppression, stop-and-wait and windowed ordering (§4.3.3);
//! - [`kernel`]: the per-node message kernel with all §4.4 publishing
//!   hooks (broadcast intranode messages, read-order notices,
//!   DELIVERTOKERNEL process control, recovery commands);
//! - [`sysproc`]: process manager, memory scheduler, named-link server;
//! - [`programs`]: deterministic application programs for tests/examples;
//! - [`protocol`]: the control-message vocabulary shared with the
//!   recorder and recovery manager in `publishing-core`;
//! - [`costs`]: the VAX-calibrated CPU cost model behind Figures 5.7/5.8;
//! - [`harness`]: a kernels-plus-LAN driver for recorder-less tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod driver;
pub mod harness;
pub mod ids;
pub mod kernel;
pub mod link;
pub mod message;
pub mod process;
pub mod program;
pub mod programs;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod sysproc;
pub mod transport;

pub use costs::CostModel;
pub use driver::{LoadDriver, MessageMix, CHECKPOINT_BYTES, LONG_BYTES, SHORT_BYTES};
pub use ids::{Channel, ChannelSet, LinkId, MessageId, NodeId, ProcessId, KERNEL_LOCAL};
pub use kernel::{decode_ctl, encode_ctl, Kernel, KernelAction, KernelStats};
pub use link::{Link, LinkTable};
pub use message::{Message, MessageHeader};
pub use process::{Process, ProcessImage, RunState};
pub use program::{Ctx, Effect, Program, Received, SyscallError};
pub use queue::{MessageQueue, ReadInfo};
pub use registry::{ProgramRegistry, UnknownProgram};
pub use transport::{ChannelMeter, TAction, Transport, TransportConfig, TransportStats, Wire};
