//! Schema compatibility for the `obs_report` JSON artifact.
//!
//! Version 1 reports carried no `schema` field — readers must treat its
//! absence as version 1 and still find every v1 section. Version 2 adds
//! `schema`, `spans_partial`, per-recovery `recovery_ms` /
//! `critical_path_ms`, and the optional `critical_path` object. Version
//! 3 adds the consensus sections — `quorum`, `consensus`, `watchdog` —
//! all optional: non-quorum reports omit them entirely, so v2 readers
//! that ignore unknown keys keep working unchanged. Version 4 adds the
//! optional `workload` section (offered load vs. goodput plus the SLO
//! violations the run tripped), again omitted when a run was not driven
//! through the workload engine. Version 5 adds the optional capacity-
//! lens sections — `utilization` (the per-resource busy ledger with the
//! binding resource named, plus the queueing cross-validation rows) and
//! `whatif` (the virtual-speedup sensitivity matrix) — omitted unless a
//! ledger or profiler populated them. Version 6 adds the optional
//! `forensics` section — the differential diagnosis attached when a
//! forensics pass diffed the run against a baseline — omitted otherwise.
//! The parser in this crate must read all six shapes.

use publishing_obs::report::{ObsReport, WorkloadStats, REPORT_SCHEMA_VERSION};
use publishing_obs::{ConsensusStats, WatchdogSummary};
use publishing_perf::json::{parse, Json};

/// A trimmed-down report rendered by the pre-v2 code: no `schema`, no
/// `spans_partial`, no `critical_path`, recovery entries without the
/// window fields.
const V1_REPORT: &str = r#"{"at_ms":100.0,"spans_total":42,"span_fingerprint":"0x00000000deadbeef","shards":[{"shard":0,"live":true,"catching_up":false,"queue_depth":0,"known_processes":3,"recoveries_in_flight":0,"replay_lag":0,"gating_stalls":1,"published":10}],"recovery":[{"pid":17,"recovering":false,"messages_behind":2,"checkpoint_age_ms":5.5,"suppressed":0}],"sched":{"delivered":90,"scheduled":96,"pending":6,"peak_pending":14},"profile":{"kernel_cpu":10.0},"metrics":{"node/0/kernel/msgs_sent":7}}"#;

/// A report rendered by the v2 code: `schema:2`, `spans_partial`, the
/// recovery window fields — but none of the v3 consensus sections.
const V2_REPORT: &str = r#"{"schema":2,"at_ms":100.0,"spans_total":42,"spans_partial":3,"span_fingerprint":"0x00000000deadbeef","shards":[{"shard":0,"live":true,"catching_up":false,"queue_depth":0,"known_processes":3,"recoveries_in_flight":0,"replay_lag":0,"gating_stalls":1,"published":10}],"recovery":[{"pid":17,"recovering":false,"messages_behind":2,"checkpoint_age_ms":5.5,"suppressed":0,"recovery_ms":12.5,"critical_path_ms":9.0}],"critical_path":{"crash_at_ms":50.0,"converged_at_ms":59.0,"total_ms":9.0,"by_stage":{"replay":9.0}},"sched":{"delivered":90,"scheduled":96,"pending":6,"peak_pending":14},"profile":{"kernel_cpu":10.0},"metrics":{"node/0/kernel/msgs_sent":7}}"#;

/// A report rendered by the v3 code: consensus sections present,
/// `schema:3` — but no `workload` section.
const V3_REPORT: &str = r#"{"schema":3,"at_ms":100.0,"spans_total":42,"spans_partial":0,"span_fingerprint":"0x00000000deadbeef","shards":[],"recovery":[],"quorum":[{"replica":0,"role":"leader","term":2,"commit_index":40,"log_len":41,"match_floor":40}],"consensus":{"commits":40,"commit_p50_us":900,"commit_p99_us":4200,"replication_lag_p95":2.0,"elections":2},"watchdog":{"checks":123,"violations":[]},"sched":{"delivered":90,"scheduled":96,"pending":6,"peak_pending":14},"profile":{"kernel_cpu":10.0},"metrics":{"node/0/kernel/msgs_sent":7}}"#;

/// A report rendered by the v4 code: `workload` present, `schema:4` —
/// but none of the v5 capacity-lens sections.
const V4_REPORT: &str = r#"{"schema":4,"at_ms":100.0,"spans_total":42,"spans_partial":0,"span_fingerprint":"0x00000000deadbeef","shards":[],"recovery":[],"workload":{"offered":200,"delivered":180,"goodput":0.9,"offered_per_sec":500,"slo_violations":["deliver p99 262144us > 150000us"]},"sched":{"delivered":90,"scheduled":96,"pending":6,"peak_pending":14},"profile":{"kernel_cpu":10.0},"metrics":{"node/0/kernel/msgs_sent":7}}"#;

/// A report rendered by the v5 code: lens sections present, `schema:5`
/// — but no `forensics` section.
const V5_REPORT: &str = r#"{"schema":5,"at_ms":100.0,"spans_total":42,"spans_partial":0,"span_fingerprint":"0x00000000deadbeef","shards":[],"recovery":[],"utilization":{"window_ms":100.0,"bin_ms":16.78,"binding":"xport 0->2","resources":[{"kind":"transport","name":"xport 0->2","index":0,"peer":2,"busy_ms":95.0,"util":0.95,"active_util":0.95,"peak_util":0.98,"mean_queue":7.5,"peak_queue":12,"events":88,"contention":0}],"xval":[{"resource":"medium","quantity":"utilization","measured":0.5,"predicted":0.52,"rel_err":0.04,"tolerance":0.2,"ok":true}]},"whatif":{"baseline_knee":141,"rows":[{"knob":"sink_recv","multiplier":0.5,"predicted_knee":280,"confirmed_knee":270,"binding_after":"medium"}]},"sched":{"delivered":90,"scheduled":96,"pending":6,"peak_pending":14},"profile":{"kernel_cpu":10.0},"metrics":{"node/0/kernel/msgs_sent":7}}"#;

/// Schema of a parsed report document: the explicit `schema` number, or
/// 1 when the field is absent (the pre-versioning shape).
fn schema_of(doc: &Json) -> u32 {
    doc.get("schema").and_then(Json::as_f64).unwrap_or(1.0) as u32
}

#[test]
fn v1_report_without_schema_field_still_reads() {
    let doc = parse(V1_REPORT).expect("v1 artifact parses");
    assert_eq!(schema_of(&doc), 1, "absent schema field means version 1");
    // Every v1 section is still addressable.
    assert_eq!(doc.get("spans_total").and_then(Json::as_f64), Some(42.0));
    assert_eq!(
        doc.get("span_fingerprint").and_then(Json::as_str),
        Some("0x00000000deadbeef")
    );
    let recovery = doc
        .get("recovery")
        .and_then(Json::as_arr)
        .expect("recovery array");
    let first = recovery.first().expect("one recovery entry");
    assert_eq!(first.get("pid").and_then(Json::as_f64), Some(17.0));
    // v2-only fields are simply absent, not an error.
    assert!(doc.get("spans_partial").is_none());
    assert!(doc.get("critical_path").is_none());
    assert!(first.get("recovery_ms").is_none());
}

#[test]
fn v2_report_still_reads_and_lacks_consensus_sections() {
    let doc = parse(V2_REPORT).expect("v2 artifact parses");
    assert_eq!(schema_of(&doc), 2, "canned v2 artifact declares schema 2");
    // Every v2 section is still addressable.
    assert_eq!(doc.get("spans_partial").and_then(Json::as_f64), Some(3.0));
    let cp = doc.get("critical_path").expect("critical_path object");
    assert_eq!(cp.get("total_ms").and_then(Json::as_f64), Some(9.0));
    let recovery = doc
        .get("recovery")
        .and_then(Json::as_arr)
        .expect("recovery array");
    let first = recovery.first().expect("one recovery entry");
    assert_eq!(first.get("recovery_ms").and_then(Json::as_f64), Some(12.5));
    // v3-only sections are simply absent, not an error.
    assert!(doc.get("quorum").is_none());
    assert!(doc.get("consensus").is_none());
    assert!(doc.get("watchdog").is_none());
}

#[test]
fn current_report_declares_schema_and_new_sections() {
    let mut report = ObsReport {
        at_ms: 100.0,
        spans_total: 42,
        ..Default::default()
    };
    report.latencies.partial = 3;
    let doc = parse(&report.render_json()).expect("current artifact parses");
    assert_eq!(schema_of(&doc), REPORT_SCHEMA_VERSION);
    assert_eq!(doc.get("spans_partial").and_then(Json::as_f64), Some(3.0));
    // Both shapes read through the same accessors.
    assert_eq!(doc.get("spans_total").and_then(Json::as_f64), Some(42.0));
}

#[test]
fn v3_consensus_sections_are_optional_and_omitted_by_default() {
    // A sharded (non-quorum) report renders no consensus sections at
    // all — a v2 reader that ignores unknown keys sees nothing new
    // beyond the schema bump.
    let report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    let doc = parse(&report.render_json()).expect("default artifact parses");
    assert!(doc.get("quorum").is_none());
    assert!(doc.get("consensus").is_none());
    assert!(doc.get("watchdog").is_none());
}

#[test]
fn v3_report_still_reads_and_lacks_workload_section() {
    let doc = parse(V3_REPORT).expect("v3 artifact parses");
    assert_eq!(schema_of(&doc), 3, "canned v3 artifact declares schema 3");
    // Every v3 section is still addressable.
    let consensus = doc.get("consensus").expect("consensus object");
    assert_eq!(consensus.get("commits").and_then(Json::as_f64), Some(40.0));
    let quorum = doc
        .get("quorum")
        .and_then(Json::as_arr)
        .expect("quorum array");
    assert_eq!(quorum[0].get("role").and_then(Json::as_str), Some("leader"));
    // The v4-only section is simply absent, not an error.
    assert!(doc.get("workload").is_none());
}

#[test]
fn v4_workload_section_is_optional_and_omitted_by_default() {
    // A run not driven through the workload engine renders no workload
    // section at all — a v3 reader that ignores unknown keys sees
    // nothing new beyond the schema bump.
    let report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    let doc = parse(&report.render_json()).expect("default artifact parses");
    assert!(doc.get("workload").is_none());
}

#[test]
fn v4_workload_section_renders_when_populated() {
    let mut report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    report.workload = Some(WorkloadStats {
        offered: 200,
        delivered: 180,
        offered_per_sec: 500.0,
        slo_violations: vec!["deliver p99 262144us > 150000us".into()],
    });
    let doc = parse(&report.render_json()).expect("workload artifact parses");
    assert_eq!(schema_of(&doc), REPORT_SCHEMA_VERSION);
    let wl = doc.get("workload").expect("workload object");
    assert_eq!(wl.get("offered").and_then(Json::as_f64), Some(200.0));
    assert_eq!(wl.get("delivered").and_then(Json::as_f64), Some(180.0));
    assert_eq!(wl.get("goodput").and_then(Json::as_f64), Some(0.9));
    let violations = wl
        .get("slo_violations")
        .and_then(Json::as_arr)
        .expect("violations array");
    assert_eq!(violations.len(), 1);
}

#[test]
fn v4_report_still_reads_and_lacks_lens_sections() {
    let doc = parse(V4_REPORT).expect("v4 artifact parses");
    assert_eq!(schema_of(&doc), 4, "canned v4 artifact declares schema 4");
    // Every v4 section is still addressable.
    let wl = doc.get("workload").expect("workload object");
    assert_eq!(wl.get("offered").and_then(Json::as_f64), Some(200.0));
    assert_eq!(wl.get("goodput").and_then(Json::as_f64), Some(0.9));
    // The v5-only sections are simply absent, not an error.
    assert!(doc.get("utilization").is_none());
    assert!(doc.get("whatif").is_none());
}

#[test]
fn v5_lens_sections_are_optional_and_omitted_by_default() {
    // A run with no utilization ledger or what-if profiler attached
    // renders neither section — a v4 reader that ignores unknown keys
    // sees nothing new beyond the schema bump.
    let report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    let doc = parse(&report.render_json()).expect("default artifact parses");
    assert!(doc.get("utilization").is_none());
    assert!(doc.get("whatif").is_none());
}

#[test]
fn v5_lens_sections_render_when_populated() {
    use publishing_obs::{UtilizationReport, WhatIfReport, WhatIfRow, XvalRow};
    use publishing_sim::ledger::{ResourceKind, ResourceUsage};
    let mut report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    report.utilization = Some(UtilizationReport {
        window_ms: 100.0,
        bin_ms: 16.78,
        resources: vec![ResourceUsage {
            kind: ResourceKind::Transport,
            name: "xport 0->2".into(),
            index: 0,
            peer: 2,
            busy_ms: 95.0,
            window_ms: 100.0,
            util: 0.95,
            active_util: 0.95,
            peak_util: 0.98,
            mean_queue: 7.5,
            peak_queue: 12,
            events: 88,
            contention: 0,
        }],
        xval: vec![XvalRow::check("medium", "utilization", 0.50, 0.52, 0.20)],
    });
    report.whatif = Some(WhatIfReport {
        baseline_knee: 141,
        rows: vec![WhatIfRow {
            knob: "sink_recv".into(),
            multiplier: 0.5,
            predicted_knee: 280,
            confirmed_knee: Some(270),
            binding_after: "medium".into(),
        }],
    });
    let doc = parse(&report.render_json()).expect("lens artifact parses");
    assert_eq!(schema_of(&doc), REPORT_SCHEMA_VERSION);
    let util = doc.get("utilization").expect("utilization object");
    assert_eq!(
        util.get("binding").and_then(Json::as_str),
        Some("xport 0->2")
    );
    let resources = util
        .get("resources")
        .and_then(Json::as_arr)
        .expect("resources array");
    assert!(!resources.is_empty());
    assert_eq!(
        resources[0].get("kind").and_then(Json::as_str),
        Some("transport")
    );
    let xval = util.get("xval").and_then(Json::as_arr).expect("xval array");
    assert!(xval.iter().all(|row| row.get("ok").is_some()));
    let whatif = doc.get("whatif").expect("whatif object");
    assert_eq!(
        whatif.get("baseline_knee").and_then(Json::as_f64),
        Some(141.0)
    );
    let rows = whatif
        .get("rows")
        .and_then(Json::as_arr)
        .expect("whatif rows");
    assert_eq!(
        rows[0].get("knob").and_then(Json::as_str),
        Some("sink_recv")
    );
}

#[test]
fn v5_report_still_reads_and_lacks_forensics_section() {
    let doc = parse(V5_REPORT).expect("v5 artifact parses");
    assert_eq!(schema_of(&doc), 5, "canned v5 artifact declares schema 5");
    // Every v5 section is still addressable.
    let util = doc.get("utilization").expect("utilization object");
    assert_eq!(
        util.get("binding").and_then(Json::as_str),
        Some("xport 0->2")
    );
    let whatif = doc.get("whatif").expect("whatif object");
    assert_eq!(
        whatif.get("baseline_knee").and_then(Json::as_f64),
        Some(141.0)
    );
    // The v6-only section is simply absent, not an error.
    assert!(doc.get("forensics").is_none());
}

#[test]
fn v6_forensics_section_is_optional_and_omitted_by_default() {
    // A run never diffed against a baseline renders no forensics
    // section at all — a v5 reader that ignores unknown keys sees
    // nothing new beyond the schema bump.
    let report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    let doc = parse(&report.render_json()).expect("default artifact parses");
    assert!(doc.get("forensics").is_none());
}

#[test]
fn v6_forensics_section_renders_when_populated() {
    use publishing_obs::forensics::{Finding, ForensicsReport, Suspect, SuspectKind};
    let mut report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    report.forensics = Some(ForensicsReport {
        baseline: "BENCH_1".into(),
        findings: vec![Finding {
            scenario: "ab_trial".into(),
            subject: "publish_to_deliver_us_p99".into(),
            prev: 262144.0,
            new: 2097152.0,
            suspects: vec![Suspect {
                kind: SuspectKind::Resource,
                name: "util_cpu_proto_busy_ms".into(),
                prev: 5073.3,
                new: 10146.6,
                detail: "what-if knob: proto_cpu".into(),
            }],
        }],
    });
    let doc = parse(&report.render_json()).expect("forensics artifact parses");
    assert_eq!(schema_of(&doc), REPORT_SCHEMA_VERSION);
    let fx = doc.get("forensics").expect("forensics object");
    assert_eq!(fx.get("baseline").and_then(Json::as_str), Some("BENCH_1"));
    let findings = fx
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("subject").and_then(Json::as_str),
        Some("publish_to_deliver_us_p99")
    );
    let suspects = findings[0]
        .get("suspects")
        .and_then(Json::as_arr)
        .expect("suspects array");
    assert_eq!(
        suspects[0].get("kind").and_then(Json::as_str),
        Some("resource")
    );
    assert_eq!(
        suspects[0].get("delta").and_then(Json::as_f64),
        Some(10146.6 - 5073.3)
    );
}

#[test]
fn v3_consensus_sections_render_when_populated() {
    let mut report = ObsReport {
        at_ms: 100.0,
        ..Default::default()
    };
    report.consensus = Some(ConsensusStats {
        commits: 40,
        commit_p50_us: 900,
        commit_p99_us: 4200,
        replication_lag_p95: 2.0,
        elections: 2,
    });
    report.watchdog = Some(WatchdogSummary {
        checks: 123,
        violations: vec!["commit index moved backwards".into()],
    });
    let doc = parse(&report.render_json()).expect("quorum artifact parses");
    assert_eq!(schema_of(&doc), REPORT_SCHEMA_VERSION);
    let consensus = doc.get("consensus").expect("consensus object");
    assert_eq!(consensus.get("commits").and_then(Json::as_f64), Some(40.0));
    assert_eq!(
        consensus.get("commit_p99_us").and_then(Json::as_f64),
        Some(4200.0)
    );
    let watchdog = doc.get("watchdog").expect("watchdog object");
    assert_eq!(watchdog.get("checks").and_then(Json::as_f64), Some(123.0));
    let violations = watchdog
        .get("violations")
        .and_then(Json::as_arr)
        .expect("violations array");
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].as_str(), Some("commit index moved backwards"));
}
