//! Shared load-driver sampling: one home for message sizes and rates.
//!
//! §5.1 converted the measured VAX trace to a distributed equivalent
//! with a fixed rule — system calls become *short* messages, I/O
//! requests become *long* ones, "estimated to be 128 and 1024 bytes
//! respectively". Those two constants (plus the Figure 5.1 checkpoint
//! fragment size) used to be re-stated by every scenario that published
//! anything; this module is now the single source the demos programs,
//! the queueing model, the bench scenarios, and the workload engine all
//! draw from, so a mix change shows up everywhere at once.

use publishing_sim::codec::{CodecError, Decoder, Encoder};

/// Short (system-call) message size in bytes (§5.1).
pub const SHORT_BYTES: usize = 128;
/// Long (I/O) message size in bytes (§5.1).
pub const LONG_BYTES: usize = 1024;
/// Checkpoint fragment size in bytes (Figure 5.1's checkpoint messages).
pub const CHECKPOINT_BYTES: usize = 1024;

/// MMIX LCG multiplier — the per-program deterministic generator the
/// demos programs have always used (see `programs::Chatter`).
pub const LCG_MUL: u64 = 6364136223846793005;
/// MMIX LCG increment.
pub const LCG_INC: u64 = 1442695040888963407;

/// Advances an MMIX LCG state and returns the new value. Programs keep
/// the `u64` state in their snapshot, so a recovered process resumes
/// the exact sample stream it crashed in.
pub fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
    *state
}

/// A two-point message-size mix: `short_pct` percent of publishes are
/// `short_bytes`, the rest `long_bytes`. The paper's split is the
/// default; workloads may widen either point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMix {
    /// Percentage of messages drawn at the short size (0–100).
    pub short_pct: u8,
    /// The short operand of the mix, in bytes.
    pub short_bytes: u32,
    /// The long operand of the mix, in bytes.
    pub long_bytes: u32,
}

impl MessageMix {
    /// The paper's mean operating point: 4.2 short + 0.35 long messages
    /// per process-second (§5.1) is a 92% short mix over the 128 B /
    /// 1024 B split.
    pub const fn paper() -> Self {
        MessageMix {
            short_pct: 92,
            short_bytes: SHORT_BYTES as u32,
            long_bytes: LONG_BYTES as u32,
        }
    }

    /// Draws one message size from the mix, advancing `lcg`.
    pub fn sample(&self, lcg: &mut u64) -> usize {
        let draw = (lcg_next(lcg) >> 33) % 100;
        if draw < self.short_pct as u64 {
            self.short_bytes as usize
        } else {
            self.long_bytes as usize
        }
    }

    /// The mix's mean message size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let p = self.short_pct as f64 / 100.0;
        p * self.short_bytes as f64 + (1.0 - p) * self.long_bytes as f64
    }

    /// Encodes the mix into a snapshot.
    pub fn encode(&self, e: &mut Encoder) {
        e.u8(self.short_pct)
            .u32(self.short_bytes)
            .u32(self.long_bytes);
    }

    /// Decodes a mix from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the bytes do not decode.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MessageMix {
            short_pct: d.u8()?,
            short_bytes: d.u32()?,
            long_bytes: d.u32()?,
        })
    }
}

impl Default for MessageMix {
    fn default() -> Self {
        MessageMix::paper()
    }
}

/// A source of publish work: how many messages are due this tick and
/// how big each one is. The workload engine's phase-compiled drivers
/// and the fixed-rate demo programs both implement this, so a harness
/// can swap offered-load models without touching the publish loop.
pub trait LoadDriver {
    /// Number of messages to publish for the tick covering
    /// `[logical_ms, logical_ms + tick_ms)`.
    fn publishes_due(&mut self, logical_ms: u64, tick_ms: u64) -> u32;
    /// Size of the next message body in bytes.
    fn next_bytes(&mut self) -> usize;
    /// True once the driver has offered everything it intends to.
    fn exhausted(&self, logical_ms: u64) -> bool;
}

/// The trivial fixed-rate driver: `per_sec` messages per logical
/// second, paper mix, until `horizon_ms`. Fractional per-tick residue
/// is carried so the offered count is exact over the horizon.
#[derive(Debug, Clone)]
pub struct SteadyDriver {
    /// Messages per logical second.
    pub per_sec: u32,
    /// Logical end of the offered load.
    pub horizon_ms: u64,
    /// Size mix.
    pub mix: MessageMix,
    lcg: u64,
    carry_milli: u64,
}

impl SteadyDriver {
    /// A steady driver at `per_sec` messages/s until `horizon_ms`.
    pub fn new(per_sec: u32, horizon_ms: u64, seed: u64) -> Self {
        SteadyDriver {
            per_sec,
            horizon_ms,
            mix: MessageMix::paper(),
            lcg: seed,
            carry_milli: 0,
        }
    }
}

impl LoadDriver for SteadyDriver {
    fn publishes_due(&mut self, logical_ms: u64, tick_ms: u64) -> u32 {
        if logical_ms >= self.horizon_ms {
            return 0;
        }
        // per_sec msgs/s over tick_ms, accumulated in 1/1000 msg units.
        self.carry_milli += self.per_sec as u64 * tick_ms;
        let due = self.carry_milli / 1000;
        self.carry_milli %= 1000;
        due as u32
    }

    fn next_bytes(&mut self) -> usize {
        self.mix.sample(&mut self.lcg)
    }

    fn exhausted(&self, logical_ms: u64) -> bool {
        logical_ms >= self.horizon_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_mmix_constants() {
        let mut s = 1u64;
        let v = lcg_next(&mut s);
        assert_eq!(v, 1u64.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC));
        assert_eq!(s, v);
    }

    #[test]
    fn paper_mix_samples_both_points() {
        let mix = MessageMix::paper();
        let mut lcg = 42u64;
        let mut short = 0usize;
        let mut long = 0usize;
        for _ in 0..10_000 {
            match mix.sample(&mut lcg) {
                SHORT_BYTES => short += 1,
                LONG_BYTES => long += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        // 92% nominal; allow generous slack, the point is both appear.
        assert!(short > 8_500, "short {short}");
        assert!(long > 300, "long {long}");
    }

    #[test]
    fn mix_round_trips_through_codec() {
        let mix = MessageMix {
            short_pct: 30,
            short_bytes: 64,
            long_bytes: 4096,
        };
        let mut e = Encoder::new();
        mix.encode(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let back = MessageMix::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, mix);
    }

    #[test]
    fn steady_driver_offers_exact_total() {
        let mut d = SteadyDriver::new(7, 1000, 1);
        let mut total = 0u32;
        let mut t = 0u64;
        // Odd tick so the fractional carry is exercised.
        while !d.exhausted(t) {
            total += d.publishes_due(t, 33);
            t += 33;
        }
        // 7 msgs/s over the ticks that fit in the horizon.
        let ticks = 1000u64.div_ceil(33);
        assert_eq!(total as u64, 7 * 33 * ticks / 1000);
        assert_eq!(d.publishes_due(t, 33), 0, "past horizon offers nothing");
    }

    #[test]
    fn mean_bytes_matches_mix() {
        let m = MessageMix::paper();
        let want = 0.92 * 128.0 + 0.08 * 1024.0;
        assert!((m.mean_bytes() - want).abs() < 1e-9);
    }
}
