//! Frame-duplication injection: on every medium, a duplicated frame is
//! delivered twice, with distinct arrival times, and counted in
//! `LanStats::duplicated`. Receivers above the link layer dedup by
//! message id, so the medium is free to hand the same frame up twice —
//! this is the raw transport-level behaviour the chaos engine leans on.

use publishing_net::ethernet::Ethernet;
use publishing_net::frame::{Destination, Frame, StationId};
use publishing_net::lan::{Lan, LanAction, LanConfig};
use publishing_net::star::StarHub;
use publishing_net::token_ring::TokenRing;
use publishing_sim::event::Scheduler;
use publishing_sim::fault::FaultPlan;
use publishing_sim::time::{SimDuration, SimTime};

/// Drives any medium to quiescence, collecting `(time, to)` deliveries.
fn drive(lan: &mut dyn Lan, frame: Frame) -> Vec<(SimTime, StationId)> {
    let mut sched: Scheduler<u64> = Scheduler::new();
    let mut deliveries = Vec::new();
    let apply = |sched: &mut Scheduler<u64>,
                 deliveries: &mut Vec<(SimTime, StationId)>,
                 actions: Vec<LanAction>| {
        for a in actions {
            match a {
                LanAction::SetTimer { at, token } => {
                    sched.schedule_at(at, token);
                }
                LanAction::Deliver { at, to, .. } => deliveries.push((at, to)),
                LanAction::TxOutcome { .. } => {}
            }
        }
    };
    let actions = lan.submit(SimTime::ZERO, frame);
    apply(&mut sched, &mut deliveries, actions);
    while let Some((now, token)) = sched.pop() {
        let actions = lan.timer(now, token);
        apply(&mut sched, &mut deliveries, actions);
    }
    deliveries
}

/// Asserts station 2 received the frame exactly twice, at distinct times.
fn assert_double_delivery(lan: &mut dyn Lan, name: &str) {
    lan.set_faults(FaultPlan::new().with_frame_duplication(1.0));
    let frame = Frame::new(StationId(1), Destination::Station(StationId(2)), vec![7]);
    let deliveries = drive(lan, frame);
    let mut to_2: Vec<SimTime> = deliveries
        .iter()
        .filter(|(_, to)| *to == StationId(2))
        .map(|(at, _)| *at)
        .collect();
    to_2.sort();
    assert_eq!(to_2.len(), 2, "{name}: expected exactly two deliveries");
    assert!(
        to_2[1] > to_2[0],
        "{name}: duplicate must arrive strictly later"
    );
    assert!(lan.stats().duplicated.get() >= 1, "{name}: counter");
}

#[test]
fn ethernet_duplicates_with_distinct_arrival_times() {
    let cfg = LanConfig {
        seed: 21,
        ..LanConfig::default()
    };
    let mut lan = Ethernet::standard(cfg);
    for i in 0..3 {
        lan.attach(StationId(i));
    }
    // The Ethernet is a physical broadcast: count only station 2's copies.
    assert_double_delivery(&mut lan, "ethernet");
}

#[test]
fn token_ring_duplicates_with_distinct_arrival_times() {
    let cfg = LanConfig {
        seed: 22,
        ..LanConfig::default()
    };
    let mut lan = TokenRing::new(cfg, SimDuration::from_micros(10));
    for i in 0..3 {
        lan.attach(StationId(i));
    }
    assert_double_delivery(&mut lan, "token ring");
}

#[test]
fn star_duplicates_with_distinct_arrival_times() {
    let cfg = LanConfig {
        seed: 23,
        ..LanConfig::default()
    };
    let mut lan = StarHub::new(cfg, StationId(0), SimDuration::from_micros(100));
    for i in 0..3 {
        lan.attach(StationId(i));
    }
    assert_double_delivery(&mut lan, "star");
}
