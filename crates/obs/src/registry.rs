//! The hierarchical metrics registry.
//!
//! Components keep their existing instruments (`Counter`, `Summary`,
//! `LogHistogram`, `Utilization`); a collector walks them at report time
//! and files each reading under a slash-separated path such as
//! `node/2/kernel/msgs_sent` or `shard/0/recorder/published`. The
//! registry is therefore a *snapshot*: two snapshots taken at different
//! virtual times can be subtracted ([`MetricsRegistry::delta`]) to get
//! interval rates, and any snapshot exports as JSON lines for offline
//! tooling.

use publishing_sim::stats::{LinearHistogram, LogHistogram, Summary};
use std::collections::BTreeMap;

/// One metric reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time level (utilization, lag, age...).
    Gauge(f64),
}

/// A path-keyed snapshot of metric readings.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    map: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Files a counter reading under `path` (replacing any prior value).
    pub fn counter(&mut self, path: impl Into<String>, value: u64) {
        self.map.insert(path.into(), MetricValue::Counter(value));
    }

    /// Files a gauge reading under `path`. Non-finite values are clamped
    /// to zero so the JSON export stays valid.
    pub fn gauge(&mut self, path: impl Into<String>, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.map.insert(path.into(), MetricValue::Gauge(v));
    }

    /// Looks up a reading.
    pub fn get(&self, path: &str) -> Option<MetricValue> {
        self.map.get(path).copied()
    }

    /// Looks up a counter reading, `None` if absent or not a counter.
    pub fn counter_value(&self, path: &str) -> Option<u64> {
        match self.map.get(path) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge reading, `None` if absent or not a gauge.
    pub fn gauge_value(&self, path: &str) -> Option<f64> {
        match self.map.get(path) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates readings in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates readings under a path prefix (e.g. `"shard/0/"`).
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, MetricValue)> + 'a {
        self.map
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Returns the number of readings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no readings have been filed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Expands a [`Summary`] into `count`/`mean`/`min`/`max`/`stddev`
    /// readings under `prefix`.
    pub fn summary(&mut self, prefix: &str, s: &Summary) {
        self.counter(format!("{prefix}/count"), s.count());
        self.gauge(format!("{prefix}/mean"), s.mean());
        self.gauge(format!("{prefix}/min"), s.min().unwrap_or(0.0));
        self.gauge(format!("{prefix}/max"), s.max().unwrap_or(0.0));
        self.gauge(format!("{prefix}/stddev"), s.stddev());
    }

    /// Expands a [`LogHistogram`] into summary plus p50/p90/p95/p99
    /// readings under `prefix`.
    pub fn histogram(&mut self, prefix: &str, h: &LogHistogram) {
        self.summary(prefix, h.summary());
        self.counter(format!("{prefix}/p50"), h.quantile(0.5));
        self.counter(format!("{prefix}/p90"), h.quantile(0.9));
        self.counter(format!("{prefix}/p95"), h.quantile(0.95));
        self.counter(format!("{prefix}/p99"), h.quantile(0.99));
    }

    /// Expands a [`LinearHistogram`] into summary plus p50/p95/p99
    /// gauges under `prefix`.
    pub fn linear_histogram(&mut self, prefix: &str, h: &LinearHistogram) {
        self.summary(prefix, h.summary());
        self.gauge(format!("{prefix}/p50"), h.quantile(0.5));
        self.gauge(format!("{prefix}/p95"), h.quantile(0.95));
        self.gauge(format!("{prefix}/p99"), h.quantile(0.99));
    }

    /// Subtracts an earlier snapshot: counters become interval deltas
    /// (saturating at zero if a counter reset), gauges keep this
    /// snapshot's level. Paths absent from `earlier` keep their value;
    /// paths only in `earlier` are dropped.
    pub fn delta(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (path, v) in &self.map {
            let dv = match (v, earlier.map.get(path)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                _ => *v,
            };
            out.map.insert(path.clone(), dv);
        }
        out
    }

    /// Renders every reading as one JSON object per line:
    /// `{"path":"node/0/kernel/msgs_sent","kind":"counter","value":12}`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for (path, v) in &self.map {
            s.push_str("{\"path\":\"");
            s.push_str(&json_escape(path));
            s.push_str("\",");
            match v {
                MetricValue::Counter(c) => {
                    s.push_str(&format!("\"kind\":\"counter\",\"value\":{c}"));
                }
                MetricValue::Gauge(g) => {
                    s.push_str(&format!("\"kind\":\"gauge\",\"value\":{}", json_f64(*g)));
                }
            }
            s.push_str("}\n");
        }
        s
    }

    /// Renders readings as aligned text lines for the terminal report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for (path, v) in &self.map {
            match v {
                MetricValue::Counter(c) => s.push_str(&format!("  {path} = {c}\n")),
                MetricValue::Gauge(g) => s.push_str(&format!("  {path} = {g:.6}\n")),
            }
        }
        s
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; callers clamp).
pub(crate) fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}.0", v.trunc() as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_and_lookup() {
        let mut r = MetricsRegistry::new();
        r.counter("node/0/kernel/msgs_sent", 12);
        r.gauge("medium/utilization", 0.25);
        assert_eq!(r.counter_value("node/0/kernel/msgs_sent"), Some(12));
        assert_eq!(r.gauge_value("medium/utilization"), Some(0.25));
        assert_eq!(r.counter_value("medium/utilization"), None);
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 10);
        a.gauge("g", 0.5);
        let mut b = MetricsRegistry::new();
        b.counter("c", 25);
        b.gauge("g", 0.9);
        b.counter("new", 3);
        let d = b.delta(&a);
        assert_eq!(d.counter_value("c"), Some(15));
        assert_eq!(d.gauge_value("g"), Some(0.9));
        assert_eq!(d.counter_value("new"), Some(3));
    }

    #[test]
    fn delta_saturates_on_reset() {
        let mut a = MetricsRegistry::new();
        a.counter("c", 10);
        let mut b = MetricsRegistry::new();
        b.counter("c", 4); // counter reset between snapshots
        assert_eq!(b.delta(&a).counter_value("c"), Some(0));
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let mut r = MetricsRegistry::new();
        r.counter("a/b", 1);
        r.gauge("a/c", 0.5);
        r.gauge("a/d", 2.0);
        let jsonl = r.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"path\":\"a/b\",\"kind\":\"counter\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"path\":\"a/c\",\"kind\":\"gauge\",\"value\":0.5}"
        );
        // Whole gauges render with a decimal point so readers see a float.
        assert_eq!(
            lines[2],
            "{\"path\":\"a/d\",\"kind\":\"gauge\",\"value\":2.0}"
        );
    }

    #[test]
    fn non_finite_gauges_are_clamped() {
        let mut r = MetricsRegistry::new();
        r.gauge("bad", f64::NAN);
        r.gauge("inf", f64::INFINITY);
        assert_eq!(r.gauge_value("bad"), Some(0.0));
        assert_eq!(r.gauge_value("inf"), Some(0.0));
    }

    #[test]
    fn prefix_iteration() {
        let mut r = MetricsRegistry::new();
        r.counter("shard/0/x", 1);
        r.counter("shard/1/x", 2);
        r.counter("node/0/x", 3);
        let shard0: Vec<_> = r
            .iter_prefix("shard/0/")
            .map(|(k, _)| k.to_string())
            .collect();
        assert_eq!(shard0, ["shard/0/x"]);
        assert_eq!(r.iter_prefix("shard/").count(), 2);
    }

    #[test]
    fn summary_and_histogram_expansion() {
        use publishing_sim::stats::{LogHistogram, Summary};
        let mut s = Summary::new();
        s.record(2.0);
        s.record(4.0);
        let mut h = LogHistogram::new();
        h.record(8);
        let mut r = MetricsRegistry::new();
        r.summary("lat", &s);
        r.histogram("sz", &h);
        assert_eq!(r.counter_value("lat/count"), Some(2));
        assert_eq!(r.gauge_value("lat/mean"), Some(3.0));
        assert_eq!(r.counter_value("sz/p50"), Some(16)); // bucket upper bound
        assert_eq!(r.counter_value("sz/p95"), Some(16));
    }

    #[test]
    fn linear_histogram_expansion_has_percentiles() {
        use publishing_sim::stats::LinearHistogram;
        let mut h = LinearHistogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        let mut r = MetricsRegistry::new();
        r.linear_histogram("depth", &h);
        assert_eq!(r.counter_value("depth/count"), Some(100));
        let p50 = r.gauge_value("depth/p50").unwrap();
        let p95 = r.gauge_value("depth/p95").unwrap();
        let p99 = r.gauge_value("depth/p99").unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
