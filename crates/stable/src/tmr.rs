//! Triple modular redundancy for the recorder (§3.3.4).
//!
//! "In TMR, each component in a system is triplicated. Outputs from the
//! three parts are passed through a voting circuit which selects the
//! majority output. Thus any single component fault is automatically
//! recovered. If no two outputs are the same, an error condition is
//! flagged." We provide the voter, a wrapper that tracks per-replica fault
//! state, and the reliability arithmetic used to argue the recorder fails
//! much less often than the nodes it protects.

use publishing_sim::stats::Counter;

/// The outcome of a majority vote over three replica outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoteOutcome<T> {
    /// All three replicas agreed.
    Unanimous(T),
    /// Two agreed; the index of the dissenting replica is reported so it
    /// can be flagged for repair.
    Majority {
        /// The agreed value.
        value: T,
        /// The replica that disagreed.
        dissenter: usize,
    },
    /// No two outputs matched: the error condition of §3.3.4.
    NoMajority,
}

/// Votes over three replica outputs.
///
/// # Examples
///
/// ```
/// use publishing_stable::tmr::{vote, VoteOutcome};
///
/// assert_eq!(vote([1, 1, 1]), VoteOutcome::Unanimous(1));
/// assert_eq!(vote([1, 2, 1]), VoteOutcome::Majority { value: 1, dissenter: 1 });
/// assert_eq!(vote([1, 2, 3]), VoteOutcome::<i32>::NoMajority);
/// ```
pub fn vote<T: PartialEq>(outputs: [T; 3]) -> VoteOutcome<T> {
    let [a, b, c] = outputs;
    if a == b && b == c {
        VoteOutcome::Unanimous(a)
    } else if a == b {
        VoteOutcome::Majority {
            value: a,
            dissenter: 2,
        }
    } else if a == c {
        VoteOutcome::Majority {
            value: a,
            dissenter: 1,
        }
    } else if b == c {
        VoteOutcome::Majority {
            value: b,
            dissenter: 0,
        }
    } else {
        VoteOutcome::NoMajority
    }
}

/// A triplicated computation with per-replica fault injection and repair,
/// modelling one TMR-protected recorder component.
#[derive(Debug)]
pub struct TmrComponent {
    /// `true` while the replica produces wrong answers.
    faulty: [bool; 3],
    corrected: Counter,
    unrecoverable: Counter,
}

impl Default for TmrComponent {
    fn default() -> Self {
        Self::new()
    }
}

impl TmrComponent {
    /// Creates a healthy component.
    pub fn new() -> Self {
        TmrComponent {
            faulty: [false; 3],
            corrected: Counter::new(),
            unrecoverable: Counter::new(),
        }
    }

    /// Injects a stuck fault into replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn inject_fault(&mut self, i: usize) {
        self.faulty[i] = true;
    }

    /// Repairs replica `i` (component replacement).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn repair(&mut self, i: usize) {
        self.faulty[i] = false;
    }

    /// Returns the number of currently faulty replicas.
    pub fn faulty_count(&self) -> usize {
        self.faulty.iter().filter(|&&f| f).count()
    }

    /// Executes `f` on all three replicas and votes. A faulty replica's
    /// output is perturbed deterministically (bitwise NOT of a byte
    /// appended), modelling an arbitrary wrong answer.
    pub fn execute(&mut self, f: impl Fn() -> Vec<u8>) -> VoteOutcome<Vec<u8>> {
        let outs: [Vec<u8>; 3] = core::array::from_fn(|i| {
            let mut v = f();
            if self.faulty[i] {
                v.push(0xFF);
                if let Some(first) = v.first_mut() {
                    *first = !*first;
                }
            }
            v
        });
        let outcome = vote(outs);
        match &outcome {
            VoteOutcome::Majority { .. } => self.corrected.inc(),
            VoteOutcome::NoMajority => self.unrecoverable.inc(),
            VoteOutcome::Unanimous(_) => {}
        }
        outcome
    }

    /// Returns how many single faults the voter masked.
    pub fn corrected(&self) -> u64 {
        self.corrected.get()
    }

    /// Returns how many votes found no majority.
    pub fn unrecoverable(&self) -> u64 {
        self.unrecoverable.get()
    }
}

/// Reliability of a TMR system given per-replica reliability `r`:
/// the probability that at least two of three replicas work,
/// `r³ + 3·r²·(1−r)`.
///
/// # Panics
///
/// Panics unless `0.0 <= r <= 1.0`.
pub fn tmr_reliability(r: f64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "reliability out of range: {r}");
    r * r * r + 3.0 * r * r * (1.0 - r)
}

/// Mean time between unmaskable failures for a TMR system whose replicas
/// fail independently with MTBF `mtbf_hours`, assuming a repair/scrub
/// interval `scrub_hours` after which faulty replicas are replaced.
///
/// With failure rate λ = 1/MTBF per replica, the probability that two or
/// more replicas fail within one scrub interval is ≈ 3·(λΔ)² for small
/// λΔ; the system MTBF is Δ divided by that probability.
pub fn tmr_mtbf_hours(mtbf_hours: f64, scrub_hours: f64) -> f64 {
    assert!(mtbf_hours > 0.0 && scrub_hours > 0.0);
    let p_single = 1.0 - (-scrub_hours / mtbf_hours).exp();
    let p_system = 3.0 * p_single * p_single * (1.0 - p_single) + p_single.powi(3);
    if p_system <= f64::EPSILON {
        return f64::INFINITY;
    }
    scrub_hours / p_system
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_all_cases() {
        assert_eq!(vote([5, 5, 5]), VoteOutcome::Unanimous(5));
        assert_eq!(
            vote([5, 5, 9]),
            VoteOutcome::Majority {
                value: 5,
                dissenter: 2
            }
        );
        assert_eq!(
            vote([5, 9, 5]),
            VoteOutcome::Majority {
                value: 5,
                dissenter: 1
            }
        );
        assert_eq!(
            vote([9, 5, 5]),
            VoteOutcome::Majority {
                value: 5,
                dissenter: 0
            }
        );
        assert_eq!(vote([1, 2, 3]), VoteOutcome::<i32>::NoMajority);
    }

    #[test]
    fn single_fault_is_masked() {
        let mut c = TmrComponent::new();
        c.inject_fault(1);
        match c.execute(|| vec![42]) {
            VoteOutcome::Majority { value, dissenter } => {
                assert_eq!(value, vec![42]);
                assert_eq!(dissenter, 1);
            }
            other => panic!("expected majority, got {other:?}"),
        }
        assert_eq!(c.corrected(), 1);
        assert_eq!(c.unrecoverable(), 0);
    }

    #[test]
    fn double_fault_is_detected_not_masked() {
        let mut c = TmrComponent::new();
        c.inject_fault(0);
        c.inject_fault(2);
        // Both faulty replicas corrupt identically here, so they would
        // outvote the good one — the classic TMR common-mode caveat. Our
        // perturbation is deterministic, so this is exactly what happens.
        match c.execute(|| vec![42]) {
            VoteOutcome::Majority { value, dissenter } => {
                // The two faulty replicas agree with each other.
                assert_ne!(value, vec![42]);
                assert_eq!(dissenter, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn repair_restores_unanimity() {
        let mut c = TmrComponent::new();
        c.inject_fault(2);
        c.execute(|| vec![1]);
        c.repair(2);
        assert_eq!(c.execute(|| vec![1]), VoteOutcome::Unanimous(vec![1]));
        assert_eq!(c.faulty_count(), 0);
    }

    #[test]
    fn tmr_reliability_improves_good_components() {
        // TMR helps only when replicas are better than a coin flip.
        assert!(tmr_reliability(0.99) > 0.99);
        assert!(tmr_reliability(0.9) > 0.9);
        assert!(tmr_reliability(0.4) < 0.4);
        assert_eq!(tmr_reliability(1.0), 1.0);
        assert_eq!(tmr_reliability(0.0), 0.0);
    }

    #[test]
    fn tmr_mtbf_far_exceeds_component_mtbf() {
        // A 1000-hour component scrubbed daily: p(≥2 of 3 fail in one day)
        // ≈ 3·(0.024)² ≈ 1.7e-3, so the system survives ≈ 14,600 hours —
        // an order of magnitude past the component, and shrinking the
        // scrub interval widens the gap.
        let system = tmr_mtbf_hours(1000.0, 24.0);
        assert!(system > 10_000.0, "system MTBF {system}");
        assert!(tmr_mtbf_hours(1000.0, 1.0) > system * 10.0);
    }
}
