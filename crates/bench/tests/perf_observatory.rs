//! End-to-end tests for the perf observatory: bench-matrix determinism,
//! snapshot round-tripping, comparator gating, and Chrome-trace export
//! of a crash+replay run.

use publishing_bench::perf_matrix::{build_world, run_matrix, MatrixParams};
use publishing_obs::span::Stage;
use publishing_perf::compare::{compare, default_rules};
use publishing_perf::snapshot::Snapshot;
use publishing_perf::trace::{self, ChromeTrace};
use publishing_sim::time::SimTime;

/// Two matrix runs at the same seed must agree byte-for-byte on every
/// virtual-time metric and fingerprint. (Host readings — wall clock,
/// allocations — are excluded by `virtual_json` by design.)
#[test]
fn bench_matrix_virtual_metrics_are_deterministic() {
    let a = run_matrix(true);
    let b = run_matrix(true);
    assert_eq!(a.virtual_json(), b.virtual_json());
}

/// The full snapshot (host section included) survives its own JSON.
#[test]
fn snapshot_round_trips_through_json() {
    let snap = run_matrix(true);
    let text = snap.to_json();
    let back = Snapshot::from_json(&text).expect("own output parses");
    assert_eq!(text, back.to_json());
}

/// The comparator passes a snapshot against itself and fails it against
/// a doctored copy whose throughput halved.
#[test]
fn comparator_gates_an_injected_throughput_regression() {
    let prev = run_matrix(true);
    let same = Snapshot::from_json(&prev.to_json()).unwrap();
    assert_eq!(compare(&prev, &same, &default_rules()).exit_code(), 0);

    let mut worse = Snapshot::from_json(&prev.to_json()).unwrap();
    for sc in &mut worse.scenarios {
        // The capacity scenario carries knees instead of throughput;
        // skip scenarios without the doctored metric.
        let Some(&v) = sc.virt.get("events_per_virtual_sec") else {
            continue;
        };
        sc.virt("events_per_virtual_sec", v * 0.5);
    }
    let c = compare(&prev, &worse, &default_rules());
    assert_eq!(c.exit_code(), 1, "{}", c.render());
    assert!(c.regressions().count() >= 4, "{}", c.render());
}

/// Chrome-trace export of a crash+replay run: covers every lifecycle
/// stage the run exercises (publish through replay), carries one
/// process-name row per component, and round-trips through its own JSON
/// without loss.
#[test]
fn crash_replay_trace_covers_lifecycle_stages_and_round_trips() {
    let p = MatrixParams::new(true);
    let mut w = build_world(&p);
    w.run_until(SimTime::from_millis(50));
    w.crash_node(2);
    w.run_until(p.horizon);

    let mut components = Vec::new();
    for (n, k) in &w.kernels {
        components.push((format!("node {n} kernel"), k.spans()));
    }
    for (i, rn) in w.shards.iter().enumerate() {
        components.push((format!("shard {i} recorder"), rn.recorder().spans()));
    }
    let t = trace::from_spans(&components);

    for stage in [
        Stage::Publish,
        Stage::Capture,
        Stage::Sequence,
        Stage::Deliver,
        Stage::Replay,
    ] {
        assert!(t.has_stage(stage), "missing lifecycle stage {stage:?}");
    }
    // One metadata row per component plus the message-lifecycle lane.
    assert_eq!(t.count_phase('M'), components.len() + 1);
    // Stage-gap slices exist (publish→capture etc.).
    assert!(t.count_phase('X') > 0);

    let text = t.to_json();
    let back = ChromeTrace::from_json(&text).expect("own output parses");
    assert_eq!(text, back.to_json(), "trace JSON round-trip lost data");
    assert_eq!(t.events.len(), back.events.len());
}
