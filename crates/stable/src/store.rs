//! The recorder's stable store: a page-buffered message log plus
//! checkpoint storage, over one or more simulated disks.
//!
//! §4.5's pipeline: arriving messages are timestamped and appended to a
//! buffer; full buffers are written to disk as 4 KB pages (the batching
//! that removed the Figure 5.5 disk saturation); the process database
//! entry records which pages hold a process's messages. After a checkpoint
//! for a process is durable, its older messages and checkpoints become
//! invalid; pages whose records are all invalid are freed, and partially
//! valid pages are compacted by reading them back and rewriting the live
//! records ("before allocating a buffer to a disk page, the disk page is
//! read in … and the buffer is compacted").
//!
//! The open buffer is battery-backed solid-state memory per §3.3.4, so it
//! survives recorder crashes; [`StableStore::rebuild_index`] reconstructs
//! the in-memory index from pages plus that buffer, which is the recorder
//! recovery path ("it is possible to rebuild the data base from the
//! disk").

use crate::disk::{Disk, DiskOp, DiskParams, DiskResult, IoToken};
use publishing_sim::codec::{CodecError, Decoder, Encoder};
use publishing_sim::stats::Counter;
use publishing_sim::time::SimTime;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifies a stored message: destination process and receive-order
/// sequence number at that process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordKey {
    /// Destination process (opaque to the store).
    pub pid: u64,
    /// Receive-order sequence at the destination.
    pub seq: u64,
}

/// A stored message record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgRecord {
    /// Key (destination, receive order).
    pub key: RecordKey,
    /// Recorder timestamp.
    pub received_at: SimTime,
    /// The message bytes as seen on the wire.
    pub payload: Vec<u8>,
}

impl MsgRecord {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.key.pid)
            .u64(self.key.seq)
            .u64(self.received_at.as_nanos());
        e.bytes(&self.payload);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let pid = d.u64()?;
        let seq = d.u64()?;
        let at = d.u64()?;
        let payload = d.bytes()?;
        Ok(MsgRecord {
            key: RecordKey { pid, seq },
            received_at: SimTime::from_nanos(at),
            payload,
        })
    }
}

/// A durable checkpoint for a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Process the checkpoint belongs to.
    pub pid: u64,
    /// Messages with `seq < upto_seq` were consumed before this checkpoint
    /// and need not be replayed.
    pub upto_seq: u64,
    /// Encoded process state.
    pub blob: Vec<u8>,
}

const PAGE_KIND_MESSAGES: u8 = 0;
const PAGE_KIND_CHECKPOINT: u8 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// Still in the battery-backed open buffer.
    Open,
    /// On a disk page.
    Page(u64),
}

#[derive(Debug, Clone)]
struct RecordState {
    record: MsgRecord,
    location: Location,
    durable: bool,
    valid: bool,
}

#[derive(Debug)]
enum PendingIo {
    /// A message-page write; on completion these records become durable.
    PageWrite { keys: Vec<RecordKey> },
    /// One chunk of a checkpoint write.
    CheckpointWrite { pid: u64, ticket: u64 },
    /// A compaction read; contents already known, timing only.
    CompactionRead,
    /// A replay read issued for timing by the recovery path.
    ReplayRead,
    /// A page erase (purged process).
    Erase,
}

/// An IO the store asked its disks to perform; the driver must schedule a
/// callback to [`StableStore::on_disk_complete`] at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreIo {
    /// Index of the disk the operation went to.
    pub disk: usize,
    /// The disk's token for the operation.
    pub token: IoToken,
    /// Completion time.
    pub at: SimTime,
}

/// Events the store reports when IO completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// These message records became durable.
    MessagesDurable(Vec<RecordKey>),
    /// A checkpoint became fully durable and is now the process's latest;
    /// superseded messages and checkpoints were invalidated.
    CheckpointDurable {
        /// Process checkpointed.
        pid: u64,
        /// Replay floor established by the checkpoint.
        upto_seq: u64,
    },
    /// A timing-only read (compaction or replay) finished.
    ReadDone,
    /// Follow-up IO the store started while completing another (page
    /// erases after checkpoint GC); the driver must schedule it.
    FollowUpIo(StoreIo),
}

/// Counters the store maintains.
#[derive(Debug, Default, Clone)]
pub struct StoreStats {
    /// Messages appended.
    pub appended: Counter,
    /// Message pages written.
    pub pages_written: Counter,
    /// Pages freed because every record became invalid.
    pub pages_freed: Counter,
    /// Compaction passes performed.
    pub compactions: Counter,
    /// Records rewritten by compaction.
    pub records_compacted: Counter,
    /// Checkpoints made durable.
    pub checkpoints: Counter,
    /// Disk operations retried after an injected transient error.
    pub io_retries: Counter,
}

struct PendingCheckpoint {
    checkpoint: Checkpoint,
    pages_left: usize,
    pages: Vec<u64>,
}

/// The recorder's stable store.
pub struct StableStore {
    disks: Vec<Disk>,
    page_size: usize,
    /// Battery-backed open buffer of not-yet-flushed records.
    open: Vec<RecordKey>,
    open_bytes: usize,
    records: BTreeMap<RecordKey, RecordState>,
    /// Live (valid) record count per page.
    page_live: HashMap<u64, Vec<RecordKey>>,
    /// Invalidated records still physically present per page (compaction
    /// candidates; consulted by purge so no stale byte survives).
    page_dead: HashMap<u64, Vec<RecordKey>>,
    free_pages: BTreeSet<u64>,
    next_page: u64,
    pending: HashMap<(usize, IoToken), PendingIo>,
    /// Durable checkpoints by process.
    checkpoints: BTreeMap<u64, Checkpoint>,
    /// Pages holding each process's durable checkpoint.
    checkpoint_pages: BTreeMap<u64, Vec<u64>>,
    pending_checkpoints: HashMap<u64, PendingCheckpoint>,
    next_ticket: u64,
    stats: StoreStats,
}

impl StableStore {
    /// Creates a store over `n_disks` identical disks.
    ///
    /// # Panics
    ///
    /// Panics if `n_disks == 0`.
    pub fn new(params: DiskParams, n_disks: usize) -> Self {
        assert!(n_disks > 0, "at least one disk required");
        let page_size = params.page_size;
        StableStore {
            disks: (0..n_disks).map(|_| Disk::new(params.clone())).collect(),
            page_size,
            open: Vec::new(),
            open_bytes: 0,
            records: BTreeMap::new(),
            page_live: HashMap::new(),
            page_dead: HashMap::new(),
            free_pages: BTreeSet::new(),
            next_page: 0,
            pending: HashMap::new(),
            checkpoints: BTreeMap::new(),
            checkpoint_pages: BTreeMap::new(),
            pending_checkpoints: HashMap::new(),
            next_ticket: 0,
            stats: StoreStats::default(),
        }
    }

    /// Returns the store's counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Returns a disk's counters (for utilization reporting).
    pub fn disk_stats(&self, i: usize) -> &crate::disk::DiskStats {
        self.disks[i].stats()
    }

    /// Returns the number of disks.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Installs injected disk failure modes on every disk (seeds are
    /// varied per disk so their fault streams are independent). Transient
    /// errors are retried internally — see
    /// [`StableStore::on_disk_complete`] — so nothing above the store
    /// observes them except as latency.
    pub fn set_disk_faults(&mut self, faults: crate::disk::DiskFaults) {
        for (i, d) in self.disks.iter_mut().enumerate() {
            let mut f = faults.clone();
            f.seed = faults
                .seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            d.set_faults(f);
        }
    }

    fn alloc_page(&mut self) -> u64 {
        if let Some(&p) = self.free_pages.iter().next() {
            self.free_pages.remove(&p);
            p
        } else {
            let p = self.next_page;
            self.next_page += 1;
            p
        }
    }

    fn disk_for_page(&self, page: u64) -> usize {
        (page % self.disks.len() as u64) as usize
    }

    fn record_size(r: &MsgRecord) -> usize {
        // pid + seq + timestamp + length prefix + payload.
        8 + 8 + 8 + 8 + r.payload.len()
    }

    /// Appends a message to the log. Returns any disk IO started (a page
    /// flush when the open buffer filled).
    ///
    /// The record is immediately *stable* (battery-backed buffer) but not
    /// yet *durable*; [`StoreEvent::MessagesDurable`] reports durability.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate key — the recorder must deduplicate upstream.
    pub fn append_message(
        &mut self,
        now: SimTime,
        key: RecordKey,
        payload: Vec<u8>,
    ) -> Vec<StoreIo> {
        assert!(!self.records.contains_key(&key), "duplicate record {key:?}");
        let record = MsgRecord {
            key,
            received_at: now,
            payload,
        };
        let size = Self::record_size(&record);
        self.stats.appended.inc();
        self.records.insert(
            key,
            RecordState {
                record,
                location: Location::Open,
                durable: false,
                valid: true,
            },
        );
        self.open.push(key);
        self.open_bytes += size;
        if self.open_bytes + 1 >= self.page_size {
            self.flush(now)
        } else {
            Vec::new()
        }
    }

    /// Forces the open buffer to disk (checkpoint barriers, shutdown).
    pub fn flush(&mut self, now: SimTime) -> Vec<StoreIo> {
        if self.open.is_empty() {
            return Vec::new();
        }
        // Encode as many open records as fit in one page; loop if the
        // buffer somehow exceeds a page.
        let mut ios = Vec::new();
        while !self.open.is_empty() {
            let mut e = Encoder::with_capacity(self.page_size);
            e.u8(PAGE_KIND_MESSAGES);
            let mut taken = Vec::new();
            let mut count = 0u64;
            let mut body = Encoder::new();
            for &key in &self.open {
                let st = &self.records[&key];
                let size = Self::record_size(&st.record);
                if body.len() + size + e.len() + 8 > self.page_size && count > 0 {
                    break;
                }
                st.record.encode(&mut body);
                taken.push(key);
                count += 1;
            }
            e.u64(count);
            let body = body.finish();
            let mut buf = e.finish();
            buf.extend_from_slice(&body);
            assert!(buf.len() <= self.page_size, "page overflow: {}", buf.len());
            self.open.retain(|k| !taken.contains(k));
            let page = self.alloc_page();
            for &k in &taken {
                let st = self.records.get_mut(&k).expect("open record indexed");
                st.location = Location::Page(page);
            }
            self.page_live.insert(page, taken.clone());
            let disk = self.disk_for_page(page);
            let (token, at) = self.disks[disk].submit(now, DiskOp::Write { page, data: buf });
            self.pending
                .insert((disk, token), PendingIo::PageWrite { keys: taken });
            self.stats.pages_written.inc();
            ios.push(StoreIo { disk, token, at });
        }
        self.open_bytes = 0;
        ios
    }

    /// Begins writing a checkpoint; it becomes the process's latest when
    /// every chunk is durable ([`StoreEvent::CheckpointDurable`]).
    pub fn write_checkpoint(&mut self, now: SimTime, checkpoint: Checkpoint) -> Vec<StoreIo> {
        let pid = checkpoint.pid;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        // Chunk the blob into pages: kind, pid, upto_seq, chunk index,
        // total chunks, chunk bytes.
        let chunk_capacity = self.page_size - (1 + 8 + 8 + 8 + 8 + 8);
        let blob = &checkpoint.blob;
        let total = blob.len().div_ceil(chunk_capacity).max(1);
        let mut ios = Vec::new();
        let mut pages = Vec::new();
        for i in 0..total {
            let lo = i * chunk_capacity;
            let hi = ((i + 1) * chunk_capacity).min(blob.len());
            let mut e = Encoder::with_capacity(self.page_size);
            e.u8(PAGE_KIND_CHECKPOINT)
                .u64(pid)
                .u64(checkpoint.upto_seq)
                .u64(i as u64)
                .u64(total as u64);
            e.bytes(&blob[lo..hi]);
            let buf = e.finish();
            assert!(buf.len() <= self.page_size);
            let page = self.alloc_page();
            pages.push(page);
            let disk = self.disk_for_page(page);
            let (token, at) = self.disks[disk].submit(now, DiskOp::Write { page, data: buf });
            self.pending
                .insert((disk, token), PendingIo::CheckpointWrite { pid, ticket });
            ios.push(StoreIo { disk, token, at });
        }
        self.pending_checkpoints.insert(
            ticket,
            PendingCheckpoint {
                checkpoint,
                pages_left: total,
                pages,
            },
        );
        ios
    }

    /// Handles a disk completion; the driver calls this at the `at` time
    /// of a [`StoreIo`].
    pub fn on_disk_complete(&mut self, now: SimTime, io: StoreIo) -> Vec<StoreEvent> {
        let result = self.disks[io.disk].complete(now, io.token);
        let Some(pending) = self.pending.remove(&(io.disk, io.token)) else {
            return Vec::new();
        };
        // A transient disk error is retried in place: the same operation
        // goes back to the same disk and keeps its pending bookkeeping, so
        // layers above see nothing but added latency.
        if let DiskResult::TransientError { op } = result {
            self.stats.io_retries.inc();
            let (token, at) = self.disks[io.disk].submit(now, op);
            self.pending.insert((io.disk, token), pending);
            return vec![StoreEvent::FollowUpIo(StoreIo {
                disk: io.disk,
                token,
                at,
            })];
        }
        match (pending, result) {
            (PendingIo::PageWrite { keys }, DiskResult::Written { .. }) => {
                let mut durable = Vec::new();
                for k in keys {
                    if let Some(st) = self.records.get_mut(&k) {
                        st.durable = true;
                        if st.valid {
                            durable.push(k);
                        }
                    }
                }
                vec![StoreEvent::MessagesDurable(durable)]
            }
            (PendingIo::CheckpointWrite { pid, ticket }, DiskResult::Written { .. }) => {
                let done = {
                    let pc = self
                        .pending_checkpoints
                        .get_mut(&ticket)
                        .expect("pending checkpoint exists");
                    pc.pages_left -= 1;
                    pc.pages_left == 0
                };
                if !done {
                    return Vec::new();
                }
                let pc = self.pending_checkpoints.remove(&ticket).expect("checked");
                let upto_seq = pc.checkpoint.upto_seq;
                // Retire the previous checkpoint's pages, erasing them so
                // a stale floor cannot resurface at a rebuild.
                let mut retire_ios = Vec::new();
                if let Some(old) = self.checkpoint_pages.remove(&pid) {
                    for p in old {
                        self.free_pages.insert(p);
                        retire_ios.extend(self.erase_page(now, p));
                    }
                }
                self.checkpoint_pages.insert(pid, pc.pages);
                self.checkpoints.insert(pid, pc.checkpoint);
                self.stats.checkpoints.inc();
                // Invalidate superseded messages; physically erase any
                // page that became fully dead.
                let freed = self.invalidate_below(pid, upto_seq);
                let mut events = vec![StoreEvent::CheckpointDurable { pid, upto_seq }];
                for io in retire_ios {
                    events.push(StoreEvent::FollowUpIo(io));
                }
                for page in freed {
                    for io in self.erase_page(now, page) {
                        events.push(StoreEvent::FollowUpIo(io));
                    }
                }
                events
            }
            (PendingIo::CompactionRead, _) | (PendingIo::ReplayRead, _) => {
                vec![StoreEvent::ReadDone]
            }
            (PendingIo::Erase, _) => Vec::new(),
            _ => unreachable!("io kind/result mismatch"),
        }
    }

    fn invalidate_below(&mut self, pid: u64, upto_seq: u64) -> Vec<u64> {
        let keys: Vec<RecordKey> = self
            .records
            .range(RecordKey { pid, seq: 0 }..RecordKey { pid, seq: upto_seq })
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .filter_map(|k| self.invalidate(k))
            .collect()
    }

    /// Invalidates one record; returns the page number if this freed a
    /// whole page (the caller must erase it — stale bytes on freed pages
    /// would resurrect at the next rebuild).
    fn invalidate(&mut self, key: RecordKey) -> Option<u64> {
        let st = self.records.get_mut(&key)?;
        if !st.valid {
            return None;
        }
        st.valid = false;
        match st.location {
            Location::Open => {
                self.open.retain(|k| *k != key);
                self.open_bytes = self
                    .open_bytes
                    .saturating_sub(Self::record_size(&st.record));
                self.records.remove(&key);
                None
            }
            Location::Page(page) => {
                let mut freed = None;
                if let Some(live) = self.page_live.get_mut(&page) {
                    live.retain(|k| *k != key);
                    if live.is_empty() {
                        self.page_live.remove(&page);
                        self.page_dead.remove(&page);
                        self.free_pages.insert(page);
                        self.stats.pages_freed.inc();
                        freed = Some(page);
                    } else {
                        self.page_dead.entry(page).or_default().push(key);
                    }
                }
                self.records.remove(&key);
                freed
            }
        }
    }

    /// Invalidates a single record (precise GC for consumed-out-of-order
    /// messages whose arrival sequence lies above the conservative
    /// checkpoint floor). Returns erase IO if a page became fully dead.
    pub fn invalidate_record(&mut self, now: SimTime, key: RecordKey) -> Vec<StoreIo> {
        match self.invalidate(key) {
            Some(page) => self.erase_page(now, page),
            None => Vec::new(),
        }
    }

    /// Removes every trace of a destroyed process (messages, checkpoints).
    ///
    /// Checkpoint pages are physically erased (not merely freed): a
    /// destroyed process must not be resurrected by a later
    /// [`StableStore::rebuild_index`] scan of stale pages. Returns the
    /// erase IO started, if any.
    pub fn purge_process(&mut self, now: SimTime, pid: u64) -> Vec<StoreIo> {
        let keys: Vec<RecordKey> = self
            .records
            .range(RecordKey { pid, seq: 0 }..=RecordKey { pid, seq: u64::MAX })
            .map(|(k, _)| *k)
            .collect();
        // Pages physically holding any of this process's records — live
        // or already-invalidated-but-not-yet-compacted — must be erased:
        // stale bytes would otherwise resurrect the process at the next
        // rebuild (its checkpoint floor dies with it). Shared pages are
        // compacted (survivors move to the open buffer) first.
        let mut touched: BTreeSet<u64> = keys
            .iter()
            .filter_map(|k| match self.records.get(k).map(|st| st.location) {
                Some(Location::Page(p)) => Some(p),
                _ => None,
            })
            .collect();
        touched.extend(
            self.page_dead
                .iter()
                .filter(|(_, dead)| dead.iter().any(|k| k.pid == pid))
                .map(|(p, _)| *p),
        );
        for k in keys {
            let _ = self.invalidate(k);
        }
        let mut ios = Vec::new();
        for page in touched {
            if let Some(live) = self.page_live.remove(&page) {
                // Other processes' records share the page: rewrite them.
                self.page_dead.remove(&page);
                self.stats.compactions.inc();
                self.stats.records_compacted.add(live.len() as u64);
                for k in &live {
                    let st = self.records.get_mut(k).expect("live record indexed");
                    st.location = Location::Open;
                    st.durable = false;
                    self.open_bytes += Self::record_size(&st.record);
                    self.open.push(*k);
                }
            }
            self.free_pages.insert(page);
            ios.extend(self.erase_page(now, page));
            if self.open_bytes + 1 >= self.page_size {
                ios.extend(self.flush(now));
            }
        }
        self.checkpoints.remove(&pid);
        if let Some(pages) = self.checkpoint_pages.remove(&pid) {
            for page in pages {
                self.free_pages.insert(page);
                ios.extend(self.erase_page(now, page));
            }
        }
        ios
    }

    fn erase_page(&mut self, now: SimTime, page: u64) -> Vec<StoreIo> {
        let disk = self.disk_for_page(page);
        let (token, at) = self.disks[disk].submit(
            now,
            DiskOp::Write {
                page,
                data: Vec::new(),
            },
        );
        self.pending.insert((disk, token), PendingIo::Erase);
        vec![StoreIo { disk, token, at }]
    }

    /// Compacts the fullest-invalid page: reads it back (timing) and
    /// rewrites its live records into the open buffer. Returns the IO
    /// started, or an empty vector if nothing needs compaction.
    pub fn compact_one(&mut self, now: SimTime) -> Vec<StoreIo> {
        // Compact the page carrying the most dead space; a page with no
        // invalidated records is not worth rewriting.
        let Some((&page, _)) = self
            .page_dead
            .iter()
            .filter(|(_, dead)| !dead.is_empty())
            .max_by_key(|(p, dead)| (dead.len(), std::cmp::Reverse(**p)))
        else {
            return Vec::new();
        };
        let live = self.page_live.remove(&page).expect("selected");
        self.page_dead.remove(&page);
        self.stats.compactions.inc();
        self.stats.records_compacted.add(live.len() as u64);
        // Move the survivors back to the open buffer.
        for k in &live {
            let st = self.records.get_mut(k).expect("live record indexed");
            st.location = Location::Open;
            st.durable = false;
            self.open_bytes += Self::record_size(&st.record);
            self.open.push(*k);
        }
        self.free_pages.insert(page);
        // Timing-only read of the old page, then a physical erase so the
        // stale copy cannot resurrect at a rebuild.
        let disk = self.disk_for_page(page);
        let (token, at) = self.disks[disk].submit(now, DiskOp::Read { page });
        self.pending
            .insert((disk, token), PendingIo::CompactionRead);
        let mut ios = vec![StoreIo { disk, token, at }];
        ios.extend(self.erase_page(now, page));
        if self.open_bytes + 1 >= self.page_size {
            ios.extend(self.flush(now));
        }
        ios
    }

    /// Returns the latest durable checkpoint for `pid`.
    pub fn latest_checkpoint(&self, pid: u64) -> Option<&Checkpoint> {
        self.checkpoints.get(&pid)
    }

    /// Returns the stored messages for `pid` with `seq >= from_seq`, in
    /// sequence order. Contents are exact; use [`StableStore::replay_reads`]
    /// to charge the disk time for fetching them.
    pub fn messages_from(&self, pid: u64, from_seq: u64) -> Vec<MsgRecord> {
        self.records
            .range(RecordKey { pid, seq: from_seq }..=RecordKey { pid, seq: u64::MAX })
            .filter(|(_, st)| st.valid)
            .map(|(_, st)| st.record.clone())
            .collect()
    }

    /// Issues timing reads for the pages holding `pid`'s replayable
    /// messages; the driver waits for their completions before replaying.
    pub fn replay_reads(&mut self, now: SimTime, pid: u64, from_seq: u64) -> Vec<StoreIo> {
        let mut pages = BTreeSet::new();
        for (_, st) in self
            .records
            .range(RecordKey { pid, seq: from_seq }..=RecordKey { pid, seq: u64::MAX })
        {
            if let Location::Page(p) = st.location {
                pages.insert(p);
            }
        }
        let mut ios = Vec::new();
        for page in pages {
            let disk = self.disk_for_page(page);
            let (token, at) = self.disks[disk].submit(now, DiskOp::Read { page });
            self.pending.insert((disk, token), PendingIo::ReplayRead);
            ios.push(StoreIo { disk, token, at });
        }
        ios
    }

    /// Rebuilds the in-memory index from durable pages plus the
    /// battery-backed open buffer — the §3.3.4 recorder restart scan.
    ///
    /// Returns the set of process ids that have state in the store.
    pub fn rebuild_index(&mut self) -> BTreeSet<u64> {
        // Preserve the open (battery-backed) records.
        let open_records: Vec<MsgRecord> = self
            .open
            .iter()
            .filter_map(|k| self.records.get(k).map(|st| st.record.clone()))
            .collect();
        self.records.clear();
        self.page_live.clear();
        self.page_dead.clear();
        self.checkpoints.clear();
        self.checkpoint_pages.clear();
        self.free_pages.clear();
        self.open.clear();
        self.open_bytes = 0;

        // Scan every durable page on every disk. Chunk tuples are
        // (index, bytes, page, total).
        type Chunk = (u64, Vec<u8>, u64, u64);
        let mut checkpoint_chunks: BTreeMap<(u64, u64), Vec<Chunk>> = BTreeMap::new();
        let mut max_page = 0u64;
        let mut message_pages: Vec<(u64, Vec<MsgRecord>)> = Vec::new();
        for disk in &self.disks {
            for (page, data) in disk.pages() {
                max_page = max_page.max(page + 1);
                if data.is_empty() {
                    continue;
                }
                let mut d = Decoder::new(data);
                match d.u8() {
                    Ok(PAGE_KIND_MESSAGES) => {
                        let Ok(count) = d.u64() else { continue };
                        let mut recs = Vec::new();
                        for _ in 0..count {
                            match MsgRecord::decode(&mut d) {
                                Ok(r) => recs.push(r),
                                Err(_) => break,
                            }
                        }
                        message_pages.push((page, recs));
                    }
                    Ok(PAGE_KIND_CHECKPOINT) => {
                        let (Ok(pid), Ok(upto), Ok(idx), Ok(total), Ok(bytes)) =
                            (d.u64(), d.u64(), d.u64(), d.u64(), d.bytes())
                        else {
                            continue;
                        };
                        checkpoint_chunks
                            .entry((pid, upto))
                            .or_default()
                            .push((idx, bytes, page, total));
                    }
                    _ => {}
                }
            }
        }
        self.next_page = self.next_page.max(max_page);

        // Reassemble checkpoints; keep the one with the highest watermark
        // per process.
        for ((pid, upto), mut chunks) in checkpoint_chunks {
            chunks.sort_by_key(|c| c.0);
            chunks.dedup_by_key(|c| c.0);
            // A checkpoint interrupted by the crash is incomplete; it
            // never "happened" — the previous one remains authoritative.
            let total = chunks.first().map(|c| c.3).unwrap_or(0) as usize;
            let complete =
                chunks.len() == total && chunks.iter().enumerate().all(|(i, c)| c.0 == i as u64);
            if !complete {
                for c in chunks {
                    self.free_pages.insert(c.2);
                    let disk = self.disk_for_page(c.2);
                    self.disks[disk].wipe_page(c.2);
                }
                continue;
            }
            let blob: Vec<u8> = chunks.iter().flat_map(|c| c.1.iter().copied()).collect();
            let pages: Vec<u64> = chunks.iter().map(|c| c.2).collect();
            let better = self
                .checkpoints
                .get(&pid)
                .map(|c| c.upto_seq < upto)
                .unwrap_or(true);
            if better {
                if let Some(old) = self.checkpoint_pages.remove(&pid) {
                    for p in old {
                        self.free_pages.insert(p);
                        let disk = self.disk_for_page(p);
                        self.disks[disk].wipe_page(p);
                    }
                }
                self.checkpoints.insert(
                    pid,
                    Checkpoint {
                        pid,
                        upto_seq: upto,
                        blob,
                    },
                );
                self.checkpoint_pages.insert(pid, pages);
            } else {
                for p in pages {
                    self.free_pages.insert(p);
                    let disk = self.disk_for_page(p);
                    self.disks[disk].wipe_page(p);
                }
            }
        }

        // Re-index message records, dropping ones superseded by
        // checkpoints — but remembering the dropped ones as dead bytes on
        // their page, so compaction and purge keep scrubbing them.
        for (page, recs) in message_pages {
            let mut live = Vec::new();
            for r in recs {
                let floor = self
                    .checkpoints
                    .get(&r.key.pid)
                    .map(|c| c.upto_seq)
                    .unwrap_or(0);
                if r.key.seq < floor || self.records.contains_key(&r.key) {
                    self.page_dead.entry(page).or_default().push(r.key);
                    continue;
                }
                live.push(r.key);
                self.records.insert(
                    r.key,
                    RecordState {
                        record: r,
                        location: Location::Page(page),
                        durable: true,
                        valid: true,
                    },
                );
            }
            if live.is_empty() {
                self.free_pages.insert(page);
                self.page_dead.remove(&page);
                let disk = self.disk_for_page(page);
                self.disks[disk].wipe_page(page);
            } else {
                self.page_live.insert(page, live);
            }
        }

        // Restore the battery-backed open buffer.
        for r in open_records {
            let floor = self
                .checkpoints
                .get(&r.key.pid)
                .map(|c| c.upto_seq)
                .unwrap_or(0);
            if r.key.seq < floor || self.records.contains_key(&r.key) {
                continue;
            }
            let key = r.key;
            self.open_bytes += Self::record_size(&r);
            self.open.push(key);
            self.records.insert(
                key,
                RecordState {
                    record: r,
                    location: Location::Open,
                    durable: false,
                    valid: true,
                },
            );
        }

        let mut pids: BTreeSet<u64> = self.records.keys().map(|k| k.pid).collect();
        pids.extend(self.checkpoints.keys().copied());
        pids
    }

    /// Simulates loss of non-battery-backed state at a recorder crash: the
    /// in-memory index vanishes (callers must [`StableStore::rebuild_index`])
    /// but durable pages and the battery-backed buffer survive.
    pub fn crash_volatile_state(&mut self) {
        // The index is exactly what rebuild_index reconstructs; dropping
        // and rebuilding is the honest simulation of the crash — with two
        // physical effects layered on top. First, the battery-backed
        // controller holds each flushed page image until the disk
        // acknowledges it, so records riding an in-flight page write are
        // still protected: they return to the open buffer (otherwise a
        // crash between `flush` and its completion would lose records the
        // store had already reported durable before a compaction moved
        // them). Second, with torn writes enabled (see
        // [`crate::disk::DiskFaults`]) each in-flight write leaves a
        // partial page, which the rebuild scan tolerates as a truncated
        // decode. All other in-flight bookkeeping dies with the host.
        let mut inflight: Vec<((usize, IoToken), PendingIo)> =
            std::mem::take(&mut self.pending).into_iter().collect();
        inflight.sort_by_key(|(k, _)| *k);
        for (_, p) in inflight {
            let PendingIo::PageWrite { keys } = p else {
                continue;
            };
            for k in keys {
                let Some(st) = self.records.get_mut(&k) else {
                    continue;
                };
                if !st.durable && st.valid && st.location != Location::Open {
                    st.location = Location::Open;
                    self.open_bytes += Self::record_size(&st.record);
                    self.open.push(k);
                }
            }
        }
        self.pending_checkpoints.clear();
        for d in &mut self.disks {
            d.crash_tear_inflight();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_sim::time::SimDuration;

    fn store(n_disks: usize) -> StableStore {
        StableStore::new(DiskParams::default(), n_disks)
    }

    fn key(pid: u64, seq: u64) -> RecordKey {
        RecordKey { pid, seq }
    }

    /// Drives all outstanding IO to completion, collecting events.
    fn drain(s: &mut StableStore, ios: Vec<StoreIo>) -> Vec<StoreEvent> {
        let mut events = Vec::new();
        let mut queue = ios;
        while let Some(io) = queue.pop() {
            events.extend(s.on_disk_complete(io.at, io));
        }
        events
    }

    #[test]
    fn append_buffers_until_page_full() {
        let mut s = store(1);
        let mut ios = Vec::new();
        // 100-byte payloads: ~132 bytes per record; a 4 KB page fits ~30.
        for i in 0..40u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![0xAA; 100]));
        }
        assert!(!ios.is_empty(), "a flush should have happened");
        assert!(s.stats().pages_written.get() >= 1);
    }

    #[test]
    fn messages_durable_event_after_flush() {
        let mut s = store(1);
        let mut ios = Vec::new();
        for i in 0..5u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![1; 10]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        let events = drain(&mut s, ios);
        let durable: Vec<RecordKey> = events
            .iter()
            .flat_map(|e| match e {
                StoreEvent::MessagesDurable(ks) => ks.clone(),
                _ => vec![],
            })
            .collect();
        assert_eq!(durable.len(), 5);
    }

    #[test]
    fn messages_from_returns_in_order() {
        let mut s = store(1);
        for i in [3u64, 1, 2, 0] {
            s.append_message(SimTime::ZERO, key(7, i), vec![i as u8]);
        }
        let msgs = s.messages_from(7, 1);
        let seqs: Vec<u64> = msgs.iter().map(|m| m.key.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn checkpoint_invalidates_older_messages() {
        let mut s = store(1);
        let mut ios = Vec::new();
        for i in 0..10u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![0; 50]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        drain(&mut s, ios);
        let cp = Checkpoint {
            pid: 1,
            upto_seq: 6,
            blob: vec![9; 100],
        };
        let ios = s.write_checkpoint(SimTime::from_millis(100), cp.clone());
        let events = drain(&mut s, ios);
        assert!(events.iter().any(|e| matches!(
            e,
            StoreEvent::CheckpointDurable {
                pid: 1,
                upto_seq: 6
            }
        )));
        assert_eq!(s.latest_checkpoint(1), Some(&cp));
        let remaining = s.messages_from(1, 0);
        assert_eq!(remaining.len(), 4);
        assert!(remaining.iter().all(|m| m.key.seq >= 6));
    }

    #[test]
    fn fully_invalid_page_is_freed() {
        let mut s = store(1);
        let mut ios = Vec::new();
        for i in 0..10u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![0; 300]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        drain(&mut s, ios);
        let pages_before = s.stats().pages_written.get();
        assert!(pages_before >= 1);
        let ios = s.write_checkpoint(
            SimTime::from_millis(50),
            Checkpoint {
                pid: 1,
                upto_seq: 100,
                blob: vec![1],
            },
        );
        drain(&mut s, ios);
        assert!(s.stats().pages_freed.get() >= 1);
        assert!(s.messages_from(1, 0).is_empty());
    }

    #[test]
    fn large_checkpoint_spans_pages() {
        let mut s = store(2);
        // 20 KB blob: needs 5+ pages.
        let cp = Checkpoint {
            pid: 3,
            upto_seq: 0,
            blob: vec![7; 20_000],
        };
        let ios = s.write_checkpoint(SimTime::ZERO, cp.clone());
        assert!(ios.len() >= 5);
        let events = drain(&mut s, ios);
        assert!(events
            .iter()
            .any(|e| matches!(e, StoreEvent::CheckpointDurable { pid: 3, .. })));
        assert_eq!(s.latest_checkpoint(3).unwrap().blob, cp.blob);
    }

    #[test]
    fn rebuild_recovers_durable_and_open_state() {
        let mut s = store(2);
        let mut ios = Vec::new();
        for i in 0..30u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![i as u8; 200]));
        }
        // Leave some records in the open buffer (battery-backed).
        ios.extend(s.append_message(SimTime::ZERO, key(2, 0), vec![0xEE; 10]));
        drain(&mut s, ios);
        let cp = Checkpoint {
            pid: 1,
            upto_seq: 5,
            blob: vec![3; 5000],
        };
        let ios = s.write_checkpoint(SimTime::from_millis(1), cp.clone());
        drain(&mut s, ios);

        let before_1 = s.messages_from(1, 0);
        let before_2 = s.messages_from(2, 0);
        let pids = s.rebuild_index();
        assert!(pids.contains(&1) && pids.contains(&2));
        assert_eq!(s.messages_from(1, 0), before_1);
        assert_eq!(s.messages_from(2, 0), before_2);
        assert_eq!(s.latest_checkpoint(1), Some(&cp));
    }

    #[test]
    fn compaction_rewrites_survivors() {
        let mut s = store(1);
        let mut ios = Vec::new();
        // Two processes interleaved on the same pages.
        for i in 0..10u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![1; 150]));
            ios.extend(s.append_message(SimTime::ZERO, key(2, i), vec![2; 150]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        drain(&mut s, ios);
        // Invalidate process 1's records: pages become half-live.
        let ios = s.write_checkpoint(
            SimTime::from_millis(1),
            Checkpoint {
                pid: 1,
                upto_seq: 100,
                blob: vec![0],
            },
        );
        drain(&mut s, ios);
        let t = SimTime::from_millis(50);
        let ios = s.compact_one(t);
        assert!(!ios.is_empty());
        drain(&mut s, ios);
        assert!(s.stats().compactions.get() >= 1);
        // Process 2's messages all survive compaction.
        assert_eq!(s.messages_from(2, 0).len(), 10);
    }

    #[test]
    fn replay_reads_cover_message_pages() {
        let mut s = store(1);
        let mut ios = Vec::new();
        for i in 0..60u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![0; 150]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        drain(&mut s, ios);
        let reads = s.replay_reads(SimTime::from_millis(10), 1, 0);
        assert!(
            reads.len() >= 2,
            "60 × ~180 B should span ≥2 pages, got {}",
            reads.len()
        );
        let events = drain(&mut s, reads);
        assert!(events.iter().all(|e| matches!(e, StoreEvent::ReadDone)));
    }

    #[test]
    fn purge_removes_everything_for_process() {
        let mut s = store(1);
        let mut ios = Vec::new();
        for i in 0..5u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(4, i), vec![0; 20]));
        }
        ios.extend(s.write_checkpoint(
            SimTime::ZERO,
            Checkpoint {
                pid: 4,
                upto_seq: 2,
                blob: vec![1],
            },
        ));
        drain(&mut s, ios);
        let erase = s.purge_process(SimTime::from_millis(5), 4);
        assert!(!erase.is_empty(), "checkpoint pages are erased");
        drain(&mut s, erase);
        assert!(s.messages_from(4, 0).is_empty());
        assert!(s.latest_checkpoint(4).is_none());
        // Rebuild must not resurrect the purged process.
        let pids = s.rebuild_index();
        assert!(!pids.contains(&4));
    }

    #[test]
    fn multi_disk_striping_spreads_pages() {
        let mut s = store(3);
        let mut ios = Vec::new();
        for i in 0..200u64 {
            ios.extend(s.append_message(SimTime::ZERO, key(1, i), vec![0; 200]));
        }
        ios.extend(s.flush(SimTime::ZERO));
        let disks_used: BTreeSet<usize> = ios.iter().map(|io| io.disk).collect();
        assert!(disks_used.len() >= 2, "striping should use several disks");
        drain(&mut s, ios);
    }

    #[test]
    fn flush_time_reflects_disk_service() {
        let mut s = store(1);
        s.append_message(SimTime::ZERO, key(1, 0), vec![0; 10]);
        let ios = s.flush(SimTime::ZERO);
        assert_eq!(ios.len(), 1);
        // Less than a full page, so service is latency + size/rate; at
        // minimum the 3 ms positioning latency.
        assert!(ios[0].at >= SimTime::ZERO + SimDuration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "duplicate record")]
    fn duplicate_append_rejected() {
        let mut s = store(1);
        s.append_message(SimTime::ZERO, key(1, 0), vec![]);
        s.append_message(SimTime::ZERO, key(1, 0), vec![]);
    }
}
