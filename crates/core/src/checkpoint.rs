//! Checkpoint policies (§3.2.3, §3.2.4, §5.1).
//!
//! Publishing makes checkpoints a pure performance knob: "a suboptimum
//! choice of checkpointing frequency will yield less than optimum
//! performance, but it will not affect the recoverability of a process"
//! (§3.3.1). The recorder evaluates one of these policies per process and
//! sends `REQUEST_CHECKPOINT` when due.

use crate::recorder::ProcessEntry;
use crate::recovery_time::LoadParams;
use publishing_sim::time::{SimDuration, SimTime};

/// When to checkpoint a process.
#[derive(Debug, Clone)]
pub enum CheckpointPolicy {
    /// Never checkpoint (recovery always restarts from the initial state).
    Never,
    /// Fixed interval per process.
    Periodic(SimDuration),
    /// §5.1's storage-balancing rule: "a process is checkpointed whenever
    /// its published message storage exceeds its checkpoint size."
    StorageExceedsCheckpoint,
    /// Young's first-order optimum interval √(2·Ts·Tf) (§3.2.4), given
    /// the checkpoint-save time Ts and expected MTBF Tf.
    Young {
        /// Time to save one checkpoint.
        t_s: SimDuration,
        /// Mean time between failures.
        t_f: SimDuration,
    },
    /// Checkpoint whenever the §3.2.3 recovery-time bound t_max would
    /// exceed the per-process target — the mechanism behind "arbitrarily
    /// bounded recovery time".
    BoundedRecovery {
        /// The recovery-time budget.
        target: SimDuration,
        /// Measured load parameters.
        load: LoadParams,
    },
}

/// Computes Young's optimum interval √(2·Ts·Tf).
pub fn young_interval(t_s: SimDuration, t_f: SimDuration) -> SimDuration {
    let prod = 2.0 * t_s.as_secs_f64() * t_f.as_secs_f64();
    SimDuration::from_secs_f64(prod.sqrt())
}

/// Young's expected checkpoint-plus-rework cost per unit time, for
/// checkpoint interval `t_c`: overhead ≈ Ts/Tc + Tc/(2·Tf). Minimized at
/// [`young_interval`]; the benches sweep `t_c` to verify the minimum.
pub fn young_overhead(t_c: SimDuration, t_s: SimDuration, t_f: SimDuration) -> f64 {
    let tc = t_c.as_secs_f64();
    let ts = t_s.as_secs_f64();
    let tf = t_f.as_secs_f64();
    ts / tc + tc / (2.0 * tf)
}

impl CheckpointPolicy {
    /// Returns `true` if `entry` is due for a checkpoint at `now`.
    pub fn due(&self, now: SimTime, entry: &ProcessEntry) -> bool {
        if entry.recovering {
            return false;
        }
        let since = now.saturating_since(entry.estimator.checkpoint_at);
        match self {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::Periodic(interval) => since >= *interval,
            CheckpointPolicy::StorageExceedsCheckpoint => {
                let checkpoint_size = entry
                    .checkpoint_image
                    .as_ref()
                    .map(|i| i.len() as u64)
                    .unwrap_or(256);
                entry.bytes_since_checkpoint > checkpoint_size
            }
            CheckpointPolicy::Young { t_s, t_f } => since >= young_interval(*t_s, *t_f),
            CheckpointPolicy::BoundedRecovery { target, load } => {
                // The recorder approximates t_since by wall time since the
                // checkpoint — conservative for mostly-idle processes.
                let reload = entry.estimator.t_reload(load);
                let replay = entry.estimator.t_replay(load);
                let compute = since.mul_f64(1.0 / load.f_cpu);
                reload + replay + compute >= *target
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use publishing_demos::ids::ProcessId;

    fn recorder_with_entry() -> (crate::recorder::Recorder, ProcessId) {
        use crate::recorder::{PublishCost, Recorder};
        use publishing_stable::disk::DiskParams;
        let mut r = Recorder::new(
            publishing_demos::ids::NodeId(9),
            DiskParams::default(),
            1,
            PublishCost::MediaLayer,
        );
        let pid = ProcessId::new(1, 1);
        let ios = r.on_created(SimTime::ZERO, pid, "echo", vec![], true);
        for io in ios {
            r.on_disk(io.at, io);
        }
        (r, pid)
    }

    #[test]
    fn young_interval_formula() {
        // √(2 · 1 s · 200 s) = 20 s.
        let i = young_interval(SimDuration::from_secs(1), SimDuration::from_secs(200));
        assert_eq!(i, SimDuration::from_secs(20));
    }

    #[test]
    fn young_overhead_minimized_at_optimum() {
        let t_s = SimDuration::from_secs(1);
        let t_f = SimDuration::from_secs(200);
        let opt = young_interval(t_s, t_f);
        let at_opt = young_overhead(opt, t_s, t_f);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let t_c = opt.mul_f64(factor);
            assert!(young_overhead(t_c, t_s, t_f) > at_opt, "factor {factor}");
        }
    }

    #[test]
    fn periodic_policy_fires_after_interval() {
        let (r, pid) = recorder_with_entry();
        let e = r.entry(pid).unwrap();
        let p = CheckpointPolicy::Periodic(SimDuration::from_secs(5));
        assert!(!p.due(SimTime::from_secs(3), e));
        // The initial checkpoint became durable a few ms after t = 0, so
        // give the interval a little slack.
        assert!(p.due(SimTime::from_secs(6), e));
    }

    #[test]
    fn never_policy_never_fires() {
        let (r, pid) = recorder_with_entry();
        let e = r.entry(pid).unwrap();
        assert!(!CheckpointPolicy::Never.due(SimTime::from_secs(1_000_000), e));
    }

    #[test]
    fn bounded_recovery_fires_as_t_max_grows() {
        let (r, pid) = recorder_with_entry();
        let e = r.entry(pid).unwrap();
        let p = CheckpointPolicy::BoundedRecovery {
            target: SimDuration::from_secs(1),
            load: crate::recovery_time::LoadParams::figure_3_1(),
        };
        assert!(!p.due(SimTime::from_millis(200), e));
        // At f_cpu = 0.5, 600 ms of elapsed time alone costs 1.2 s to redo.
        assert!(p.due(SimTime::from_millis(600), e));
    }

    #[test]
    fn recovering_process_is_never_due() {
        let (mut r, pid) = recorder_with_entry();
        r.set_recovering(pid, true);
        let e = r.entry(pid).unwrap();
        let p = CheckpointPolicy::Periodic(SimDuration::from_nanos(1));
        assert!(!p.due(SimTime::from_secs(100), e));
    }
}
