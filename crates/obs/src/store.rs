//! Columnar storage engine behind [`SpanLog`](crate::span::SpanLog).
//!
//! The row-oriented ring kept every retained [`SpanEvent`] as a full
//! 56-byte struct; at the default 65 536-event capacity that is ~3.7 MB
//! *per component*, and ROADMAP item 3 notes span volume already
//! dominates large runs. This module stores the same events as
//! struct-of-arrays columns with three compressions that exploit the
//! shape of real lifecycle streams:
//!
//! - **delta timestamps and emission numbers** — events are recorded in
//!   virtual-time order per component, so `at` and `seq` are stored as
//!   u32/u8 deltas from the previous retained row;
//! - **interned identities** — sender and subject process ids come from
//!   a tiny pid space, so both columns hold u32 symbols into one
//!   [`Interner`];
//! - **packed stage bits** — the subject symbol and the 4-bit stage
//!   share one u32.
//!
//! A packed row is 17 bytes (vs 56), a 3.3× cut. Rows whose fields
//! overflow the narrow widths (a >4.29 s time gap, a >255 seq delta, an
//! out-of-range aux) *escape*: the columns carry a sentinel and the full
//! event lives in a side map keyed by the row's monotone id, removed
//! again when the row is evicted. Reconstruction is exact — iteration
//! replays the deltas through running accumulators and yields
//! byte-identical [`SpanEvent`]s, which the `columnar_props` proptest
//! suite pins against the retained [`RowSpanLog`] reference
//! implementation.
//!
//! Per-stage sampling ([`SampleSpec`]) and the fingerprint live in the
//! [`SpanLog`](crate::span::SpanLog) wrapper: the store only ever sees
//! events the log decided to retain, so fingerprints stay independent of
//! storage policy.

use crate::span::{fnv_fold_event, MsgKey, SpanEvent, Stage, FNV_OFFSET};
use publishing_sim::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Bytes one packed columnar row occupies across the six columns.
pub const PACKED_ROW_BYTES: usize = 4 + 1 + 4 + 2 + 4 + 2;

/// Escape sentinel in the sender-symbol column: the row's full event is
/// in the side map.
const ESCAPED: u32 = u32::MAX;

/// Maximum subject symbol that fits next to the 4 stage bits.
const MAX_SUBJECT_SYM: u32 = (1 << 28) - 1;

/// Interns u64 identities (packed process ids, station ids) to dense
/// u32 symbols. Symbols are never evicted — the pid space is tiny and
/// stable, so the table stays a few dozen entries for the life of a
/// run.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    values: Vec<u64>,
    symbols: BTreeMap<u64, u32>,
}

impl Interner {
    /// Returns the symbol for `value`, allocating one on first sight.
    pub fn intern(&mut self, value: u64) -> u32 {
        if let Some(&s) = self.symbols.get(&value) {
            return s;
        }
        let s = self.values.len() as u32;
        self.values.push(value);
        self.symbols.insert(value, s);
        s
    }

    /// Returns the value a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics when the symbol was never allocated by this interner.
    pub fn resolve(&self, symbol: u32) -> u64 {
        self.values[symbol as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Per-stage sampling policy: keep every `n`-th event of a stage.
///
/// The default keeps everything (`n = 1` for every stage). Sampling is
/// applied by [`SpanLog::record`](crate::span::SpanLog::record) *after*
/// fingerprinting, so a sampled log's fingerprint still covers every
/// event — only retention thins out.
#[derive(Debug, Clone)]
pub struct SampleSpec {
    keep_every: [u32; Stage::COUNT],
    seen: [u32; Stage::COUNT],
}

impl Default for SampleSpec {
    fn default() -> Self {
        SampleSpec {
            keep_every: [1; Stage::COUNT],
            seen: [0; Stage::COUNT],
        }
    }
}

impl SampleSpec {
    /// Keeps only every `n`-th event of `stage` (`n = 0` is treated as
    /// 1: keep all).
    pub fn set(&mut self, stage: Stage, n: u32) {
        self.keep_every[stage as usize] = n.max(1);
    }

    /// Returns `true` when a sampling rate other than keep-all is set.
    pub fn is_thinning(&self) -> bool {
        self.keep_every.iter().any(|&n| n > 1)
    }

    /// Decides whether the next event of `stage` is retained.
    pub fn admit(&mut self, stage: Stage) -> bool {
        let i = stage as usize;
        let pick = self.seen[i].is_multiple_of(self.keep_every[i]);
        self.seen[i] = self.seen[i].wrapping_add(1);
        pick
    }
}

/// The struct-of-arrays event ring. Rows are appended at the back and
/// evicted from the front; each row is either packed across the six
/// columns or escaped to the side map.
#[derive(Debug, Clone, Default)]
pub struct ColumnarStore {
    dt: VecDeque<u32>,
    dseq: VecDeque<u8>,
    sender_sym: VecDeque<u32>,
    key_seq: VecDeque<u16>,
    subject_stage: VecDeque<u32>,
    aux: VecDeque<u16>,
    escapes: BTreeMap<u64, SpanEvent>,
    symbols: Interner,
    /// Monotone id of the next row to evict (rows ever popped).
    front_row: u64,
    /// `at`/`seq` of the row just before the front (iteration base).
    base_at: u64,
    base_seq: u64,
    /// `at`/`seq` of the last appended row (delta base for the next).
    tail_at: u64,
    tail_seq: u64,
}

impl ColumnarStore {
    /// Retained row count.
    pub fn len(&self) -> usize {
        self.dt.len()
    }

    /// True when no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.dt.is_empty()
    }

    /// Rows that had to escape to the side map.
    pub fn escaped(&self) -> usize {
        self.escapes.len()
    }

    /// Distinct identities interned so far.
    pub fn symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Deterministic estimate of the bytes the retained rows occupy:
    /// packed columns plus full-width escapes plus the symbol table.
    /// (An allocator sees power-of-two growth on top of this; the
    /// `obs_overhead` bench measures that side.)
    pub fn retained_bytes(&self) -> usize {
        self.len() * PACKED_ROW_BYTES
            + self.escapes.len() * std::mem::size_of::<SpanEvent>()
            + self.symbols.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }

    /// Appends one event.
    pub fn push(&mut self, e: SpanEvent) {
        let at = e.at.as_nanos();
        let dt = at.checked_sub(self.tail_at);
        let dseq = e.seq.checked_sub(self.tail_seq);
        let sender = self.symbols.intern(e.key.sender);
        let subject = self.symbols.intern(e.subject);
        let packed = match (dt, dseq) {
            (Some(dt), Some(dseq))
                if dt <= u32::MAX as u64
                    && dseq <= u8::MAX as u64
                    && sender < ESCAPED
                    && subject <= MAX_SUBJECT_SYM
                    && e.key.seq <= u16::MAX as u64
                    && e.aux <= u16::MAX as u64 =>
            {
                Some((dt as u32, dseq as u8))
            }
            _ => None,
        };
        match packed {
            Some((dt, dseq)) => {
                self.dt.push_back(dt);
                self.dseq.push_back(dseq);
                self.sender_sym.push_back(sender);
                self.key_seq.push_back(e.key.seq as u16);
                self.subject_stage
                    .push_back((subject << 4) | e.stage as u32);
                self.aux.push_back(e.aux as u16);
            }
            None => {
                self.dt.push_back(0);
                self.dseq.push_back(0);
                self.sender_sym.push_back(ESCAPED);
                self.key_seq.push_back(0);
                self.subject_stage.push_back(0);
                self.aux.push_back(0);
                let row = self.front_row + self.len() as u64 - 1;
                self.escapes.insert(row, e);
            }
        }
        self.tail_at = at;
        self.tail_seq = e.seq;
    }

    /// Evicts the oldest row, advancing the iteration base past it.
    pub fn pop_front(&mut self) {
        if self.dt.is_empty() {
            return;
        }
        if self.sender_sym[0] == ESCAPED {
            let e = self
                .escapes
                .remove(&self.front_row)
                .expect("escaped row has a side-map entry");
            self.base_at = e.at.as_nanos();
            self.base_seq = e.seq;
        } else {
            self.base_at += self.dt[0] as u64;
            self.base_seq += self.dseq[0] as u64;
        }
        self.dt.pop_front();
        self.dseq.pop_front();
        self.sender_sym.pop_front();
        self.key_seq.pop_front();
        self.subject_stage.pop_front();
        self.aux.pop_front();
        self.front_row += 1;
    }

    /// Drops every retained row (fingerprint state lives in the caller
    /// and is unaffected).
    pub fn clear(&mut self) {
        while !self.is_empty() {
            self.pop_front();
        }
    }

    /// Reconstructs the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = SpanEvent> + '_ {
        let mut at = self.base_at;
        let mut seq = self.base_seq;
        let mut row = self.front_row;
        self.dt
            .iter()
            .zip(&self.dseq)
            .zip(&self.sender_sym)
            .zip(&self.key_seq)
            .zip(&self.subject_stage)
            .zip(&self.aux)
            .map(
                move |(((((dt, dseq), sender), key_seq), subject_stage), aux)| {
                    let id = row;
                    row += 1;
                    if *sender == ESCAPED {
                        let e = self.escapes[&id];
                        at = e.at.as_nanos();
                        seq = e.seq;
                        return e;
                    }
                    at += *dt as u64;
                    seq += *dseq as u64;
                    SpanEvent {
                        seq,
                        at: SimTime::from_nanos(at),
                        key: MsgKey {
                            sender: self.symbols.resolve(*sender),
                            seq: *key_seq as u64,
                        },
                        stage: Stage::from_bits((subject_stage & 0xf) as u8),
                        subject: self.symbols.resolve(subject_stage >> 4),
                        aux: *aux as u64,
                    }
                },
            )
    }
}

/// The pre-columnar row-oriented span log, kept as the executable
/// reference the columnar store is verified against: identical record
/// streams must yield identical fingerprints, totals, and retained
/// event sequences. The `obs_overhead` bench also uses it as the memory
/// baseline the ≥3× cut is measured from.
#[derive(Debug)]
pub struct RowSpanLog {
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    total: u64,
    fnv: u64,
}

impl RowSpanLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RowSpanLog {
            ring: VecDeque::new(),
            capacity,
            total: 0,
            fnv: FNV_OFFSET,
        }
    }

    /// Records one lifecycle event (same framing and hash as
    /// [`SpanLog::record`](crate::span::SpanLog::record)).
    pub fn record(&mut self, at: SimTime, key: MsgKey, stage: Stage, subject: u64, aux: u64) {
        let seq = self.total;
        self.total += 1;
        self.fnv = fnv_fold_event(self.fnv, seq, at, key, stage, subject, aux);
        if self.capacity > 0 {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(SpanEvent {
                seq,
                at,
                key,
                stage,
                subject,
                aux,
            });
        }
    }

    /// Events ever recorded (including evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Running fingerprint over all events ever recorded.
    pub fn fingerprint(&self) -> u64 {
        self.fnv
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = SpanEvent> + '_ {
        self.ring.iter().copied()
    }

    /// Deterministic estimate of the bytes the retained rows occupy.
    pub fn retained_bytes(&self) -> usize {
        self.ring.len() * std::mem::size_of::<SpanEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        seq: u64,
        at_ns: u64,
        sender: u64,
        kseq: u64,
        stage: Stage,
        subj: u64,
        aux: u64,
    ) -> SpanEvent {
        SpanEvent {
            seq,
            at: SimTime::from_nanos(at_ns),
            key: MsgKey { sender, seq: kseq },
            stage,
            subject: subj,
            aux,
        }
    }

    #[test]
    fn packed_rows_round_trip_exactly() {
        let mut s = ColumnarStore::default();
        let events = [
            ev(0, 100, 1, 0, Stage::Publish, 7, 16),
            ev(1, 150, 1, 1, Stage::Capture, 7, 0),
            ev(2, 400, 2, 0, Stage::Deliver, 7, 3),
        ];
        for e in events {
            s.push(e);
        }
        assert_eq!(s.escaped(), 0);
        let back: Vec<SpanEvent> = s.iter().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn overflowing_fields_escape_and_still_round_trip() {
        let mut s = ColumnarStore::default();
        let wide = [
            // First event: at exceeds u32 nanos from the zero base.
            ev(0, u64::from(u32::MAX) + 5, 1, 0, Stage::Publish, 7, 0),
            // Normal deltas after the escape re-anchor.
            ev(1, u64::from(u32::MAX) + 50, 1, 1, Stage::Capture, 7, 0),
            // aux too wide for u16.
            ev(
                2,
                u64::from(u32::MAX) + 60,
                1,
                2,
                Stage::Sequence,
                7,
                1 << 20,
            ),
            // key seq too wide for u16.
            ev(
                3,
                u64::from(u32::MAX) + 70,
                1,
                1 << 40,
                Stage::Deliver,
                7,
                0,
            ),
            // seq delta too wide for u8 (heavy sampling gap).
            ev(
                200_000,
                u64::from(u32::MAX) + 80,
                1,
                3,
                Stage::Deliver,
                7,
                1,
            ),
        ];
        for e in wide {
            s.push(e);
        }
        assert_eq!(s.escaped(), 4);
        let back: Vec<SpanEvent> = s.iter().collect();
        assert_eq!(back, wide);
    }

    #[test]
    fn eviction_advances_the_base_through_escapes() {
        let mut s = ColumnarStore::default();
        let events = [
            ev(0, 10, 1, 0, Stage::Publish, 7, 0),
            ev(1, 20, 1, 1, Stage::Publish, 7, 1 << 30), // escaped (aux)
            ev(2, 30, 1, 2, Stage::Publish, 7, 2),
            ev(3, 40, 1, 3, Stage::Publish, 7, 3),
        ];
        for e in events {
            s.push(e);
        }
        s.pop_front(); // packed row out
        assert_eq!(s.iter().collect::<Vec<_>>(), events[1..]);
        s.pop_front(); // escaped row out: side map entry must go too
        assert_eq!(s.escaped(), 0);
        assert_eq!(s.iter().collect::<Vec<_>>(), events[2..]);
        s.clear();
        assert!(s.is_empty());
        // Appends after a full drain delta against the last event.
        let next = ev(4, 50, 1, 4, Stage::Publish, 7, 4);
        s.push(next);
        assert_eq!(s.iter().collect::<Vec<_>>(), [next]);
        assert_eq!(s.escaped(), 0, "post-drain append packs");
    }

    #[test]
    fn packed_row_is_at_least_three_times_smaller() {
        assert!(std::mem::size_of::<SpanEvent>() >= 3 * PACKED_ROW_BYTES);
        let mut col = ColumnarStore::default();
        let mut row = RowSpanLog::new(1 << 10);
        for i in 0..1000u64 {
            let e = ev(i, 100 * i, 1 + i % 4, i, Stage::Publish, 7, i % 100);
            col.push(e);
            row.record(e.at, e.key, e.stage, e.subject, e.aux);
        }
        assert_eq!(col.escaped(), 0);
        assert!(row.retained_bytes() >= 3 * col.retained_bytes());
    }

    #[test]
    fn sampling_spec_keeps_every_nth() {
        let mut spec = SampleSpec::default();
        spec.set(Stage::Publish, 3);
        spec.set(Stage::Deliver, 0); // 0 means keep all
        assert!(spec.is_thinning());
        let picks: Vec<bool> = (0..7).map(|_| spec.admit(Stage::Publish)).collect();
        assert_eq!(picks, [true, false, false, true, false, false, true]);
        assert!((0..5).all(|_| spec.admit(Stage::Deliver)));
        // Stages are independent.
        assert!(spec.admit(Stage::Capture));
    }

    #[test]
    fn interner_is_stable_and_dense() {
        let mut i = Interner::default();
        assert!(i.is_empty());
        let a = i.intern(99);
        let b = i.intern(7);
        assert_eq!(i.intern(99), a);
        assert_eq!(i.resolve(a), 99);
        assert_eq!(i.resolve(b), 7);
        assert_eq!(i.len(), 2);
    }
}
