//! Cross-validation laws: the analytic predictions the capacity lens
//! checks measured utilizations against.
//!
//! The Chapter 5 model predicted resource requirements before the
//! system existed; here the direction reverses — the DES *measures*
//! per-resource busy time and occupancy, and these pure functions say
//! what an open queueing network would predict for the same offered
//! load, so drift between the simulator and the model is caught
//! automatically:
//!
//! - the **utilization law** ρ = λ·S: a station serving λ jobs/sec at
//!   S seconds each is busy a fraction ρ of the time (exact for any
//!   single-server station, no distributional assumptions);
//! - **Little's law** L = λ·W: time-average occupancy equals
//!   throughput times mean sojourn (exact for any stable system).
//!
//! Both are distribution-free identities, so a measured value outside
//! tolerance is a *metering bug or a model mismatch*, never stochastic
//! noise — which is what makes them usable as an oracle check. The
//! medium prediction is only exact on an uncontended medium: CSMA/CD
//! collisions add busy time the service-demand product cannot see, so
//! callers gate the medium row on the perfect bus.

/// Predicted busy fraction of a single-server station: the utilization
/// law ρ = λ·S, clamped to 1 (an overdriven station saturates).
pub fn utilization_law(arrivals_per_sec: f64, service_s: f64) -> f64 {
    (arrivals_per_sec * service_s).clamp(0.0, 1.0)
}

/// Predicted time-average occupancy: Little's law L = λ·W.
pub fn littles_law(throughput_per_sec: f64, sojourn_s: f64) -> f64 {
    throughput_per_sec * sojourn_s
}

/// Per-frame service time of a broadcast medium, seconds: transmission
/// (payload at the configured bandwidth) plus the mandatory interpacket
/// gap. This is the `S` the utilization law needs for the medium row.
pub fn frame_service_s(frame_bytes: f64, bandwidth_bps: f64, interpacket_s: f64) -> f64 {
    if bandwidth_bps <= 0.0 {
        return 0.0;
    }
    frame_bytes * 8.0 / bandwidth_bps + interpacket_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_law_is_the_service_demand_product() {
        assert_eq!(utilization_law(10.0, 0.05), 0.5);
        // Overdriven stations saturate rather than exceed 1.
        assert_eq!(utilization_law(100.0, 0.05), 1.0);
        assert_eq!(utilization_law(0.0, 0.05), 0.0);
    }

    #[test]
    fn littles_law_is_throughput_times_sojourn() {
        // 4 jobs/sec spending 250 ms each → 1 resident on average.
        assert!((littles_law(4.0, 0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frame_service_includes_the_interpacket_gap() {
        // 1983 ethernet: 10 Mb/s, 1.6 ms gap. A 1000-byte frame is
        // 0.8 ms of wire time plus the gap.
        let s = frame_service_s(1000.0, 10_000_000.0, 0.0016);
        assert!((s - 0.0024).abs() < 1e-9);
        assert_eq!(frame_service_s(1000.0, 0.0, 0.0016), 0.0);
    }
}
