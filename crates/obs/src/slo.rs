//! Service-level objectives over an [`ObsReport`].
//!
//! The capacity search needs a pass/fail verdict per trial: given the
//! observability snapshot of a finished run, did it meet its delivery
//! and recovery objectives? An [`SloSpec`] names the thresholds and
//! [`SloSpec::violations`] evaluates them, returning human-readable
//! violations in a fixed order so verdicts are deterministic and
//! diffable across runs.

use crate::report::ObsReport;

/// Thresholds a run must stay inside to count as "sustained".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Max 99th-percentile publish→deliver latency, µs.
    pub deliver_p99_us: u64,
    /// Max 99th-percentile capture→sequence latency (the recorder's own
    /// service gap), µs.
    pub sequence_p99_us: u64,
    /// Max gating stalls (frames blocked on a recorder miss) summed
    /// over the medium probe and every shard.
    pub max_gating_stalls: u64,
    /// Max completed-recovery window, ms. Recoveries slower than this
    /// mean the tier cannot restore a user inside the objective.
    pub max_recovery_ms: f64,
    /// Watchdog violations allowed (normally zero).
    pub max_watchdog_violations: u64,
}

impl Default for SloSpec {
    fn default() -> Self {
        // Calibrated for the 1983 cost model, where an uncontended
        // published delivery already costs ≈29 ms — §5.2.1's 26 ms of
        // protocol CPU (13 ms to send, 13 ms to receive) plus the frame
        // time. A 150 ms p99 sits a handful of queued messages above
        // that floor, so crossing it marks the saturation knee rather
        // than the protocol's fixed cost; the recovery bound sits
        // inside the chaos grace period.
        SloSpec {
            deliver_p99_us: 150_000,
            sequence_p99_us: 150_000,
            max_gating_stalls: 1_000,
            max_recovery_ms: 30_000.0,
            max_watchdog_violations: 0,
        }
    }
}

impl SloSpec {
    /// Evaluates every predicate against `report`, returning the
    /// violations in a fixed order (empty = the run met the SLOs).
    pub fn violations(&self, report: &ObsReport) -> Vec<String> {
        let mut out = Vec::new();
        let p99 = report.latencies.publish_to_deliver_us.quantile(0.99);
        if p99 > self.deliver_p99_us {
            out.push(format!("deliver p99 {p99}us > {}us", self.deliver_p99_us));
        }
        let seq = report.latencies.capture_to_sequence_us.quantile(0.99);
        if seq > self.sequence_p99_us {
            out.push(format!("sequence p99 {seq}us > {}us", self.sequence_p99_us));
        }
        let stalls = report.medium.as_ref().map_or(0, |m| m.gating_stalls)
            + report.shards.iter().map(|s| s.gating_stalls).sum::<u64>();
        if stalls > self.max_gating_stalls {
            out.push(format!(
                "gating stalls {stalls} > {}",
                self.max_gating_stalls
            ));
        }
        for r in &report.recovery {
            if !r.recovering && r.recovery_ms > self.max_recovery_ms {
                out.push(format!(
                    "pid {} recovered in {:.1}ms > {:.1}ms",
                    r.subject, r.recovery_ms, self.max_recovery_ms
                ));
            }
        }
        if let Some(w) = &report.watchdog {
            let n = w.violations.len() as u64;
            if n > self.max_watchdog_violations {
                out.push(format!(
                    "watchdog violations {n} > {}",
                    self.max_watchdog_violations
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{RecoveryLag, ShardHealth};
    use crate::report::WatchdogSummary;

    #[test]
    fn quiet_report_meets_default_slos() {
        let report = ObsReport::default();
        assert!(SloSpec::default().violations(&report).is_empty());
    }

    #[test]
    fn each_predicate_trips_alone() {
        let spec = SloSpec {
            deliver_p99_us: 10,
            sequence_p99_us: 10,
            max_gating_stalls: 0,
            max_recovery_ms: 5.0,
            max_watchdog_violations: 0,
        };

        let mut slow = ObsReport::default();
        for _ in 0..100 {
            slow.latencies.publish_to_deliver_us.record(1_000);
        }
        let v = spec.violations(&slow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("deliver p99"));

        let mut stalled = ObsReport::default();
        stalled.shards.push(ShardHealth {
            shard: 0,
            live: true,
            catching_up: false,
            queue_depth: 0,
            known_processes: 0,
            recoveries_in_flight: 0,
            replay_lag: 0,
            gating_stalls: 3,
            published: 0,
        });
        let v = spec.violations(&stalled);
        assert_eq!(v, vec!["gating stalls 3 > 0".to_string()]);

        let mut slow_recovery = ObsReport::default();
        slow_recovery.recovery.push(RecoveryLag {
            subject: 9,
            recovering: false,
            messages_behind: 0,
            checkpoint_age_ms: 0.0,
            suppressed: 0,
            recovery_ms: 12.0,
            critical_path_ms: 12.0,
        });
        let v = spec.violations(&slow_recovery);
        assert_eq!(v, vec!["pid 9 recovered in 12.0ms > 5.0ms".to_string()]);

        let watched = ObsReport {
            watchdog: Some(WatchdogSummary {
                checks: 10,
                violations: vec!["gap".into()],
            }),
            ..ObsReport::default()
        };
        let v = spec.violations(&watched);
        assert_eq!(v, vec!["watchdog violations 1 > 0".to_string()]);
    }

    #[test]
    fn violations_are_ordered_and_cumulative() {
        let spec = SloSpec {
            deliver_p99_us: 10,
            sequence_p99_us: 1_000_000,
            max_gating_stalls: 0,
            max_recovery_ms: 1_000.0,
            max_watchdog_violations: 0,
        };
        let mut r = ObsReport::default();
        for _ in 0..100 {
            r.latencies.publish_to_deliver_us.record(1_000);
        }
        r.shards.push(ShardHealth {
            shard: 1,
            live: true,
            catching_up: false,
            queue_depth: 0,
            known_processes: 0,
            recoveries_in_flight: 0,
            replay_lag: 0,
            gating_stalls: 2,
            published: 0,
        });
        let v = spec.violations(&r);
        assert_eq!(v.len(), 2);
        assert!(v[0].starts_with("deliver p99"), "latency first: {v:?}");
        assert!(v[1].starts_with("gating stalls"));
    }
}
