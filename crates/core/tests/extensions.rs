//! Integration tests for the Chapter 6 extensions: transactions over
//! publishing, multiple recorders, and publishing over the contention
//! media (Acknowledging Ethernet, token ring).

use publishing_core::multi::MultiWorld;
use publishing_core::transactions::{tx_codes, TxCoordinator, TxOp, TxParticipant, TxRequest};
use publishing_core::world::WorldBuilder;
use publishing_demos::ids::{Channel, LinkId, NodeId, ProcessId};
use publishing_demos::kernel::{decode_ctl, encode_ctl};
use publishing_demos::link::Link;
use publishing_demos::program::{Ctx, Program, Received};
use publishing_demos::programs::{self, PingClient};
use publishing_demos::registry::ProgramRegistry;
use publishing_net::ethernet::Ethernet;
use publishing_net::lan::LanConfig;
use publishing_net::token_ring::TokenRing;
use publishing_sim::codec::{CodecError, Decoder, Encoder};
use publishing_sim::time::{SimDuration, SimTime};

/// Fires `total` sequential transfers of 10 from alice (participant 0) to
/// bob (participant 1) through the coordinator on initial link 0, and
/// outputs each outcome.
struct BankClient {
    total: u64,
    started: u64,
    done: u64,
}

impl BankClient {
    fn new(total: u64) -> Self {
        BankClient {
            total,
            started: 0,
            done: 0,
        }
    }

    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        self.started += 1;
        let reply = ctx.create_link(Channel::DEFAULT, 0);
        let req = TxRequest {
            ops: vec![
                TxOp {
                    participant: 0,
                    account: "alice".into(),
                    delta: -10,
                },
                TxOp {
                    participant: 1,
                    account: "bob".into(),
                    delta: 10,
                },
            ],
        };
        let _ = ctx.send_passing(LinkId(0), encode_ctl(tx_codes::TX_BEGIN, &req), reply);
    }
}

impl Program for BankClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.total > 0 {
            self.begin(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Received) {
        if let Some((tx_codes::TX_DONE, payload)) = decode_ctl(&msg.body) {
            let mut d = Decoder::new(payload);
            let tx = d.u64().unwrap_or(u64::MAX);
            let committed = d.bool().unwrap_or(false);
            self.done += 1;
            ctx.output(format!("tx {tx} committed={committed}").into_bytes());
            ctx.compute(SimDuration::from_millis(1));
            if self.started < self.total {
                self.begin(ctx);
            } else {
                ctx.output(b"bank done".to_vec());
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.total).u64(self.started).u64(self.done);
        e.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut d = Decoder::new(bytes);
        self.total = d.u64()?;
        self.started = d.u64()?;
        self.done = d.u64()?;
        d.finish()
    }
}

fn tx_registry(transfers: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    reg.register("coordinator", || Box::new(TxCoordinator::new()));
    reg.register("bank-a", || {
        Box::new(TxParticipant::with_accounts(&[("alice", 1000)]))
    });
    reg.register("bank-b", || {
        Box::new(TxParticipant::with_accounts(&[("bob", 0)]))
    });
    reg.register("client", move || Box::new(BankClient::new(transfers)));
    reg
}

/// Reads a participant's balances out of a world via its snapshot.
fn balance(w: &publishing_core::world::World, pid: ProcessId, account: &str) -> i64 {
    let proc = w.kernels[&pid.node.0].process(pid.local).unwrap();
    let mut p = TxParticipant::default();
    p.restore(&proc.program.snapshot()).unwrap();
    p.accounts.get(account).copied().unwrap_or(i64::MIN)
}

fn run_bank(transfers: u64, crash: Option<(&str, u64)>) -> (i64, i64, Vec<String>) {
    let mut w = WorldBuilder::new(3)
        .registry(tx_registry(transfers))
        .build();
    let bank_a = w.spawn(1, "bank-a", vec![]).unwrap();
    let bank_b = w.spawn(2, "bank-b", vec![]).unwrap();
    let coord = w
        .spawn(
            0,
            "coordinator",
            vec![
                Link::to(bank_a, Channel::DEFAULT, 0),
                Link::to(bank_b, Channel::DEFAULT, 0),
            ],
        )
        .unwrap();
    let client = w
        .spawn(0, "client", vec![Link::to(coord, Channel::DEFAULT, 0)])
        .unwrap();
    if let Some((who, at_ms)) = crash {
        w.run_until(SimTime::from_millis(at_ms));
        let victim = match who {
            "coordinator" => coord,
            "bank-a" => bank_a,
            "bank-b" => bank_b,
            _ => client,
        };
        w.crash_process(victim, "injected");
    }
    w.run_until(SimTime::from_secs(30));
    let a = balance(&w, bank_a, "alice");
    let b = balance(&w, bank_b, "bob");
    (a, b, w.outputs_of(client))
}

#[test]
fn transactions_commit_without_crashes() {
    let (alice, bob, out) = run_bank(10, None);
    assert_eq!(alice, 900);
    assert_eq!(bob, 100);
    assert_eq!(alice + bob, 1000, "conservation");
    assert_eq!(out.len(), 11);
    assert_eq!(out.last().unwrap(), "bank done");
    assert!(out[..10].iter().all(|l| l.ends_with("committed=true")));
}

#[test]
fn coordinator_crash_preserves_atomicity() {
    // §6.4: intentions and transaction state are rebuilt by replay; no
    // transfer is lost or applied twice.
    let (alice, bob, out) = run_bank(10, Some(("coordinator", 8)));
    assert_eq!(alice + bob, 1000, "conservation across coordinator crash");
    assert_eq!(alice, 900);
    assert_eq!(bob, 100);
    assert_eq!(out.last().unwrap(), "bank done");
}

#[test]
fn participant_crash_preserves_atomicity() {
    let (alice, bob, out) = run_bank(10, Some(("bank-b", 10)));
    assert_eq!(alice + bob, 1000, "conservation across participant crash");
    assert_eq!(alice, 900);
    assert_eq!(bob, 100);
    assert_eq!(out.last().unwrap(), "bank done");
}

#[test]
fn overdraft_transactions_abort_cleanly() {
    // 110 transfers of 10 against 1000: the last 10 must abort.
    let (alice, bob, out) = run_bank(110, None);
    assert_eq!(alice, 0);
    assert_eq!(bob, 1000);
    assert_eq!(
        out.iter().filter(|l| l.ends_with("committed=true")).count(),
        100
    );
    assert_eq!(
        out.iter()
            .filter(|l| l.ends_with("committed=false"))
            .count(),
        10
    );
}

fn multi_registry() -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("slowping", || {
        let mut p = PingClient::new(25);
        p.think_ns = 1_500_000;
        Box::new(p)
    });
    reg
}

#[test]
fn surviving_recorder_covers_for_dead_one() {
    let mut w = MultiWorld::new(2, 2, multi_registry());
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(30));
    // Kill recorder 0: the survivor covers; traffic keeps flowing.
    w.crash_recorder(0);
    w.run_until(SimTime::from_secs(10));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 26, "{}", out.len());
    assert_eq!(out.last().unwrap(), "done");
}

#[test]
fn node_crash_handled_by_highest_priority_live_recorder() {
    let mut w = MultiWorld::new(2, 2, multi_registry());
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(30));
    // Kill the recorder with top priority for node 1, then node 1 itself:
    // the lower-priority recorder must take over recovery.
    let top = w.priorities.responsible(NodeId(1), &[true, true]).unwrap();
    w.crash_recorder(top);
    w.run_until(SimTime::from_millis(60));
    w.crash_node(1);
    w.run_until(SimTime::from_secs(20));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 26, "{}", out.len());
    let other = 1 - top;
    assert!(w.recorders[other].manager().stats().node_crashes.get() >= 1);
}

#[test]
fn crashed_recorder_rejoins_after_catching_up() {
    let mut w = MultiWorld::new(2, 2, multi_registry());
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(20));
    w.crash_recorder(1);
    w.run_until(SimTime::from_millis(200));
    w.restart_recorder(1);
    // Catch-up requires every process to checkpoint after the restart;
    // the default periodic policy (2 s) gets there.
    w.run_until(SimTime::from_secs(20));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 26, "{}", out.len());
    assert!(w.recorders[1].is_up());
}

fn ping_registry(n: u64) -> ProgramRegistry {
    let mut reg = ProgramRegistry::new();
    programs::register_standard(&mut reg);
    reg.register("ping", move || Box::new(PingClient::new(n)));
    reg
}

#[test]
fn recovery_works_over_acknowledging_ethernet() {
    // §6.1.1: the Acknowledging Ethernet with a reserved recorder ack slot.
    let cfg = LanConfig {
        seed: 3,
        ..LanConfig::default()
    };
    let lan = Ethernet::acknowledging(cfg);
    // The builder attaches stations 0, 1 (nodes) and 2 (recorder) and
    // marks station 2 as the required recorder.
    let mut w = WorldBuilder::new(2)
        .registry(ping_registry(8))
        .medium(Box::new(lan))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(200));
    w.crash_process(server, "injected");
    w.run_until(SimTime::from_secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 9, "{out:?}");
    assert!(w.lan.stats().submitted.get() > 0);
}

#[test]
fn recovery_works_over_token_ring() {
    // §6.1.2: the token ring with the recorder acknowledge field.
    let cfg = LanConfig {
        seed: 5,
        ..LanConfig::default()
    };
    let lan = TokenRing::new(cfg, SimDuration::from_micros(20));
    let mut w = WorldBuilder::new(2)
        .registry(ping_registry(8))
        .medium(Box::new(lan))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(200));
    w.crash_process(server, "injected");
    w.run_until(SimTime::from_secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 9, "{out:?}");
}

#[test]
fn recovery_works_over_star_hub() {
    // §4.1's Z8000 testbed shape: the recording node is the hub of a
    // star; "any messages received incorrectly by the recorder are not
    // passed on." The hub station must be the recorder's (node 2 here).
    use publishing_net::star::StarHub;
    let cfg = LanConfig {
        seed: 8,
        ..LanConfig::default()
    };
    let lan = StarHub::new(
        cfg,
        publishing_net::frame::StationId(2),
        SimDuration::from_micros(100),
    );
    let mut w = WorldBuilder::new(2)
        .registry(ping_registry(8))
        .medium(Box::new(lan))
        .build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    let client = w
        .spawn(0, "ping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(100));
    w.crash_process(server, "injected");
    w.run_until(SimTime::from_secs(30));
    let out = w.outputs_of(client);
    assert_eq!(out.len(), 9, "{out:?}");
}

#[test]
fn windowed_transport_recovers_identically() {
    // The §4.3.3 windowing upgrade must not change recovery semantics.
    use publishing_demos::transport::TransportConfig;
    let run = |window: usize| {
        let transport = TransportConfig {
            window,
            ..TransportConfig::default()
        };
        let mut w = WorldBuilder::new(2)
            .registry(multi_registry())
            .transport(transport)
            .build();
        let server = w.spawn(1, "echo", vec![]).unwrap();
        let client = w
            .spawn(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
            .unwrap();
        w.run_until(SimTime::from_millis(40));
        w.crash_process(server, "injected");
        w.run_until(SimTime::from_secs(20));
        w.outputs_of(client)
    };
    let saw = run(1);
    let win = run(8);
    assert_eq!(saw, win);
    assert_eq!(saw.len(), 26);
}

#[test]
fn unrecoverable_processes_are_not_published_and_stay_dead() {
    // §6.6.1: "there are a large number of processes which do not need to
    // be recoverable. If we do not publish messages for these processes,
    // we may greatly increase the capability of the recorder."
    let mut w = WorldBuilder::new(2).registry(multi_registry()).build();
    let server = w.spawn(1, "echo", vec![]).unwrap();
    // A status command (ps/vmstat-style): nobody wants it restarted.
    let status = w
        .spawn_unrecoverable(0, "slowping", vec![Link::to(server, Channel::DEFAULT, 7)])
        .unwrap();
    w.run_until(SimTime::from_millis(40));
    let entry = w.recorder.recorder().entry(status).expect("registered");
    assert!(!entry.recoverable);
    // Its inbound messages were never published.
    assert!(w.recorder.recorder().replay_stream(status).is_empty());
    w.crash_process(status, "fatal by choice");
    w.run_until(SimTime::from_secs(5));
    // Not recovered: still crashed.
    let p = w.kernels[&0].process(status.local).unwrap();
    assert_eq!(p.run, publishing_demos::process::RunState::Crashed);
}
